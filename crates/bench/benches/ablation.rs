//! Ablation of Conduit's cost function (the design choices called out in
//! DESIGN.md): drop the data-movement term, the queueing term, or the
//! dependence term, and replace the `max` combination with a sum.

use conduit::{CostFunction, Policy, RunRequest, Session};
use conduit_bench::micro;
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn variants() -> Vec<(&'static str, CostFunction)> {
    let full = CostFunction::conduit();
    vec![
        ("full", full),
        (
            "no_data_movement",
            CostFunction {
                include_data_movement: false,
                ..full
            },
        ),
        (
            "no_queue_delay",
            CostFunction {
                include_queue_delay: false,
                ..full
            },
        ),
        (
            "no_dependence",
            CostFunction {
                include_dependence_delay: false,
                ..full
            },
        ),
        (
            "sum_instead_of_max",
            CostFunction {
                combine_with_max: false,
                ..full
            },
        ),
    ]
}

fn main() {
    // Vectorize once, register once; every ablated run reuses the program.
    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session
        .register(Workload::Heat3d.program(Scale::test()).unwrap())
        .unwrap();

    // Print the ablated end-to-end times once (the ablation "table").
    println!("# Cost-function ablation on heat-3d (lower is better)");
    for (name, cf) in variants() {
        let outcome = session
            .submit(&RunRequest::new(id, Policy::Conduit).cost_function(cf))
            .unwrap();
        println!("{name}\t{}", outcome.summary.total_time);
    }

    for (name, cf) in variants() {
        let request = RunRequest::new(id, Policy::Conduit).cost_function(cf);
        micro::bench(&format!("cost_function_ablation_heat3d/{name}"), || {
            session.submit(&request).unwrap().summary.total_time
        });
    }
}
