//! Figure 5 (motivation study): prior offloading policies vs the Ideal
//! policy, plus a measurement of the simulation cost of each policy on a
//! representative workload.

use conduit::{Policy, Workbench};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    // Print the regenerated figure once so `cargo bench` output contains the
    // same series the paper plots.
    let mut harness = Harness::quick();
    println!("{}", harness.fig5());

    let program = Workload::Jacobi1d.program(Scale::test()).unwrap();
    for policy in [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Ideal,
    ] {
        micro::bench(
            &format!("fig5_motivation_jacobi1d/{}", policy.name()),
            || {
                let mut bench = Workbench::new(SsdConfig::small_for_tests());
                bench.run(&program, policy).unwrap().total_time
            },
        );
    }
}
