//! Figure 5 (motivation study): prior offloading policies vs the Ideal
//! policy, plus a Criterion measurement of the simulation cost of each
//! policy on a representative workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conduit::{Policy, Workbench};
use conduit_bench::Harness;
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn fig5(c: &mut Criterion) {
    // Print the regenerated figure once so `cargo bench` output contains the
    // same series the paper plots.
    let mut harness = Harness::quick();
    println!("{}", harness.fig5());

    let program = Workload::Jacobi1d.program(Scale::test()).unwrap();
    let mut group = c.benchmark_group("fig5_motivation_jacobi1d");
    group.sample_size(10);
    for policy in [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Ideal,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut bench = Workbench::new(SsdConfig::small_for_tests());
                    bench.run(&program, policy).unwrap().total_time
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
