//! Figure 5 (motivation study): prior offloading policies vs the Ideal
//! policy, plus a measurement of the simulation cost of each policy on a
//! representative workload.

use conduit::{Policy, RunRequest, Session};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    // Print the regenerated figure once so `cargo bench` output contains the
    // same series the paper plots.
    let mut harness = Harness::quick();
    println!("{}", harness.fig5());

    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session
        .register(Workload::Jacobi1d.program(Scale::test()).unwrap())
        .unwrap();
    for policy in [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Ideal,
    ] {
        let request = RunRequest::new(id, policy);
        micro::bench(
            &format!("fig5_motivation_jacobi1d/{}", policy.name()),
            || session.submit(&request).unwrap().summary.total_time,
        );
    }
}
