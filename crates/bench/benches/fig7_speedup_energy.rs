//! Figure 7 (a: speedup, b: energy): Conduit vs the best prior offloading
//! policy across all six workloads, plus Criterion measurements of the
//! end-to-end simulation for each workload under Conduit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conduit::{Policy, Workbench};
use conduit_bench::Harness;
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn fig7(c: &mut Criterion) {
    let mut harness = Harness::quick();
    println!("{}", harness.fig7a());
    println!("{}", harness.fig7b());
    println!("{}", harness.headline());

    let mut group = c.benchmark_group("fig7_conduit_all_workloads");
    group.sample_size(10);
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.name()),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut bench = Workbench::new(SsdConfig::small_for_tests());
                    bench.run(program, Policy::Conduit).unwrap().total_time
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
