//! Figure 7 (a: speedup, b: energy): Conduit vs the best prior offloading
//! policy across all six workloads, plus measurements of the end-to-end
//! simulation for each workload under Conduit.

use conduit::{Policy, RunRequest, Session};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    let mut harness = Harness::quick();
    println!("{}", harness.fig7a());
    println!("{}", harness.fig7b());
    println!("{}", harness.headline());

    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    for workload in Workload::ALL {
        let id = session
            .register(workload.program(Scale::test()).unwrap())
            .unwrap();
        let request = RunRequest::new(id, Policy::Conduit);
        micro::bench(
            &format!("fig7_conduit_all_workloads/{}", workload.name()),
            || session.submit(&request).unwrap().summary.total_time,
        );
    }
}
