//! Figure 7 (a: speedup, b: energy): Conduit vs the best prior offloading
//! policy across all six workloads, plus measurements of the end-to-end
//! simulation for each workload under Conduit.

use conduit::{Policy, Workbench};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    let mut harness = Harness::quick();
    println!("{}", harness.fig7a());
    println!("{}", harness.fig7b());
    println!("{}", harness.headline());

    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        micro::bench(
            &format!("fig7_conduit_all_workloads/{}", workload.name()),
            || {
                let mut bench = Workbench::new(SsdConfig::small_for_tests());
                bench.run(&program, Policy::Conduit).unwrap().total_time
            },
        );
    }
}
