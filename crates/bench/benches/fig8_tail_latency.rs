//! Figure 8 (tail latencies) and Figures 9/10 (offloading decisions and the
//! instruction→resource timeline), plus a Criterion measurement of the
//! tail-latency-sensitive LLaMA2 inference run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use conduit::{Policy, Workbench};
use conduit_bench::Harness;
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn fig8_to_10(c: &mut Criterion) {
    let mut harness = Harness::quick();
    println!("{}", harness.fig8());
    println!("{}", harness.fig9());
    println!("{}", harness.fig10());

    let program = Workload::LlamaInference.program(Scale::test()).unwrap();
    let mut group = c.benchmark_group("fig8_llama_inference");
    group.sample_size(10);
    for policy in [Policy::Conduit, Policy::DmOffloading, Policy::BwOffloading] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut bench = Workbench::new(SsdConfig::small_for_tests());
                    let mut report = bench.run(&program, policy).unwrap();
                    report.latency.percentile(0.99)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig8_to_10);
criterion_main!(benches);
