//! Figure 8 (tail latencies) and Figures 9/10 (offloading decisions and the
//! instruction→resource timeline), plus a measurement of the
//! tail-latency-sensitive LLaMA2 inference run.

use conduit::{Policy, Workbench};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    let mut harness = Harness::quick();
    println!("{}", harness.fig8());
    println!("{}", harness.fig9());
    println!("{}", harness.fig10());

    let program = Workload::LlamaInference.program(Scale::test()).unwrap();
    for policy in [Policy::Conduit, Policy::DmOffloading, Policy::BwOffloading] {
        micro::bench(&format!("fig8_llama_inference/{}", policy.name()), || {
            let mut bench = Workbench::new(SsdConfig::small_for_tests());
            let mut report = bench.run(&program, policy).unwrap();
            report.latency.percentile(0.99)
        });
    }
}
