//! Figure 8 (tail latencies) and Figures 9/10 (offloading decisions and the
//! instruction→resource timeline), plus a measurement of the
//! tail-latency-sensitive LLaMA2 inference run.

use conduit::{Policy, RunRequest, Session};
use conduit_bench::{micro, Harness};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn main() {
    let mut harness = Harness::quick();
    println!("{}", harness.fig8());
    println!("{}", harness.fig9());
    println!("{}", harness.fig10());

    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session
        .register(Workload::LlamaInference.program(Scale::test()).unwrap())
        .unwrap();
    for policy in [Policy::Conduit, Policy::DmOffloading, Policy::BwOffloading] {
        // Tail latencies come straight off the constant-memory histogram in
        // the summary — no timeline collection needed.
        let request = RunRequest::new(id, policy);
        micro::bench(&format!("fig8_llama_inference/{}", policy.name()), || {
            session.submit(&request).unwrap().summary.percentile(0.99)
        });
    }
}
