//! Simulator throughput: vector instructions simulated per wall-clock second,
//! and the parallel-vs-serial speedup of the full figure sweep.
//!
//! `cargo bench -p conduit-bench --bench sim_throughput` prints the summary
//! and writes `BENCH_sim_throughput.json` into the current directory (the
//! same document `repro sim-throughput` emits at paper scale).

use conduit_bench::throughput::ThroughputReport;

fn main() {
    let report = ThroughputReport::measure(true);
    print!("{}", report.summary());
    for r in &report.per_policy {
        println!("{}", r.summary());
    }
    let path = "BENCH_sim_throughput.json";
    match std::fs::write(path, report.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
