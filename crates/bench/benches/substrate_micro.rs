//! Microbenchmarks of the substrate models themselves: per-operation cost
//! evaluation for each compute resource, the precomputed estimate-table
//! lookups that replace them on the hot path, address arithmetic, the
//! auto-vectorizer, the event queue, and the allocation-free energy meter.
//! These bound the simulator's own overhead per modelled instruction.

use conduit_bench::micro::{self, black_box};
use conduit_ctrl::IspModel;
use conduit_dram::PudModel;
use conduit_flash::{FlashGeometry, IfpModel, IfpPlacement};
use conduit_sim::{EnergyMeter, EventQueue, SsdDevice};
use conduit_types::{
    Duration, Energy, EnergySource, FlashConfig, OpType, Resource, SimTime, SsdConfig,
};
use conduit_vectorizer::Vectorizer;
use conduit_workloads::{Scale, Workload};

fn main() {
    let cfg = SsdConfig::default();
    let ifp = IfpModel::new(&cfg.flash);
    let pud = PudModel::new(&cfg.dram);
    let isp = IspModel::new(&cfg.ctrl);
    let geo = FlashGeometry::new(&FlashConfig::default());
    let device = SsdDevice::new(&cfg).unwrap();

    micro::bench("ifp_op_cost_and", || {
        ifp.op_cost(
            black_box(OpType::And),
            32,
            4096,
            IfpPlacement::SameBlock { operands: 2 },
        )
        .unwrap()
        .latency
    });

    micro::bench("pud_op_cost_mul", || {
        pud.op_cost(black_box(OpType::Mul), 32, 4096, 8)
            .unwrap()
            .latency
    });

    micro::bench("isp_op_cost_add", || {
        isp.op_cost(black_box(OpType::Add), 32, 4096).latency
    });

    // The estimate-table lookup that replaces the three model evaluations on
    // the per-instruction hot path (canonical shape = table hit).
    micro::bench("device_estimate_compute_table_hit", || {
        device.estimate_compute(black_box(Resource::PudSsd), OpType::Mul, 32, 4096)
    });
    micro::bench("device_estimate_compute_fallback", || {
        device.estimate_compute(black_box(Resource::PudSsd), OpType::Mul, 32, 1024)
    });

    // The allocation-free energy meter charge (was: String key + BTreeMap).
    micro::bench("energy_meter_charge", || {
        let mut m = EnergyMeter::new();
        for _ in 0..64 {
            m.charge(black_box(EnergySource::Ifp), Energy::from_nj(1.0));
            m.charge(black_box(EnergySource::DramBus), Energy::from_nj(1.0));
        }
        m.total()
    });

    micro::bench("flash_addr_roundtrip", || {
        let addr = geo.addr_of(black_box(1_234_567));
        geo.index_of(addr)
    });

    micro::bench("event_queue_1k_schedule_pop", || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::ZERO + Duration::from_ns(i as f64), i);
        }
        let mut last = 0;
        while let Some((_, e)) = q.pop() {
            last = e;
        }
        last
    });

    let kernel = Workload::Jacobi1d.kernel(Scale::test());
    micro::bench("vectorize_jacobi1d", || {
        Vectorizer::default()
            .vectorize(black_box(&kernel))
            .unwrap()
            .program
            .len()
    });
}
