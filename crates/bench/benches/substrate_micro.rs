//! Microbenchmarks of the substrate models themselves: per-operation cost
//! evaluation for each compute resource, address arithmetic, the
//! auto-vectorizer, and the event queue. These bound the simulator's own
//! overhead per modelled instruction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use conduit_ctrl::IspModel;
use conduit_dram::PudModel;
use conduit_flash::{FlashGeometry, IfpModel, IfpPlacement};
use conduit_sim::EventQueue;
use conduit_types::{Duration, FlashConfig, OpType, SimTime, SsdConfig};
use conduit_vectorizer::Vectorizer;
use conduit_workloads::{Scale, Workload};

fn substrate(c: &mut Criterion) {
    let cfg = SsdConfig::default();
    let ifp = IfpModel::new(&cfg.flash);
    let pud = PudModel::new(&cfg.dram);
    let isp = IspModel::new(&cfg.ctrl);
    let geo = FlashGeometry::new(&FlashConfig::default());

    c.bench_function("ifp_op_cost_and", |b| {
        b.iter(|| {
            ifp.op_cost(
                black_box(OpType::And),
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap()
            .latency
        })
    });

    c.bench_function("pud_op_cost_mul", |b| {
        b.iter(|| pud.op_cost(black_box(OpType::Mul), 32, 4096, 8).unwrap().latency)
    });

    c.bench_function("isp_op_cost_add", |b| {
        b.iter(|| isp.op_cost(black_box(OpType::Add), 32, 4096).latency)
    });

    c.bench_function("flash_addr_roundtrip", |b| {
        b.iter(|| {
            let addr = geo.addr_of(black_box(1_234_567));
            geo.index_of(addr)
        })
    });

    c.bench_function("event_queue_1k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::ZERO + Duration::from_ns(i as f64), i);
            }
            let mut last = 0;
            while let Some((_, e)) = q.pop() {
                last = e;
            }
            last
        })
    });

    let mut group = c.benchmark_group("vectorizer");
    group.sample_size(10);
    group.bench_function("vectorize_jacobi1d", |b| {
        let kernel = Workload::Jacobi1d.kernel(Scale::test());
        b.iter(|| Vectorizer::default().vectorize(black_box(&kernel)).unwrap().program.len())
    });
    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
