//! The `repro arrival-sweep` target: open-loop arrivals at increasing
//! offered load on a pool of warm tenant devices.
//!
//! The warm-pool report shows a *closed-loop* multi-tenant mix (every
//! request is already waiting when the batch starts). This target instead
//! sweeps the **offered load**: each tenant's requests arrive open-loop at
//! a fixed inter-arrival interval ([`conduit::RunRequest::arriving_at`]),
//! derived from the tenant's measured service time and a target per-lane
//! utilization ρ. Because the simulator's lane is a deterministic D/D/1
//! queue, the resulting curve is the textbook hockey stick: below
//! saturation (ρ < 1) every request finds its device idle and queueing
//! delay stays zero while occupancy tracks ρ; past saturation (ρ ≥ 1)
//! arrivals outpace service, the lane's backlog grows linearly, and the
//! mean queueing delay climbs with every additional request — the
//! queueing/service split now measures device saturation, not scheduler
//! artifacts.
//!
//! The printed table has one row per (utilization, tenant): offered load,
//! occupancy ([`conduit_sim::DeviceSnapshot::lane_occupancy`]), idle time
//! and the mean/max arrival-relative queueing delay.

use conduit::{Policy, RunRequest, Session};
use conduit_types::{Duration, SimTime, SsdConfig};
use conduit_workloads::{Scale, Workload};

/// The tenants of the sweep: a flash-friendly, a DRAM-friendly and a
/// host-bound workload, so the service times (and therefore the absolute
/// load axis) differ per lane.
const TENANTS: [(&str, Workload, Policy); 3] = [
    ("tenant-xor", Workload::XorFilter, Policy::Conduit),
    ("tenant-jacobi", Workload::Jacobi1d, Policy::PudSsd),
    ("tenant-aes", Workload::Aes, Policy::IspOnly),
];

/// The per-lane utilizations ρ the sweep offers. Past 1.0 the lane is
/// saturated and queueing grows without bound.
const UTILIZATIONS: [f64; 6] = [0.25, 0.5, 0.75, 0.95, 1.1, 1.4];

/// Requests per tenant per load point.
fn requests_per_tenant(quick: bool) -> usize {
    if quick {
        8
    } else {
        24
    }
}

/// Runs the arrival sweep and formats the queueing-delay-vs-load curve.
///
/// `quick` selects the reduced test scale (the `--smoke` / `--quick` flags
/// of the `repro` binary).
pub fn arrival_sweep_report(quick: bool) -> String {
    let (cfg, scale) = if quick {
        (SsdConfig::small_for_tests(), Scale::test())
    } else {
        (SsdConfig::default(), Scale::new(4, 1))
    };
    let n = requests_per_tenant(quick);

    // Probe each tenant's service time once on a fresh session: the
    // inter-arrival interval for utilization ρ is service / ρ.
    let mut probe = Session::builder(cfg.clone()).build();
    let tenants: Vec<(&str, Workload, Policy, Duration)> = TENANTS
        .iter()
        .map(|&(name, workload, policy)| {
            let program = workload.program(scale).expect("generators always succeed");
            let id = probe
                .register(program)
                .expect("generated programs always validate");
            let dev = probe.create_device(name);
            let outcome = probe
                .submit(&RunRequest::new(id, policy).on_device(dev))
                .expect("probe run cannot fail");
            (name, workload, policy, outcome.summary.service_time)
        })
        .collect();

    let mut out = String::from(
        "# Arrival sweep: open-loop per-tenant load vs arrival-relative queueing delay\n\
         # interarrival = service / rho; requests arrive at k * interarrival on each lane\n\
         rho\ttenant\tworkload\tservice_ms\toffered_per_s\toccupancy\tidle_ms\tmean_queue_ms\tmax_queue_ms\n",
    );
    for &rho in &UTILIZATIONS {
        // A fresh session per load point: every curve sample starts from
        // pristine devices, so points are independent and deterministic.
        let mut session = Session::builder(cfg.clone()).build();
        let handles: Vec<_> = tenants
            .iter()
            .map(|&(name, workload, policy, service)| {
                let program = workload.program(scale).expect("generators always succeed");
                let id = session
                    .register(program)
                    .expect("generated programs always validate");
                let dev = session.create_device(name);
                let interarrival = Duration::from_ps((service.as_ps() as f64 / rho) as u64);
                (name, workload, policy, service, id, dev, interarrival)
            })
            .collect();
        let requests: Vec<RunRequest> = (0..n)
            .flat_map(|k| {
                handles
                    .iter()
                    .map(move |&(_, _, policy, _, id, dev, interarrival)| {
                        RunRequest::new(id, policy)
                            .on_device(dev)
                            .arriving_at(SimTime::ZERO + interarrival * k as u64)
                    })
            })
            .collect();
        let outcomes = session
            .submit_batch(&requests)
            .expect("sweep simulation of a generated workload cannot fail");

        for (t, &(name, workload, _, service, _, dev, interarrival)) in handles.iter().enumerate() {
            let queueing: Vec<Duration> = outcomes
                .iter()
                .skip(t)
                .step_by(handles.len())
                .map(|o| o.summary.queueing_time)
                .collect();
            let mean_ps =
                queueing.iter().map(|q| q.as_ps()).sum::<u64>() as f64 / queueing.len() as f64;
            let max = queueing.iter().copied().max().unwrap_or(Duration::ZERO);
            let snap = session.device_snapshot(dev);
            let offered_per_s = 1e12 / interarrival.as_ps() as f64;
            out.push_str(&format!(
                "{rho}\t{name}\t{workload}\t{:.3}\t{offered_per_s:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\n",
                service.as_ms(),
                snap.lane_occupancy(),
                snap.lane_idle_time.as_ms(),
                mean_ps / 1e9,
                max.as_ms(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_one_row_per_load_point_and_tenant() {
        let report = arrival_sweep_report(true);
        let data_rows = report
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("rho") && !l.is_empty())
            .count();
        assert_eq!(data_rows, UTILIZATIONS.len() * TENANTS.len(), "{report}");
        for (name, _, _) in TENANTS {
            assert!(report.contains(name), "missing tenant {name}:\n{report}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(arrival_sweep_report(true), arrival_sweep_report(true));
    }

    #[test]
    fn queueing_rises_and_occupancy_saturates_with_load() {
        let report = arrival_sweep_report(true);
        // Parse (rho, occupancy, mean_queue_ms) per row of the first
        // tenant.
        let rows: Vec<(f64, f64, f64)> = report
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .filter(|l| l.contains("tenant-xor"))
            .map(|l| {
                let cols: Vec<&str> = l.split('\t').collect();
                (
                    cols[0].parse().unwrap(),
                    cols[5].parse().unwrap(),
                    cols[7].parse().unwrap(),
                )
            })
            .collect();
        assert_eq!(rows.len(), UTILIZATIONS.len());
        let below: Vec<&(f64, f64, f64)> = rows.iter().filter(|r| r.0 < 1.0).collect();
        let above: Vec<&(f64, f64, f64)> = rows.iter().filter(|r| r.0 > 1.0).collect();
        // Below saturation the D/D/1 lane never queues and occupancy tracks
        // the offered load.
        for (rho, occupancy, mean_queue) in &below {
            assert!(
                *mean_queue < 1e-9,
                "ρ={rho} should not queue in a D/D/1 lane: {report}"
            );
            assert!(
                (occupancy - rho).abs() < 0.11,
                "occupancy {occupancy} should track ρ={rho}: {report}"
            );
        }
        // Past saturation the backlog (and the queueing delay) grows.
        for (rho, occupancy, mean_queue) in &above {
            assert!(
                *mean_queue > 0.0,
                "ρ={rho} must queue past saturation: {report}"
            );
            assert!(
                *occupancy > 0.9,
                "a saturated lane barely idles (got {occupancy}): {report}"
            );
        }
        // And more offered load means more queueing.
        assert!(above.last().unwrap().2 > above.first().unwrap().2);
    }
}
