//! Regenerates the tables and figures of the Conduit evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p conduit-bench --bin repro -- <target> [--quick]
//! ```
//!
//! where `<target>` is one of `fig4`, `fig5`, `fig7a`, `fig7b`, `fig8`,
//! `fig9`, `fig10`, `table3`, `overheads`, `headline`, `sim-throughput`, or
//! `all`.
//!
//! Flags:
//!
//! * `--quick` uses the reduced test scale (useful for smoke runs),
//! * `--serial` disables the parallel (workload, policy) fan-out (the
//!   default runs one simulation per CPU core; results are bit-identical),
//! * `sim-throughput` measures simulator throughput and writes
//!   `BENCH_sim_throughput.json` next to the current directory.

use conduit_bench::throughput::ThroughputReport;
use conduit_bench::Harness;

fn print_usage() {
    eprintln!(
        "usage: repro <fig4|fig5|fig7a|fig7b|fig8|fig9|fig10|table3|overheads|headline|sim-throughput|all> [--quick] [--serial]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial = args.iter().any(|a| a == "--serial");
    let target = args.iter().find(|a| !a.starts_with("--")).cloned();

    let Some(target) = target else {
        print_usage();
        std::process::exit(2);
    };

    if target == "sim-throughput" {
        let report = ThroughputReport::measure(quick);
        print!("{}", report.summary());
        let path = "BENCH_sim_throughput.json";
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut harness = if quick {
        Harness::quick()
    } else {
        Harness::paper()
    };
    harness = harness.with_parallel(!serial);
    if target == "all" {
        // One parallel sweep fills the cache for every figure below.
        harness.prefetch_all();
    }

    let outputs: Vec<(&str, String)> = match target.as_str() {
        "fig4" => vec![("fig4", harness.fig4())],
        "fig5" => vec![("fig5", harness.fig5())],
        "fig7a" => vec![("fig7a", harness.fig7a())],
        "fig7b" => vec![("fig7b", harness.fig7b())],
        "fig8" => vec![("fig8", harness.fig8())],
        "fig9" => vec![("fig9", harness.fig9())],
        "fig10" => vec![("fig10", harness.fig10())],
        "table3" => vec![("table3", harness.table3())],
        "overheads" => vec![("overheads", harness.overheads())],
        "headline" => vec![("headline", harness.headline())],
        "all" => vec![
            ("table3", harness.table3()),
            ("fig4", harness.fig4()),
            ("fig5", harness.fig5()),
            ("fig7a", harness.fig7a()),
            ("fig7b", harness.fig7b()),
            ("fig8", harness.fig8()),
            ("fig9", harness.fig9()),
            ("fig10", harness.fig10()),
            ("overheads", harness.overheads()),
            ("headline", harness.headline()),
        ],
        _ => {
            print_usage();
            std::process::exit(2);
        }
    };

    for (name, text) in outputs {
        println!("==================== {name} ====================");
        println!("{text}");
    }
}
