//! Regenerates the tables and figures of the Conduit evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p conduit-bench --bin repro -- <target> [--quick]
//! ```
//!
//! where `<target>` is an entry of the `TARGETS` table below (run with an
//! unknown target to get the full annotated list).
//!
//! Flags:
//!
//! * `--quick` uses the reduced test scale (useful for smoke runs;
//!   `--smoke` is an alias, used by the CI warm-pool step),
//! * `--serial` disables the parallel (workload, policy) fan-out (the
//!   default runs one simulation per CPU core; results are bit-identical),
//! * `warm-pool` runs a multi-tenant request mix on four **named warm
//!   devices** (per-device FIFO lanes, parallel across devices) and prints
//!   each request's queueing/service split plus every device's cumulative
//!   FTL/coherence/GC/wear state,
//! * `arrival-sweep` sweeps **open-loop offered load** per tenant
//!   (`RunRequest::arriving_at` at a fixed inter-arrival interval) and
//!   prints the queueing-delay-vs-load curve with per-lane occupancy,
//! * `fault-sweep` sweeps the **raw flash failure rate** under a seeded
//!   fault plan on a write-heavy warm device and prints tail latency,
//!   retry/remap counters and the request index at which the spare-block
//!   budget ran out (time-to-degraded); the zero-rate row is bit-identical
//!   to a session without fault injection,
//! * `interference` co-schedules two latency-sensitive victim tenants
//!   against a bursty Markov-modulated antagonist on a shared vs isolated
//!   warm device (via a replayable `conduit-traffic` trace), sweeping the
//!   antagonist's in-burst offered load and printing victim p50/p99/p999,
//!   lane occupancy/queueing and GC/coherence counters per point,
//! * `fleet-sweep` replays one multi-tenant CTR1 trace through the
//!   `conduit-fleet` front-end at shard counts {1, 2, 4, 8}, printing
//!   fleet-wide p50/p99/p999, per-shard device/occupancy spread and
//!   admission-control shed counts (merged rows are bit-identical across
//!   shard counts),
//! * `sim-throughput` measures simulator throughput and writes
//!   `BENCH_sim_throughput.json` next to the current directory,
//! * `perf-gate` gates on the deterministic **simulated-work counter**
//!   (device operations per vector instruction) against the committed
//!   `BENCH_sim_throughput.json` baseline and **fails (exit 1)** if the
//!   counter deviates more than `--threshold` (default 15%) in *either*
//!   direction — more work per instruction is a perf regression, less
//!   usually means device operations silently stopped being issued. The
//!   counter is machine-independent, so the gate is immune to CI machine
//!   variance; wall-clock throughput is printed for information only.
//!   `--baseline <path>` overrides the baseline.

use conduit_bench::arrivals::arrival_sweep_report;
use conduit_bench::faults::fault_sweep_report;
use conduit_bench::fleet::fleet_sweep_report;
use conduit_bench::interference::interference_report;
use conduit_bench::throughput::{
    baseline_instructions_per_sec, baseline_ops_per_instruction, baseline_scale, ThroughputReport,
};
use conduit_bench::warm::warm_pool_report;
use conduit_bench::Harness;

/// Every target the binary accepts, with a one-line description. The
/// usage line and the unknown-target listing are both generated from this
/// table, so adding a target here is the whole registration step (the
/// free-text help drifted out of date more than once before).
const TARGETS: &[(&str, &str)] = &[
    ("fig4", "per-instruction offload mix case study"),
    ("fig5", "motivation: naive IFP+ISP vs host baselines"),
    ("fig7", "speedup and energy, both panels"),
    ("fig7a", "speedup over host CPU"),
    ("fig7b", "energy vs host CPU"),
    ("fig8", "tail latency CDFs"),
    ("fig9", "offload-ratio sweep"),
    ("fig10", "execution timelines"),
    ("table3", "per-workload characterization"),
    ("overheads", "runtime latency/storage overheads"),
    ("headline", "paper-abstract headline numbers"),
    ("warm-pool", "multi-tenant warm-device pool report"),
    ("arrival-sweep", "open-loop offered-load sweep"),
    ("fault-sweep", "raw flash failure-rate sweep"),
    ("interference", "bursty antagonist vs victim tenants"),
    (
        "fleet-sweep",
        "sharded fleet at fixed load, shard count swept",
    ),
    ("sim-throughput", "measure simulator throughput baseline"),
    ("perf-gate", "gate on device ops/instruction vs baseline"),
    ("all", "every figure and table above"),
];

fn print_usage() {
    let names: Vec<&str> = TARGETS.iter().map(|(name, _)| *name).collect();
    eprintln!(
        "usage: repro <{}> [--quick|--smoke] [--serial] [--baseline <path>] [--threshold <fraction>]",
        names.join("|")
    );
}

fn print_targets() {
    eprintln!("available targets:");
    for (name, what) in TARGETS {
        eprintln!("  {name:<15} {what}");
    }
}

/// The value following a `--flag` option, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn perf_gate(args: &[String], quick: bool) -> ! {
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let threshold: f64 = match flag_value(args, "--threshold") {
        None => 0.15,
        Some(t) => match t.parse() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!(
                    "perf-gate: --threshold takes a fraction in [0, 1), e.g. 0.15; got `{t}`"
                );
                std::process::exit(2);
            }
        },
    };

    let baseline_doc = match std::fs::read_to_string(&baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("perf-gate: could not read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let Some(baseline_ops) = baseline_ops_per_instruction(&baseline_doc) else {
        eprintln!(
            "perf-gate: {baseline_path} has no ops_per_instruction field; regenerate the \
             baseline with `repro sim-throughput` (the gate moved from wall-clock throughput \
             to deterministic simulated-work counters)"
        );
        std::process::exit(2);
    };
    let baseline_wall = baseline_instructions_per_sec(&baseline_doc);
    // Refuse apples-to-oranges comparisons: the measurement scale must
    // match the baseline's. Documents from before the scale field existed
    // are paper-scale.
    let baseline_scale = baseline_scale(&baseline_doc).unwrap_or("paper");
    let measured_scale = if quick { "quick" } else { "paper" };
    if baseline_scale != measured_scale {
        eprintln!(
            "perf-gate: baseline {baseline_path} was measured at {baseline_scale} scale but \
             this run is {measured_scale} scale; rerun {}",
            if quick {
                "without --quick (or regenerate the baseline with `repro sim-throughput --quick`)"
            } else {
                "with --quick (or regenerate the baseline with `repro sim-throughput`)"
            }
        );
        std::process::exit(2);
    }

    // Counters only: the gate never reads the sweep timings, so skip the
    // serial+parallel figure sweeps the figure-smoke CI step already runs.
    let report = ThroughputReport::measure_counters_only(quick);
    print!("{}", report.summary());
    if let Some(wall) = baseline_wall {
        // Informational only: wall clock depends on the machine.
        println!(
            "perf-gate: wall-clock {:.0} inst/s vs baseline {wall:.0} inst/s (informational)",
            report.instructions_per_sec
        );
    }
    let measured = report.ops_per_instruction;
    let ceiling = baseline_ops * (1.0 + threshold);
    let floor = baseline_ops * (1.0 - threshold);
    println!(
        "perf-gate: measured {measured:.4} device ops/instruction vs baseline {baseline_ops:.4} \
         (allowed [{floor:.4}, {ceiling:.4}] at {:.0}% tolerance)",
        threshold * 100.0
    );
    if measured > ceiling {
        eprintln!(
            "perf-gate: FAIL — the simulator performs {:.1}% more work per instruction than \
             the committed baseline",
            (measured / baseline_ops - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    // The counter is deterministic, so a *drop* is just as suspicious as a
    // rise: it usually means device operations (coherence flushes, GC,
    // transfers) silently stopped being issued, which would skew every
    // figure while "improving" throughput. Intentional optimizations must
    // regenerate the baseline to acknowledge the new counter.
    if measured < floor {
        eprintln!(
            "perf-gate: FAIL — the simulator performs {:.1}% less work per instruction than \
             the committed baseline; if intentional, regenerate the baseline with \
             `repro sim-throughput`",
            (1.0 - measured / baseline_ops) * 100.0
        );
        std::process::exit(1);
    }
    println!("perf-gate: OK");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let serial = args.iter().any(|a| a == "--serial");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let target = positional.next().cloned();

    let Some(target) = target else {
        print_usage();
        std::process::exit(2);
    };

    if target == "sim-throughput" {
        let report = ThroughputReport::measure(quick);
        print!("{}", report.summary());
        let path = "BENCH_sim_throughput.json";
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if target == "perf-gate" {
        perf_gate(&args, quick);
    }

    if target == "warm-pool" {
        println!("==================== warm-pool ====================");
        print!("{}", warm_pool_report(quick));
        return;
    }
    if target == "arrival-sweep" {
        println!("==================== arrival-sweep ====================");
        print!("{}", arrival_sweep_report(quick));
        return;
    }
    if target == "fault-sweep" {
        println!("==================== fault-sweep ====================");
        print!("{}", fault_sweep_report(quick));
        return;
    }
    if target == "interference" {
        println!("==================== interference ====================");
        print!("{}", interference_report(quick));
        return;
    }
    if target == "fleet-sweep" {
        println!("==================== fleet-sweep ====================");
        print!("{}", fleet_sweep_report(quick));
        return;
    }

    let mut harness = if quick {
        Harness::quick()
    } else {
        Harness::paper()
    };
    harness = harness.with_parallel(!serial);
    if target == "all" {
        // One parallel sweep fills the cache for every figure below.
        harness.prefetch_all();
    }

    let outputs: Vec<(&str, String)> = match target.as_str() {
        "fig4" => vec![("fig4", harness.fig4())],
        "fig5" => vec![("fig5", harness.fig5())],
        "fig7" => vec![("fig7a", harness.fig7a()), ("fig7b", harness.fig7b())],
        "fig7a" => vec![("fig7a", harness.fig7a())],
        "fig7b" => vec![("fig7b", harness.fig7b())],
        "fig8" => vec![("fig8", harness.fig8())],
        "fig9" => vec![("fig9", harness.fig9())],
        "fig10" => vec![("fig10", harness.fig10())],
        "table3" => vec![("table3", harness.table3())],
        "overheads" => vec![("overheads", harness.overheads())],
        "headline" => vec![("headline", harness.headline())],
        "all" => vec![
            ("table3", harness.table3()),
            ("fig4", harness.fig4()),
            ("fig5", harness.fig5()),
            ("fig7a", harness.fig7a()),
            ("fig7b", harness.fig7b()),
            ("fig8", harness.fig8()),
            ("fig9", harness.fig9()),
            ("fig10", harness.fig10()),
            ("overheads", harness.overheads()),
            ("headline", harness.headline()),
        ],
        unknown => {
            eprintln!("repro: unknown target `{unknown}`");
            print_targets();
            std::process::exit(2);
        }
    };

    for (name, text) in outputs {
        println!("==================== {name} ====================");
        println!("{text}");
    }
}
