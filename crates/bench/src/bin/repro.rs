//! Regenerates the tables and figures of the Conduit evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p conduit-bench --bin repro -- <target> [--quick]
//! ```
//!
//! where `<target>` is one of `fig4`, `fig5`, `fig7` (both panels), `fig7a`,
//! `fig7b`, `fig8`, `fig9`, `fig10`, `table3`, `overheads`, `headline`,
//! `sim-throughput`, `perf-gate`, or `all`.
//!
//! Flags:
//!
//! * `--quick` uses the reduced test scale (useful for smoke runs),
//! * `--serial` disables the parallel (workload, policy) fan-out (the
//!   default runs one simulation per CPU core; results are bit-identical),
//! * `sim-throughput` measures simulator throughput and writes
//!   `BENCH_sim_throughput.json` next to the current directory,
//! * `perf-gate` measures throughput and **fails (exit 1) if it dropped
//!   more than 15% below** the committed `BENCH_sim_throughput.json`
//!   baseline (`--baseline <path>` and `--threshold <fraction>` override
//!   the defaults) — the CI perf-regression gate.

use conduit_bench::throughput::{baseline_instructions_per_sec, baseline_scale, ThroughputReport};
use conduit_bench::Harness;

fn print_usage() {
    eprintln!(
        "usage: repro <fig4|fig5|fig7|fig7a|fig7b|fig8|fig9|fig10|table3|overheads|headline|sim-throughput|perf-gate|all> [--quick] [--serial] [--baseline <path>] [--threshold <fraction>]"
    );
}

/// The value following a `--flag` option, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn perf_gate(args: &[String], quick: bool) -> ! {
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| "BENCH_sim_throughput.json".to_string());
    let threshold: f64 = match flag_value(args, "--threshold") {
        None => 0.15,
        Some(t) => match t.parse() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!(
                    "perf-gate: --threshold takes a fraction in [0, 1), e.g. 0.15; got `{t}`"
                );
                std::process::exit(2);
            }
        },
    };

    let baseline_doc = match std::fs::read_to_string(&baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("perf-gate: could not read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let Some(baseline) = baseline_instructions_per_sec(&baseline_doc) else {
        eprintln!("perf-gate: {baseline_path} has no instructions_per_sec field");
        std::process::exit(2);
    };
    // Refuse apples-to-oranges comparisons: the measurement scale must
    // match the baseline's. Documents from before the scale field existed
    // are paper-scale.
    let baseline_scale = baseline_scale(&baseline_doc).unwrap_or("paper");
    let measured_scale = if quick { "quick" } else { "paper" };
    if baseline_scale != measured_scale {
        eprintln!(
            "perf-gate: baseline {baseline_path} was measured at {baseline_scale} scale but \
             this run is {measured_scale} scale; rerun {}",
            if quick {
                "without --quick (or regenerate the baseline with `repro sim-throughput --quick`)"
            } else {
                "with --quick (or regenerate the baseline with `repro sim-throughput`)"
            }
        );
        std::process::exit(2);
    }

    let report = ThroughputReport::measure(quick);
    print!("{}", report.summary());
    let measured = report.instructions_per_sec;
    let floor = baseline * (1.0 - threshold);
    println!(
        "perf-gate: measured {measured:.0} inst/s vs baseline {baseline:.0} inst/s \
         (floor {floor:.0} at {:.0}% tolerance)",
        threshold * 100.0
    );
    if measured < floor {
        eprintln!(
            "perf-gate: FAIL — throughput dropped {:.1}% below the committed baseline",
            (1.0 - measured / baseline) * 100.0
        );
        std::process::exit(1);
    }
    println!("perf-gate: OK");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial = args.iter().any(|a| a == "--serial");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let target = positional.next().cloned();

    let Some(target) = target else {
        print_usage();
        std::process::exit(2);
    };

    if target == "sim-throughput" {
        let report = ThroughputReport::measure(quick);
        print!("{}", report.summary());
        let path = "BENCH_sim_throughput.json";
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if target == "perf-gate" {
        perf_gate(&args, quick);
    }

    let mut harness = if quick {
        Harness::quick()
    } else {
        Harness::paper()
    };
    harness = harness.with_parallel(!serial);
    if target == "all" {
        // One parallel sweep fills the cache for every figure below.
        harness.prefetch_all();
    }

    let outputs: Vec<(&str, String)> = match target.as_str() {
        "fig4" => vec![("fig4", harness.fig4())],
        "fig5" => vec![("fig5", harness.fig5())],
        "fig7" => vec![("fig7a", harness.fig7a()), ("fig7b", harness.fig7b())],
        "fig7a" => vec![("fig7a", harness.fig7a())],
        "fig7b" => vec![("fig7b", harness.fig7b())],
        "fig8" => vec![("fig8", harness.fig8())],
        "fig9" => vec![("fig9", harness.fig9())],
        "fig10" => vec![("fig10", harness.fig10())],
        "table3" => vec![("table3", harness.table3())],
        "overheads" => vec![("overheads", harness.overheads())],
        "headline" => vec![("headline", harness.headline())],
        "all" => vec![
            ("table3", harness.table3()),
            ("fig4", harness.fig4()),
            ("fig5", harness.fig5()),
            ("fig7a", harness.fig7a()),
            ("fig7b", harness.fig7b()),
            ("fig8", harness.fig8()),
            ("fig9", harness.fig9()),
            ("fig10", harness.fig10()),
            ("overheads", harness.overheads()),
            ("headline", harness.headline()),
        ],
        _ => {
            print_usage();
            std::process::exit(2);
        }
    };

    for (name, text) in outputs {
        println!("==================== {name} ====================");
        println!("{text}");
    }
}
