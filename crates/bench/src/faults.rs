//! The `repro fault-sweep` target: raw flash failure rate vs tail latency,
//! retry/remap work and time-to-degraded on a write-heavy tenant.
//!
//! Each sweep point attaches a seeded [`conduit_types::FaultConfig`] to a
//! fresh warm device and drives it with an out-of-place write stream that
//! alternates SSD-internal and host policies — the policy flip forces every
//! other request to flush its dirty pages through the FTL's flash-program
//! path, which is where program faults fire and blocks retire. Read
//! transients ride the same rate, so the retry ladder charges real sense
//! latency into the tail.
//!
//! The printed table has one row per raw failure rate: requests served,
//! p50/p99 service time, the fault counters
//! ([`conduit_sim::DeviceSnapshot`]), the device's final health, and the
//! request index at which the spare-block budget ran out (`-` while the
//! device stays healthy). The zero-rate row doubles as the bit-identity
//! invariant: an inert plan draws nothing, so its counters are all zero and
//! its latencies match a session without fault injection.

use conduit::{Policy, RunRequest, Session};
use conduit_types::{
    ConduitError, Duration, FaultConfig, LogicalPageId, OpType, Operand, SsdConfig, VectorInst,
    VectorProgram,
};

/// The raw per-operation failure rates the sweep offers (applied to
/// program, erase and transient-read faults alike).
const RATES: [f64; 5] = [0.0, 1e-3, 1e-2, 5e-2, 0.3];

/// Every sweep point replays the same seed: the curve is a function of the
/// rate alone, reproducible across runs and pool sizes.
const SWEEP_SEED: u64 = 0xC0DE_FA17;

/// Spare blocks per device: small enough that the top rate exhausts it.
const SPARE_BLOCKS: u64 = 4;

/// Requests per sweep point.
fn requests_per_point(quick: bool) -> usize {
    if quick {
        32
    } else {
        96
    }
}

/// A store-bearing program: every run produces a dirty result page, so the
/// alternating host policy has something to flush to flash.
fn writer_program() -> VectorProgram {
    let mut prog = VectorProgram::new("fault-writer");
    let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    prog.push(
        VectorInst::binary(1, OpType::Add, Operand::result(x), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );
    prog
}

/// The seeded fault plan for one sweep point.
fn sweep_faults(rate: f64) -> FaultConfig {
    FaultConfig {
        program_fail_rate: rate,
        erase_fail_rate: rate,
        read_transient_rate: rate,
        wear_sensitivity: 0.1,
        spare_blocks: SPARE_BLOCKS,
        ..FaultConfig::with_seed(SWEEP_SEED)
    }
}

/// A percentile of the collected per-request service times.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the fault sweep and formats the rate-vs-tail/degradation curve.
///
/// `quick` selects the reduced test scale (the `--smoke` / `--quick` flags
/// of the `repro` binary).
pub fn fault_sweep_report(quick: bool) -> String {
    let cfg = if quick {
        SsdConfig::small_for_tests()
    } else {
        SsdConfig::default()
    };
    let n = requests_per_point(quick);

    let mut out = String::from(
        "# Fault sweep: raw flash failure rate vs tail latency and degradation\n\
         # same seed at every point; writes alternate Conduit/HostCpu so every\n\
         # other request flushes through the flash-program path\n\
         rate\trequests\tp50_ms\tp99_ms\tread_retries\tprogram_failures\terase_failures\t\
         retired_blocks\tremapped_pages\thealth\tdegraded_at\n",
    );
    for &rate in &RATES {
        // A fresh session per sweep point: each curve sample ages its own
        // device from pristine, so points are independent and deterministic.
        let mut session = Session::builder(cfg.clone()).build();
        let id = session
            .register(writer_program())
            .expect("the writer program always validates");
        let dev = session.create_device_with_faults("wearing", sweep_faults(rate));

        let mut latencies: Vec<Duration> = Vec::new();
        let mut degraded_at: Option<usize> = None;
        for i in 0..n {
            let policy = if i % 2 == 0 {
                Policy::Conduit
            } else {
                Policy::HostCpu
            };
            match session.submit(&RunRequest::new(id, policy).on_device(dev)) {
                Ok(outcome) => latencies.push(outcome.summary.service_time),
                Err(ConduitError::DeviceDegraded { .. }) => {
                    degraded_at = Some(i);
                    break;
                }
                Err(other) => panic!("unexpected sweep error at rate {rate}: {other}"),
            }
        }
        latencies.sort_unstable();

        let snap = session.device_snapshot(dev);
        let degraded = degraded_at.map_or_else(|| "-".to_string(), |i| i.to_string());
        out.push_str(&format!(
            "{rate}\t{}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}\t{degraded}\n",
            latencies.len(),
            percentile(&latencies, 0.5).as_ms(),
            percentile(&latencies, 0.99).as_ms(),
            snap.read_retries,
            snap.program_failures,
            snap.erase_failures,
            snap.retired_blocks,
            snap.remapped_pages,
            snap.health,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_rows(report: &str) -> Vec<Vec<String>> {
        report
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn quick_sweep_produces_one_row_per_rate() {
        let report = fault_sweep_report(true);
        assert_eq!(data_rows(&report).len(), RATES.len(), "{report}");
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(fault_sweep_report(true), fault_sweep_report(true));
    }

    #[test]
    fn zero_rate_row_is_fault_free_and_top_rate_row_is_not() {
        let report = fault_sweep_report(true);
        let rows = data_rows(&report);
        let zero = &rows[0];
        assert_eq!(zero[0], "0");
        for counter in &zero[4..9] {
            assert_eq!(counter, "0", "inert plan must not fault: {report}");
        }
        assert_eq!(zero[9], "healthy");
        assert_eq!(zero[10], "-");

        let top = rows.last().unwrap();
        let retries: u64 = top[4].parse().unwrap();
        let failures: u64 = top[5].parse().unwrap();
        let retired: u64 = top[7].parse().unwrap();
        assert!(retries > 0, "top rate must retry reads: {report}");
        assert!(failures > 0, "top rate must fail programs: {report}");
        assert!(retired > 0, "top rate must retire blocks: {report}");
    }
}
