//! The `repro fleet-sweep` target: shard-count scaling of the fleet
//! front-end at a fixed offered load.
//!
//! One multi-tenant [`conduit_traffic::TrafficMix`] — steady latency-bound
//! tenants, a weighted pair sharing a deficit-round-robin lane, an
//! SLO-capped hog and a bursty on/off source — is unrolled into a CTR1
//! trace once, round-tripped through the serialized trace format (the
//! weighted tenants force the version-2 scheduling block), and replayed
//! through a [`conduit_fleet::Fleet`] at every shard count in
//! `{1, 2, 4, 8}`.
//!
//! Because every tenant owns (or explicitly shares) a named device and
//! device lanes are fully independent, the merged fleet latency and the
//! per-tenant shed counts are **bit-identical across shard counts**; only
//! the per-shard occupancy rows change as rendezvous hashing spreads the
//! lanes. That invariant is what the run-twice CI diff and the tests below
//! pin down.

use conduit::Policy;
use conduit_fleet::Fleet;
use conduit_traffic::{ArrivalSpec, SloTarget, TenantSpec, Trace, TrafficMix};
use conduit_types::{Duration, SsdConfig};
use conduit_workloads::{Scale, Workload};

use crate::interference::probe_service;

/// Shard counts the sweep visits.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Steady-tenant arrivals per tenant over the horizon.
fn steady_arrivals(quick: bool) -> u64 {
    if quick {
        8
    } else {
        32
    }
}

/// The sweep's tenant mix: six tenants over five named lanes.
///
/// * `steady-a` / `steady-b` — latency-bound tenants on their own lanes at
///   half their service rate (the well-behaved population),
/// * `wfq-hi` / `wfq-lo` — a 4:1 weighted pair sharing one lane at a
///   combined load just past saturation, so deficit round robin arbitrates,
/// * `hog` — an open-loop tenant offered at twice its service rate with a
///   lane-occupancy SLO cap, so admission control sheds its later windows,
/// * `bursty` — a Markov-modulated on/off source on its own lane.
fn sweep_mix(cfg: &SsdConfig, scale: Scale, quick: bool) -> (TrafficMix, Duration) {
    let steady_a = probe_service(cfg, Workload::Jacobi1d, Policy::Conduit, scale);
    let steady_b = probe_service(cfg, Workload::XorFilter, Policy::Conduit, scale);
    let wfq = probe_service(cfg, Workload::Aes, Policy::Conduit, scale);
    let hog = probe_service(cfg, Workload::LlmTraining, Policy::HostCpu, scale);

    let gap_a = steady_a * 2;
    let horizon = gap_a * steady_arrivals(quick);
    let mix = TrafficMix::new(scale)
        .tenant(TenantSpec::new(
            "steady-a",
            "lane-a",
            Workload::Jacobi1d,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: gap_a,
                phase: Duration::ZERO,
            },
        ))
        .tenant(TenantSpec::new(
            "steady-b",
            "lane-b",
            Workload::XorFilter,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: steady_b * 2,
                phase: steady_b,
            },
        ))
        // The weighted pair arrives in lockstep at a combined load of
        // ~1.3x the lane's service rate: the lane stays backlogged, so
        // the 4:1 deficit split decides who waits.
        .tenant(
            TenantSpec::new(
                "wfq-hi",
                "wfq-lane",
                Workload::Aes,
                Policy::Conduit,
                ArrivalSpec::Deterministic {
                    interarrival: wfq * 3 / 2,
                    phase: Duration::ZERO,
                },
            )
            .weighted(4),
        )
        .tenant(
            TenantSpec::new(
                "wfq-lo",
                "wfq-lane",
                Workload::Aes,
                Policy::Conduit,
                ArrivalSpec::Deterministic {
                    interarrival: wfq * 3 / 2,
                    phase: wfq / 4,
                },
            )
            .weighted(1),
        )
        .tenant(
            TenantSpec::new(
                "hog",
                "hog-lane",
                Workload::LlmTraining,
                Policy::HostCpu,
                ArrivalSpec::Deterministic {
                    interarrival: hog / 2,
                    phase: Duration::ZERO,
                },
            )
            .with_slo(SloTarget {
                max_p99: None,
                max_lane_occupancy: Some(0.8),
            }),
        )
        .tenant(TenantSpec::new(
            "bursty",
            "burst-lane",
            Workload::Heat3d,
            Policy::Conduit,
            ArrivalSpec::MarkovOnOff {
                burst_interarrival: gap_a / 2,
                mean_on: gap_a * 3,
                mean_off: gap_a * 3,
                seed: 0x5EED_F1EE,
            },
        ));
    (mix, horizon)
}

/// Runs the fleet sweep and formats the table.
///
/// `quick` selects the reduced smoke scale (the `--smoke` / `--quick`
/// flags of the `repro` binary).
pub fn fleet_sweep_report(quick: bool) -> String {
    let cfg = if quick {
        SsdConfig::small_for_tests()
    } else {
        SsdConfig::default()
    };
    let scale = Scale::test();
    let (mix, horizon) = sweep_mix(&cfg, scale, quick);

    // The offered load is fixed once: every shard count replays the exact
    // same CTR1 byte stream (round-tripped through the serialized format,
    // which the weighted tenants promote to version 2).
    let bytes = mix
        .generate(horizon)
        .expect("sweep mixes are always valid")
        .to_bytes();
    let trace = Trace::from_bytes(&bytes).expect("sweep traces round-trip");
    // Admission re-evaluates SLOs a handful of times over the horizon.
    let window = horizon / 8;

    let mut out = String::from(
        "# Fleet sweep: fixed offered load from one CTR1 trace, shard count swept\n\
         # fleet latency = arrival-to-completion merged across all tenants;\n\
         # lanes are per-device, so the merged rows are bit-identical across\n\
         # shard counts and only the occupancy spread changes\n\
         shards\trecords\tserved\tshed\tfleet_p50_ms\tfleet_p99_ms\tfleet_p999_ms\n",
    );
    let mut occupancy = String::from(
        "# per-shard spread: devices placed, cumulative lane occupancy, lane requests\n\
         # occ\tshards\tshard\tdevices\tlane_occupancy\tlane_requests\tdegraded\n",
    );
    let mut sheds = String::from(
        "# admission sheds: tenant, window index, typed rejection count\n\
         # shed\tshards\ttenant\twindow\trequests\n",
    );
    for shards in SHARDS {
        let mut fleet = Fleet::builder(cfg.clone())
            .shards(shards)
            .admission_window(window)
            .build();
        let report = fleet
            .run_trace(&trace)
            .expect("sweep traces replay cleanly");
        out.push_str(&format!(
            "{shards}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\n",
            trace.records.len(),
            report.served,
            report.shed,
            report.latency.percentile(0.50).as_ms(),
            report.latency.percentile(0.99).as_ms(),
            report.latency.percentile(0.999).as_ms(),
        ));
        for (shard, s) in report.shards.iter().enumerate() {
            occupancy.push_str(&format!(
                "occ\t{shards}\t{shard}\t{}\t{:.3}\t{}\t{}\n",
                s.devices,
                s.lanes.occupancy(),
                s.lanes.requests,
                s.degraded,
            ));
        }
        for shed in &report.sheds {
            sheds.push_str(&format!(
                "shed\t{shards}\t{}\t{}\t{}\n",
                shed.tenant, shed.window, shed.requests,
            ));
        }
    }
    out.push_str(&occupancy);
    out.push_str(&sheds);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows<'a>(report: &'a str, prefix: &str) -> Vec<Vec<&'a str>> {
        report
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split('\t').collect::<Vec<_>>())
            .filter(|r| match prefix {
                "main" => r[0].parse::<usize>().is_ok(),
                p => r[0] == p,
            })
            .collect()
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(fleet_sweep_report(true), fleet_sweep_report(true));
    }

    #[test]
    fn merged_fleet_rows_are_identical_across_shard_counts() {
        let report = fleet_sweep_report(true);
        let main = rows(&report, "main");
        assert_eq!(main.len(), SHARDS.len(), "{report}");
        for row in &main[1..] {
            assert_eq!(
                row[1..],
                main[0][1..],
                "per-device lanes must make merged results shard-count independent: {report}"
            );
        }
    }

    #[test]
    fn every_record_is_served_or_shed_and_the_hog_sheds() {
        let report = fleet_sweep_report(true);
        for row in rows(&report, "main") {
            let records: u64 = row[1].parse().unwrap();
            let served: u64 = row[2].parse().unwrap();
            let shed: u64 = row[3].parse().unwrap();
            assert_eq!(served + shed, records, "{report}");
            assert!(shed > 0, "the SLO-capped hog must shed: {report}");
        }
        let sheds = rows(&report, "shed");
        assert!(!sheds.is_empty(), "{report}");
        assert!(
            sheds.iter().all(|r| r[2] == "hog"),
            "only the capped tenant may shed: {report}"
        );
    }

    #[test]
    fn occupancy_rows_account_for_every_lane() {
        let report = fleet_sweep_report(true);
        let occ = rows(&report, "occ");
        for shards in SHARDS {
            let mine: Vec<_> = occ
                .iter()
                .filter(|r| r[1].parse::<usize>().unwrap() == shards)
                .collect();
            assert_eq!(mine.len(), shards, "one row per shard: {report}");
            let devices: usize = mine.iter().map(|r| r[3].parse::<usize>().unwrap()).sum();
            assert_eq!(devices, 5, "five named lanes, wherever they land: {report}");
            let requests: u64 = mine.iter().map(|r| r[5].parse::<u64>().unwrap()).sum();
            assert!(requests > 0, "{report}");
        }
    }
}
