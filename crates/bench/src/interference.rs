//! The `repro interference` target: cross-tenant interference under bursty
//! open-loop traffic.
//!
//! Two latency-sensitive **victim** tenants (deterministic arrivals, phase
//! offset so they interleave) run against one bursty **antagonist** tenant
//! (a Markov-modulated on/off source) in two configurations:
//!
//! * `shared` — all three tenants target one warm device, so they serialize
//!   through its FIFO lane and contend for the same dies, channels, GC debt
//!   and coherence directory (the shared-die/channel configuration);
//! * `isolated` — the antagonist gets its own device, leaving the victims'
//!   lane untouched (the baseline the shared rows are read against).
//!
//! The sweep varies the antagonist's *offered load inside its bursts*
//! (burst interarrival = antagonist service time / load) while every other
//! parameter — seeds, on/off windows, victim cadence — stays fixed, so the
//! shared-lane victim tail degrades monotonically as the antagonist crosses
//! saturation, and the isolated rows stay bit-identical across loads.
//!
//! Each sweep point builds its tenant mix with
//! [`conduit_traffic::TrafficMix`], unrolls it into a replayable
//! [`conduit_traffic::Trace`] and replays the trace against a fresh
//! session. Victim latency is the **arrival-to-completion total time**
//! (queueing + service); the two victims' histograms are combined with
//! [`LatencyStats::merge`] to give fleet-wide p50/p99/p999.

use conduit::{Policy, RunRequest, Session};
use conduit_sim::LatencyStats;
use conduit_traffic::{ArrivalSpec, TenantSpec, TrafficMix};
use conduit_types::{Duration, SsdConfig};
use conduit_workloads::{Scale, Workload};

/// Antagonist offered load inside its on-bursts, as a multiple of the
/// antagonist's own service rate (1.0 = the lane can just keep up while the
/// burst lasts; above that every burst grows a backlog the victims queue
/// behind).
const LOADS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Loads used in quick (`--smoke`) mode.
const QUICK_LOADS: [f64; 3] = [0.5, 1.0, 4.0];

/// Seed of the antagonist's on/off modulation: fixed across the sweep so
/// every load point sees the same burst windows, only denser bursts.
const ANTAGONIST_SEED: u64 = 0x7EA7_0DD5;

/// The two sweep configurations.
const CONFIGS: [&str; 2] = ["shared", "isolated"];

/// Victim arrivals per victim tenant at one sweep point.
fn victim_arrivals(quick: bool) -> u64 {
    if quick {
        10
    } else {
        32
    }
}

/// Measures one request's device-service time on a throwaway probe session
/// (same trick as `repro arrival-sweep`: the offered load is expressed
/// relative to measured capacity, so the sweep is config-independent).
pub(crate) fn probe_service(
    cfg: &SsdConfig,
    workload: Workload,
    policy: Policy,
    scale: Scale,
) -> Duration {
    let mut probe = Session::builder(cfg.clone()).serial().build();
    let id = probe
        .register(workload.program(scale).expect("generators always succeed"))
        .expect("generated programs validate");
    let dev = probe.create_device("probe");
    probe
        .submit(&RunRequest::new(id, policy).on_device(dev))
        .expect("probe run succeeds")
        .summary
        .service_time
}

/// The tenant mix of one sweep point. Tenant order is fixed: victims first
/// (indices 0 and 1), antagonist last (index 2).
fn point_mix(
    config: &str,
    victim_gap: Duration,
    antagonist_gap: Duration,
    mean_on: Duration,
    scale: Scale,
) -> TrafficMix {
    let antagonist_device = if config == "shared" {
        "victim-lane"
    } else {
        "antagonist-lane"
    };
    TrafficMix::new(scale)
        .tenant(TenantSpec::new(
            "victim-a",
            "victim-lane",
            Workload::Jacobi1d,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: victim_gap,
                phase: Duration::ZERO,
            },
        ))
        .tenant(TenantSpec::new(
            "victim-b",
            "victim-lane",
            Workload::XorFilter,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: victim_gap,
                // Half a gap out of phase: the two victims interleave
                // instead of colliding.
                phase: victim_gap / 2,
            },
        ))
        // Host-bound training: every run flushes dirty pages through the
        // coherence protocol, so the antagonist also pollutes GC and
        // coherence state, not just the lane.
        .tenant(TenantSpec::new(
            "antagonist",
            antagonist_device,
            Workload::LlmTraining,
            Policy::HostCpu,
            ArrivalSpec::MarkovOnOff {
                burst_interarrival: antagonist_gap,
                mean_on,
                mean_off: mean_on,
                seed: ANTAGONIST_SEED,
            },
        ))
}

/// Runs the interference sweep and formats the table.
///
/// `quick` selects the reduced smoke scale (the `--smoke` / `--quick` flags
/// of the `repro` binary).
pub fn interference_report(quick: bool) -> String {
    let cfg = if quick {
        SsdConfig::small_for_tests()
    } else {
        SsdConfig::default()
    };
    let scale = Scale::test();
    let loads: &[f64] = if quick { &QUICK_LOADS } else { &LOADS };

    // Capacity probes: victim cadence is set to half the lane's victim
    // service rate (victims alone leave the lane half idle), the antagonist
    // burst gap to `service / load`.
    let victim_service = probe_service(&cfg, Workload::Jacobi1d, Policy::Conduit, scale).max(
        probe_service(&cfg, Workload::XorFilter, Policy::Conduit, scale),
    );
    let antagonist_service = probe_service(&cfg, Workload::LlmTraining, Policy::HostCpu, scale);
    let victim_gap = victim_service * 2;
    // On/off windows span a few victim gaps, so every victim sees both
    // quiet and bursty stretches of the modulation.
    let mean_on = victim_gap * 3;
    let horizon = victim_gap * victim_arrivals(quick);

    let mut out = String::from(
        "# Interference sweep: bursty antagonist vs latency-sensitive victims\n\
         # victim latency = arrival-to-completion (queueing + service), two\n\
         # victim tenants merged; same antagonist seed at every point, only\n\
         # the in-burst offered load changes\n\
         config\tload\tvictims\tvictim_p50_ms\tvictim_p99_ms\tvictim_p999_ms\t\
         antagonist_reqs\tlane_occupancy\tlane_queued_ms\tgc\tcoherence_syncs\tdevice_ops\n",
    );
    for config in CONFIGS {
        for &load in loads {
            let antagonist_gap = Duration::from_ps(
                (antagonist_service.as_ps() as f64 / load).round().max(1.0) as u64,
            );
            let mix = point_mix(config, victim_gap, antagonist_gap, mean_on, scale);
            let trace = mix.generate(horizon).expect("sweep mixes are always valid");

            // A fresh session per point: every sample starts from pristine
            // devices, so points are independent and deterministic.
            let mut session = Session::builder(cfg.clone()).build();
            let run = trace
                .instantiate(&mut session)
                .expect("sweep traces instantiate");
            let outcomes = session
                .submit_batch(&run.requests)
                .expect("sweep batches succeed");

            // Per-tenant arrival-to-completion histograms, merged across
            // the two victims for the fleet-wide tail.
            let mut per_tenant = vec![LatencyStats::new(); mix.tenants.len()];
            for (outcome, &tenant) in outcomes.iter().zip(&run.tenants) {
                per_tenant[usize::from(tenant)].record(outcome.summary.total_time);
            }
            let mut victims = LatencyStats::new();
            victims.merge(&per_tenant[0]);
            victims.merge(&per_tenant[1]);
            let antagonist_requests = per_tenant[2].len();

            let snap = session.device_snapshot(run.devices[0]);
            let lane_busy = snap.lane_busy_time.as_ms();
            let lane_idle = snap.lane_idle_time.as_ms();
            let occupancy = if lane_busy + lane_idle > 0.0 {
                lane_busy / (lane_busy + lane_idle)
            } else {
                0.0
            };
            out.push_str(&format!(
                "{config}\t{load}\t{}\t{:.3}\t{:.3}\t{:.3}\t{antagonist_requests}\t{occupancy:.3}\t{:.3}\t{}\t{}\t{}\n",
                victims.len(),
                victims.percentile(0.50).as_ms(),
                victims.percentile(0.99).as_ms(),
                victims.percentile(0.999).as_ms(),
                snap.lane_queued_time.as_ms(),
                snap.gc_invocations,
                snap.coherence_syncs,
                snap.device_ops,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(report: &str) -> Vec<Vec<String>> {
        report
            .lines()
            .filter(|l| l.starts_with("shared\t") || l.starts_with("isolated\t"))
            .map(|l| l.split('\t').map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn quick_sweep_has_one_row_per_config_and_load() {
        let report = interference_report(true);
        let rows = rows(&report);
        assert_eq!(rows.len(), 2 * QUICK_LOADS.len(), "{report}");
        for row in &rows {
            let victims: usize = row[2].parse().unwrap();
            assert_eq!(victims as u64, 2 * victim_arrivals(true), "{report}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(interference_report(true), interference_report(true));
    }

    #[test]
    fn shared_lane_tail_degrades_monotonically_with_load() {
        let report = interference_report(true);
        let rows = rows(&report);
        let shared_p99: Vec<f64> = rows
            .iter()
            .filter(|r| r[0] == "shared")
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(
            shared_p99.windows(2).all(|w| w[0] <= w[1]),
            "shared victim p99 must be nondecreasing in load: {report}"
        );
        assert!(
            *shared_p99.last().unwrap() > shared_p99[0],
            "saturating antagonist must degrade the victim tail: {report}"
        );
    }

    #[test]
    fn isolated_victims_are_untouched_by_antagonist_load() {
        let report = interference_report(true);
        let rows = rows(&report);
        let isolated: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "isolated").collect();
        // On their own lane the victims never see the antagonist: every
        // load point reproduces bit-identical victim latencies and lane
        // counters.
        for row in &isolated[1..] {
            // Victim latencies (2..=5) and victim-lane counters (7..) must
            // match; only the antagonist request count (6) tracks its load.
            assert_eq!(
                row[2..=5],
                isolated[0][2..=5],
                "isolated victims must not vary with antagonist load: {report}"
            );
            assert_eq!(
                row[7..],
                isolated[0][7..],
                "isolated victim lane must not vary with antagonist load: {report}"
            );
        }
        // And the shared rows at top load must be strictly worse than the
        // isolated baseline.
        let shared_top_p99: f64 = rows.iter().rev().find(|r| r[0] == "shared").unwrap()[4]
            .parse()
            .unwrap();
        let isolated_p99: f64 = isolated[0][4].parse().unwrap();
        assert!(
            shared_top_p99 > isolated_p99,
            "sharing the lane must cost tail latency: {report}"
        );
    }
}
