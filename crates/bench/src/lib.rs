//! # conduit-bench
//!
//! Benchmark harness that regenerates every table and figure of the Conduit
//! evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md for
//! recorded paper-vs-measured results).
//!
//! The [`Harness`] drives a [`conduit::Session`]: every workload is
//! vectorized once and registered in the session's program registry, each
//! (workload, policy) pair is submitted once and its [`conduit::RunOutcome`]
//! cached, and the `figN`/`tableN` methods format the same rows/series the
//! paper plots. The `repro` binary
//! (`cargo run -p conduit-bench --bin repro -- <figure>`) prints them, and
//! the benches under `benches/` measure the simulator itself (see [`micro`]).
//!
//! Because every figure run uses a **fresh** [`conduit_sim::SsdDevice`],
//! runs of different (workload, policy) pairs are completely independent;
//! the session therefore fans missing pairs out across all CPU cores by
//! default, with results bit-identical to the serial path (see
//! [`conduit::Session::submit_batch`]). The `repro warm-pool` target
//! ([`warm`]) instead runs a multi-tenant request mix on a pool of **named
//! warm devices** — per-device FIFO lanes, parallel across devices —
//! exercising the FTL/coherence/GC/wear state the figure sweeps reset per
//! run and the stream-clock queueing/service split.
//!
//! Timelines are only collected for the three (workload, policy) pairs
//! Figure 10 actually plots; every other cached outcome is a constant-memory
//! [`conduit::RunSummary`], so the cache no longer grows with program length
//! at paper scale.

pub mod arrivals;
pub mod faults;
pub mod fleet;
pub mod interference;
pub mod micro;
pub mod throughput;
pub mod warm;

use std::collections::HashMap;

use conduit::{gmean, Policy, ProgramId, RunOutcome, RunRequest, Session};
use conduit_types::{ExecutionSite, Resource, SsdConfig};
use conduit_workloads::{characterize, Scale, Workload};

/// Runs workload × policy combinations and formats the paper's figures.
#[derive(Debug)]
pub struct Harness {
    cfg: SsdConfig,
    scale: Scale,
    parallel: bool,
    workers: Option<usize>,
    session: Session,
    program_ids: HashMap<Workload, ProgramId>,
    cache: HashMap<(Workload, Policy), RunOutcome>,
}

impl Harness {
    /// Harness at the scale used to regenerate the paper's figures.
    pub fn paper() -> Self {
        Harness::new(SsdConfig::default(), Scale::new(4, 1))
    }

    /// A reduced-scale harness for smoke tests and micro benches.
    pub fn quick() -> Self {
        Harness::new(SsdConfig::small_for_tests(), Scale::test())
    }

    /// Builds a harness with an explicit configuration and scale.
    pub fn new(cfg: SsdConfig, scale: Scale) -> Self {
        let session = Self::build_session(&cfg, true, None);
        Harness {
            cfg,
            scale,
            parallel: true,
            workers: None,
            session,
            program_ids: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    fn build_session(cfg: &SsdConfig, parallel: bool, workers: Option<usize>) -> Session {
        let mut builder = Session::builder(cfg.clone());
        if let Some(w) = workers {
            builder = builder.workers(w);
        }
        if !parallel {
            builder = builder.serial();
        }
        builder.build()
    }

    /// Rebuilds the session after a concurrency-setting change (intended for
    /// use right after construction, before anything is cached).
    fn reconfigure(&mut self) {
        self.session = Self::build_session(&self.cfg, self.parallel, self.workers);
        self.program_ids.clear();
        self.cache.clear();
    }

    /// Builder-style: enables or disables the parallel fan-out (parallel is
    /// the default; the serial path exists for comparison and testing).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self.reconfigure();
        self
    }

    /// Builder-style: overrides the worker-thread count used by the fan-out
    /// (default: one per available CPU core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self.reconfigure();
        self
    }

    /// Whether missing (workload, policy) pairs are simulated in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The workload scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The session the harness drives (programs registered so far, configs).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Whether a pair's run must carry the full timeline: only the three
    /// series Figure 10 plots ever read one.
    fn needs_timeline(workload: Workload, policy: Policy) -> bool {
        workload == Workload::LlamaInference
            && matches!(
                policy,
                Policy::BwOffloading | Policy::DmOffloading | Policy::Conduit
            )
    }

    /// Vectorizes (once) and registers the workload's program, returning its
    /// registry handle.
    fn ensure_program(&mut self, workload: Workload) -> ProgramId {
        if let Some(&id) = self.program_ids.get(&workload) {
            return id;
        }
        let program = workload
            .program(self.scale)
            .expect("workload generators always produce valid programs");
        let id = self
            .session
            .register(program)
            .expect("generated programs always validate");
        self.program_ids.insert(workload, id);
        id
    }

    fn request_for(&mut self, workload: Workload, policy: Policy) -> RunRequest {
        let id = self.ensure_program(workload);
        RunRequest::new(id, policy).timeline(Self::needs_timeline(workload, policy))
    }

    /// Simulates every not-yet-cached pair in `pairs`, fanning the runs out
    /// across all CPU cores when parallelism is enabled.
    ///
    /// Each run executes on a fresh simulated device, so the reports are
    /// **bit-identical** to running the same pairs one at a time; only the
    /// wall-clock time changes.
    pub fn prefetch(&mut self, pairs: &[(Workload, Policy)]) {
        let mut missing: Vec<(Workload, Policy)> = Vec::new();
        for &pair in pairs {
            if !self.cache.contains_key(&pair) && !missing.contains(&pair) {
                missing.push(pair);
            }
        }
        if missing.is_empty() {
            return;
        }
        let requests: Vec<RunRequest> = missing
            .iter()
            .map(|&(w, p)| self.request_for(w, p))
            .collect();
        let outcomes = self
            .session
            .submit_batch(&requests)
            .expect("simulation of a generated workload cannot fail");
        for (pair, outcome) in missing.into_iter().zip(outcomes) {
            self.cache.insert(pair, outcome);
        }
    }

    /// Simulates all [`Workload::ALL`] × [`Policy::ALL`] pairs (the full
    /// figure sweep), in parallel when enabled.
    pub fn prefetch_all(&mut self) {
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .flat_map(|&w| Policy::ALL.iter().map(move |&p| (w, p)))
            .collect();
        self.prefetch(&pairs);
    }

    /// Runs (or returns the cached run of) one workload under one policy.
    pub fn report(&mut self, workload: Workload, policy: Policy) -> RunOutcome {
        if let Some(r) = self.cache.get(&(workload, policy)) {
            return r.clone();
        }
        let request = self.request_for(workload, policy);
        let outcome = self
            .session
            .submit(&request)
            .expect("simulation of a generated workload cannot fail");
        self.cache.insert((workload, policy), outcome.clone());
        outcome
    }

    /// Speedup of `policy` over the host-CPU baseline for `workload`.
    pub fn speedup(&mut self, workload: Workload, policy: Policy) -> f64 {
        let cpu = self.report(workload, Policy::HostCpu);
        let other = self.report(workload, policy);
        other.summary.speedup_over(&cpu.summary)
    }

    /// Energy of `policy` normalized to the host-CPU baseline for `workload`.
    pub fn energy_ratio(&mut self, workload: Workload, policy: Policy) -> f64 {
        let cpu = self.report(workload, Policy::HostCpu);
        let other = self.report(workload, policy);
        other.summary.energy_vs(&cpu.summary)
    }

    // ------------------------------------------------------------------
    // Figures and tables
    // ------------------------------------------------------------------

    /// Figure 4: execution-time breakdown of OSP, ISP, IFP, and IFP+ISP on
    /// the three workload classes, normalized to OSP.
    pub fn fig4(&mut self) -> String {
        let classes = [
            ("I/O-intensive", Workload::XorFilter),
            ("More compute-intensive", Workload::Heat3d),
            ("Mixed", Workload::LlmTraining),
        ];
        let policies = [
            ("OSP", Policy::HostCpu),
            ("ISP", Policy::IspOnly),
            ("IFP", Policy::AresFlash),
            ("IFP+ISP", Policy::IfpIsp),
        ];
        let pairs: Vec<(Workload, Policy)> = classes
            .iter()
            .flat_map(|&(_, w)| policies.iter().map(move |&(_, p)| (w, p)))
            .collect();
        self.prefetch(&pairs);
        let mut out = String::from(
            "# Figure 4: normalized execution time and breakdown (lower is better)\n\
             class\tmodel\tnorm_time\tcompute\thost_dm\tinternal_dm\tflash_read\n",
        );
        for (class, workload) in classes {
            let osp = self.report(workload, Policy::HostCpu).summary;
            for (label, policy) in policies {
                let r = self.report(workload, policy).summary;
                let norm = r.total_time.as_ns() / osp.total_time.as_ns();
                let (c, h, i, f) = r.breakdown.fractions();
                out.push_str(&format!(
                    "{class}\t{label}\t{norm:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\n",
                    c * norm,
                    h * norm,
                    i * norm,
                    f * norm
                ));
            }
        }
        out
    }

    /// Figure 5: speedup of the prior techniques and the Ideal policy over
    /// the host CPU (the motivation study — everything except Conduit).
    pub fn fig5(&mut self) -> String {
        self.speedup_table(
            "# Figure 5: speedup over CPU (motivation study)\n",
            &[
                Policy::HostGpu,
                Policy::IspOnly,
                Policy::PudSsd,
                Policy::FlashCosmos,
                Policy::AresFlash,
                Policy::BwOffloading,
                Policy::DmOffloading,
                Policy::Ideal,
            ],
        )
    }

    /// Figure 7(a): speedup over CPU including Conduit.
    pub fn fig7a(&mut self) -> String {
        self.speedup_table(
            "# Figure 7(a): speedup over CPU\n",
            &[
                Policy::HostGpu,
                Policy::IspOnly,
                Policy::PudSsd,
                Policy::FlashCosmos,
                Policy::AresFlash,
                Policy::BwOffloading,
                Policy::DmOffloading,
                Policy::Conduit,
                Policy::Ideal,
            ],
        )
    }

    /// Figure 7(b): energy normalized to CPU, split into data-movement and
    /// compute energy.
    pub fn fig7b(&mut self) -> String {
        let policies = [
            Policy::HostGpu,
            Policy::IspOnly,
            Policy::PudSsd,
            Policy::FlashCosmos,
            Policy::AresFlash,
            Policy::BwOffloading,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ];
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .flat_map(|&w| {
                policies
                    .iter()
                    .map(move |&p| (w, p))
                    .chain(std::iter::once((w, Policy::HostCpu)))
            })
            .collect();
        self.prefetch(&pairs);
        let mut out = String::from(
            "# Figure 7(b): energy normalized to CPU (data-movement + compute = total)\n\
             workload\tpolicy\ttotal\tdata_movement\tcompute\n",
        );
        let mut totals: HashMap<Policy, Vec<f64>> = HashMap::new();
        for workload in Workload::ALL {
            let cpu = self.report(workload, Policy::HostCpu).summary;
            let cpu_energy = cpu.total_energy.as_nj();
            for policy in policies {
                let r = self.report(workload, policy).summary;
                let split = r
                    .energy_split
                    .expect("the harness always collects the energy split");
                let total = r.total_energy.as_nj() / cpu_energy;
                let dm = split.data_movement.as_nj() / cpu_energy;
                out.push_str(&format!(
                    "{workload}\t{policy}\t{total:.3}\t{dm:.3}\t{:.3}\n",
                    total - dm
                ));
                totals.entry(policy).or_default().push(total);
            }
        }
        for policy in policies {
            let avg = totals[&policy].iter().sum::<f64>() / totals[&policy].len() as f64;
            out.push_str(&format!("Average\t{policy}\t{avg:.3}\t-\t-\n"));
        }
        out
    }

    /// Figure 8: 99th and 99.99th percentile instruction latencies for the
    /// offloading policies on LLaMA2 inference and jacobi-1d.
    pub fn fig8(&mut self) -> String {
        let mut out = String::from(
            "# Figure 8: tail latencies (microseconds)\nworkload\tpolicy\tp99_us\tp9999_us\n",
        );
        let fig8_policies = [
            Policy::Ideal,
            Policy::Conduit,
            Policy::BwOffloading,
            Policy::DmOffloading,
        ];
        let pairs: Vec<(Workload, Policy)> = [Workload::LlamaInference, Workload::Jacobi1d]
            .iter()
            .flat_map(|&w| fig8_policies.iter().map(move |&p| (w, p)))
            .collect();
        self.prefetch(&pairs);
        for workload in [Workload::LlamaInference, Workload::Jacobi1d] {
            for policy in fig8_policies {
                let r = self.report(workload, policy).summary;
                out.push_str(&format!(
                    "{workload}\t{policy}\t{:.2}\t{:.2}\n",
                    r.percentile(0.99).as_us(),
                    r.percentile(0.9999).as_us()
                ));
            }
        }
        out
    }

    /// Figure 9: fraction of instructions offloaded to each SSD compute
    /// resource.
    pub fn fig9(&mut self) -> String {
        let mut out = String::from(
            "# Figure 9: offloading decisions (fraction of instructions)\n\
             workload\tpolicy\tISP\tPuD-SSD\tIFP\n",
        );
        let fig9_policies = [
            Policy::BwOffloading,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ];
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .flat_map(|&w| fig9_policies.iter().map(move |&p| (w, p)))
            .collect();
        self.prefetch(&pairs);
        for workload in Workload::ALL {
            for policy in fig9_policies {
                let r = self.report(workload, policy).summary;
                let (isp, pud, ifp, _) = r.offload_mix.fractions();
                out.push_str(&format!(
                    "{workload}\t{policy}\t{isp:.3}\t{pud:.3}\t{ifp:.3}\n"
                ));
            }
        }
        out
    }

    /// Figure 10: instruction → resource mapping over the execution of
    /// LLaMA2 inference, bucketed so the phase behaviour is visible in text
    /// form. These are the only runs for which the harness requests
    /// timelines.
    pub fn fig10(&mut self) -> String {
        const BUCKETS: usize = 40;
        let mut out = String::from(
            "# Figure 10: instruction-to-resource mapping over time (LLaMA2 inference)\n\
             Each row: policy, then per-bucket dominant resource\n\
             (I = ISP, P = PuD-SSD, F = IFP, h = host)\n",
        );
        self.prefetch(&[
            (Workload::LlamaInference, Policy::BwOffloading),
            (Workload::LlamaInference, Policy::DmOffloading),
            (Workload::LlamaInference, Policy::Conduit),
        ]);
        for policy in [Policy::BwOffloading, Policy::DmOffloading, Policy::Conduit] {
            let outcome = self.report(Workload::LlamaInference, policy);
            let timeline = &outcome
                .artifacts
                .as_ref()
                .expect("fig10 pairs always collect timelines")
                .timeline;
            let bucket_len = (timeline.len() / BUCKETS).max(1);
            let mut row = format!("{policy:<15} ");
            for chunk in timeline.chunks(bucket_len).take(BUCKETS) {
                let mut counts = [0u32; 4];
                for entry in chunk {
                    match entry.site {
                        ExecutionSite::Ssd(Resource::Isp) => counts[0] += 1,
                        ExecutionSite::Ssd(Resource::PudSsd) => counts[1] += 1,
                        ExecutionSite::Ssd(Resource::Ifp) => counts[2] += 1,
                        _ => counts[3] += 1,
                    }
                }
                let winner = ['I', 'P', 'F', 'h'][counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .map(|(i, _)| i)
                    .unwrap_or(0)];
                row.push(winner);
            }
            out.push_str(&row);
            out.push('\n');
        }
        out.push_str(&format!(
            "instructions: {}\n",
            self.report(Workload::LlamaInference, Policy::Conduit)
                .summary
                .instructions
        ));
        out
    }

    /// Table 3: measured workload characteristics next to the paper's
    /// values.
    pub fn table3(&mut self) -> String {
        let mut out = String::from(
            "# Table 3: workload characteristics (measured | paper)\n\
             workload\tvectorizable%\tavg_reuse\tlow%\tmedium%\thigh%\n",
        );
        for workload in Workload::ALL {
            let id = self.ensure_program(workload);
            let program = self
                .session
                .program(id)
                .expect("just-registered program exists");
            let p = characterize(program);
            let (v, r, low, med, high) = workload.paper_characteristics();
            out.push_str(&format!(
                "{workload}\t{:.0} | {:.0}\t{:.1} | {:.1}\t{:.0} | {:.0}\t{:.0} | {:.0}\t{:.0} | {:.0}\n",
                p.vectorizable_pct * 100.0,
                v * 100.0,
                p.avg_reuse,
                r,
                p.low_pct * 100.0,
                low * 100.0,
                p.med_pct * 100.0,
                med * 100.0,
                p.high_pct * 100.0,
                high * 100.0
            ));
        }
        out
    }

    /// §4.5: runtime and storage overheads of the offloader.
    pub fn overheads(&mut self) -> String {
        let mut out = String::from(
            "# Runtime overhead (paper: 3.77 us average, up to 33 us) and storage overhead\n\
             workload\tmean_overhead_us\tmax_overhead_us\n",
        );
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .map(|&w| (w, Policy::Conduit))
            .collect();
        self.prefetch(&pairs);
        for workload in Workload::ALL {
            let r = self.report(workload, Policy::Conduit).summary;
            out.push_str(&format!(
                "{workload}\t{:.2}\t{:.2}\n",
                r.overhead.mean().as_us(),
                r.overhead.max.as_us()
            ));
        }
        let cfg = SsdConfig::default();
        let storage = conduit::OverheadModel::new(&cfg).storage();
        let transformer = conduit::InstructionTransformer::new(&cfg);
        out.push_str(&format!(
            "translation table: {} entries, {} bytes; metadata table: {} bytes (paper: ~1.5 KiB total)\n",
            transformer.entries().len(),
            storage.translation_table_bytes,
            storage.metadata_table_bytes,
        ));
        out
    }

    /// Headline numbers: Conduit vs the best prior offloading policy and vs
    /// the Ideal upper bound (paper: 1.8x over DM-Offloading, 46% energy
    /// reduction, 62% of Ideal).
    pub fn headline(&mut self) -> String {
        let mut conduit_vs_dm = Vec::new();
        let mut conduit_vs_cpu = Vec::new();
        let mut energy_vs_dm = Vec::new();
        let mut frac_of_ideal = Vec::new();
        let headline_policies = [
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
            Policy::HostCpu,
        ];
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .flat_map(|&w| headline_policies.iter().map(move |&p| (w, p)))
            .collect();
        self.prefetch(&pairs);
        for workload in Workload::ALL {
            let dm = self.report(workload, Policy::DmOffloading).summary;
            let conduit = self.report(workload, Policy::Conduit).summary;
            let ideal = self.report(workload, Policy::Ideal).summary;
            let cpu = self.report(workload, Policy::HostCpu).summary;
            conduit_vs_dm.push(conduit.speedup_over(&dm));
            conduit_vs_cpu.push(conduit.speedup_over(&cpu));
            energy_vs_dm.push(conduit.energy_vs(&dm));
            frac_of_ideal.push(ideal.total_time.as_ns() / conduit.total_time.as_ns());
        }
        format!(
            "# Headline comparison (measured | paper)\n\
             Conduit speedup over CPU:            {:.2}x | 4.2x\n\
             Conduit speedup over DM-Offloading:  {:.2}x | 1.8x\n\
             Conduit energy vs DM-Offloading:     -{:.0}% | -46%\n\
             Conduit fraction of Ideal speed:     {:.0}% | 62%\n",
            gmean(&conduit_vs_cpu),
            gmean(&conduit_vs_dm),
            (1.0 - gmean(&energy_vs_dm)) * 100.0,
            gmean(&frac_of_ideal) * 100.0
        )
    }

    fn speedup_table(&mut self, header: &str, policies: &[Policy]) -> String {
        let pairs: Vec<(Workload, Policy)> = Workload::ALL
            .iter()
            .flat_map(|&w| {
                policies
                    .iter()
                    .map(move |&p| (w, p))
                    .chain(std::iter::once((w, Policy::HostCpu)))
            })
            .collect();
        self.prefetch(&pairs);
        let mut out = String::from(header);
        out.push_str("workload");
        for p in policies {
            out.push_str(&format!("\t{p}"));
        }
        out.push('\n');
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for workload in Workload::ALL {
            out.push_str(&workload.to_string());
            for (i, policy) in policies.iter().enumerate() {
                let s = self.speedup(workload, *policy);
                per_policy[i].push(s);
                out.push_str(&format!("\t{s:.2}"));
            }
            out.push('\n');
        }
        out.push_str("GMEAN");
        for speedups in &per_policy {
            out.push_str(&format!("\t{:.2}", gmean(speedups)));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_produces_all_figures() {
        let mut h = Harness::quick();
        for (name, text) in [
            ("fig4", h.fig4()),
            ("fig5", h.fig5()),
            ("fig7a", h.fig7a()),
            ("fig7b", h.fig7b()),
            ("fig8", h.fig8()),
            ("fig9", h.fig9()),
            ("fig10", h.fig10()),
            ("table3", h.table3()),
            ("overheads", h.overheads()),
            ("headline", h.headline()),
        ] {
            assert!(text.lines().count() > 3, "{name} output too short:\n{text}");
        }
    }

    // Full serial-vs-parallel sweep equivalence is asserted by
    // tests/integration_determinism.rs; here we only cover the cheap
    // cache/dedupe behaviour of prefetch.
    #[test]
    fn prefetch_dedupes_and_caches() {
        let mut h = Harness::quick();
        let pair = (Workload::Jacobi1d, Policy::Conduit);
        h.prefetch(&[pair, pair, pair]);
        let first = h.report(pair.0, pair.1);
        // A second prefetch of the same pair must be a no-op (cached).
        h.prefetch(&[pair]);
        assert_eq!(first, h.report(pair.0, pair.1));
    }

    #[test]
    fn reports_are_cached() {
        let mut h = Harness::quick();
        let a = h.report(Workload::Jacobi1d, Policy::Conduit);
        let b = h.report(Workload::Jacobi1d, Policy::Conduit);
        assert_eq!(a.summary.total_time, b.summary.total_time);
    }

    #[test]
    fn speedup_table_has_gmean_row() {
        let mut h = Harness::quick();
        let text = h.fig7a();
        assert!(text.contains("GMEAN"));
        assert!(text.contains("Conduit"));
        assert_eq!(text.lines().count(), 2 + Workload::ALL.len() + 1);
    }

    #[test]
    fn only_fig10_pairs_carry_timelines() {
        let mut h = Harness::quick();
        h.prefetch(&[
            (Workload::Jacobi1d, Policy::Conduit),
            (Workload::LlamaInference, Policy::Conduit),
            (Workload::LlamaInference, Policy::Ideal),
        ]);
        assert!(h
            .report(Workload::Jacobi1d, Policy::Conduit)
            .artifacts
            .is_none());
        assert!(h
            .report(Workload::LlamaInference, Policy::Ideal)
            .artifacts
            .is_none());
        let fig10_pair = h.report(Workload::LlamaInference, Policy::Conduit);
        let timeline = &fig10_pair.artifacts.expect("fig10 pair").timeline;
        assert_eq!(timeline.len(), fig10_pair.summary.instructions);
    }

    #[test]
    fn workload_programs_are_registered_once() {
        let mut h = Harness::quick();
        let _ = h.report(Workload::Jacobi1d, Policy::Conduit);
        let _ = h.report(Workload::Jacobi1d, Policy::HostCpu);
        let _ = h.report(Workload::Jacobi1d, Policy::Ideal);
        assert_eq!(h.session().registry().len(), 1);
    }
}
