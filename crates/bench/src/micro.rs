//! Minimal self-contained micro-benchmark harness.
//!
//! The container this reproduction builds in has no network access, so the
//! usual `criterion` dev-dependency is unavailable; this module provides the
//! small slice of it the benches need: warmup, automatic batching for
//! sub-microsecond operations, repeated sampling, and median/mean reporting —
//! plus a tiny JSON writer so results can be persisted (e.g.
//! `BENCH_sim_throughput.json`) and tracked across commits.
//!
//! # Examples
//!
//! ```
//! use conduit_bench::micro;
//!
//! let r = micro::bench("add", || std::hint::black_box(1u64 + 2));
//! assert!(r.median_ns > 0.0);
//! assert!(r.samples >= 1);
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier used by the benches.
pub use std::hint::black_box;

/// Timing summary of one benchmarked operation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Number of timed samples (each a batch of iterations).
    pub samples: usize,
    /// Iterations per sample batch.
    pub batch: u64,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time in nanoseconds.
    pub max_ns: f64,
}

impl BenchResult {
    /// One line of human-readable output, criterion-style.
    pub fn summary(&self) -> String {
        format!(
            "{:<40} median {:>12} mean {:>12} ({} samples x {} iters)",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.mean_ns),
            self.samples,
            self.batch
        )
    }

    /// The result as a JSON object (no external serializer available).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"samples\":{},\"batch\":{},\"mean_ns\":{:.3},\"median_ns\":{:.3},\"min_ns\":{:.3},\"max_ns\":{:.3}}}",
            self.name, self.samples, self.batch, self.mean_ns, self.median_ns, self.min_ns,
            self.max_ns
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Tunable measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchConfig {
    /// Warmup time before sampling starts.
    pub warmup: Duration,
    /// Target total measurement time.
    pub measurement: Duration,
    /// Minimum number of samples regardless of elapsed time.
    pub min_samples: usize,
    /// Maximum number of samples.
    pub max_samples: usize,
    /// Target wall time per sample batch (controls auto-batching).
    pub target_batch: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(50),
            measurement: Duration::from_millis(500),
            min_samples: 10,
            max_samples: 100,
            target_batch: Duration::from_micros(50),
        }
    }
}

/// Benchmarks `f` with the default configuration and prints a summary line.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> BenchResult {
    let r = bench_with(name, BenchConfig::default(), f);
    println!("{}", r.summary());
    r
}

/// Benchmarks `f` with an explicit configuration (no printing).
pub fn bench_with<T>(name: &str, cfg: BenchConfig, mut f: impl FnMut() -> T) -> BenchResult {
    // Warmup, and calibrate how many iterations one sample batch needs so
    // that per-sample timing overhead is negligible even for ~10 ns ops.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while warmup_start.elapsed() < cfg.warmup || warmup_iters == 0 {
        black_box(f());
        warmup_iters += 1;
    }
    let per_iter = cfg.warmup.as_secs_f64() / warmup_iters as f64;
    let batch = if per_iter <= 0.0 {
        1
    } else {
        (cfg.target_batch.as_secs_f64() / per_iter).ceil().max(1.0) as u64
    };

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.max_samples);
    let run_start = Instant::now();
    while samples_ns.len() < cfg.max_samples
        && (samples_ns.len() < cfg.min_samples || run_start.elapsed() < cfg.measurement)
    {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    BenchResult {
        name: name.to_string(),
        samples: samples_ns.len(),
        batch,
        mean_ns,
        median_ns: samples_ns[samples_ns.len() / 2],
        min_ns: samples_ns[0],
        max_ns: *samples_ns.last().expect("at least one sample"),
    }
}

/// Serializes a set of results plus free-form extra fields into one JSON
/// document: `{"benches": [...], <extras>}`.
pub fn results_to_json(results: &[BenchResult], extras: &[(&str, String)]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{}", r.to_json(), sep);
    }
    out.push_str("  ]");
    for (k, v) in extras {
        let _ = write!(out, ",\n  \"{k}\": {v}");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_plausible_stats() {
        let cfg = BenchConfig {
            warmup: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            min_samples: 3,
            max_samples: 10,
            target_batch: Duration::from_micros(10),
        };
        let r = bench_with("spin", cfg, || black_box((0..100u64).sum::<u64>()));
        assert!(r.samples >= 3 && r.samples <= 10);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.mean_ns > 0.0);
        assert!(r.batch >= 1);
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let r = BenchResult {
            name: "x".into(),
            samples: 2,
            batch: 4,
            mean_ns: 1.5,
            median_ns: 1.0,
            min_ns: 0.5,
            max_ns: 2.5,
        };
        let doc = results_to_json(&[r], &[("instructions_per_sec", "123.0".into())]);
        assert!(doc.contains("\"benches\""));
        assert!(doc.contains("\"name\":\"x\""));
        assert!(doc.contains("\"instructions_per_sec\": 123.0"));
        assert!(doc.trim_end().ends_with('}'));
    }
}
