//! Simulator-throughput measurement: vector instructions simulated per
//! wall-clock second, plus the parallel-vs-serial sweep speedup.
//!
//! This is the number the perf trajectory tracks (`BENCH_sim_throughput.json`
//! at the repository root, emitted by `repro sim-throughput`): it bounds how
//! fast the whole figure-regeneration pipeline can go and directly reflects
//! hot-path work like cost-feature collection and energy accounting.

use std::time::Instant;

use conduit::{Policy, RunOptions, Workbench};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

use crate::micro::{black_box, results_to_json, BenchResult};
use crate::Harness;

/// The measured simulator throughput and sweep scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Vector instructions simulated during the timed section.
    pub instructions: u64,
    /// Wall-clock seconds of the timed section.
    pub wall_seconds: f64,
    /// Instructions simulated per second (the headline number).
    pub instructions_per_sec: f64,
    /// Wall-clock seconds of the full figure sweep run serially.
    pub sweep_serial_seconds: f64,
    /// Wall-clock seconds of the same sweep with the parallel harness.
    pub sweep_parallel_seconds: f64,
    /// `sweep_serial_seconds / sweep_parallel_seconds`.
    pub parallel_speedup: f64,
    /// Per-policy single-run timings of the probe workload.
    pub per_policy: Vec<BenchResult>,
}

impl ThroughputReport {
    /// Measures throughput at the reduced test scale (fast; used by the
    /// bench target and CI) or the paper scale.
    pub fn measure(quick: bool) -> ThroughputReport {
        let (cfg, scale) = if quick {
            (SsdConfig::small_for_tests(), Scale::test())
        } else {
            (SsdConfig::default(), Scale::new(4, 1))
        };

        // --- raw engine throughput: Conduit policy over every workload ----
        let mut bench = Workbench::new(cfg.clone());
        let programs: Vec<_> = Workload::ALL
            .iter()
            .map(|w| w.program(scale).expect("generators always succeed"))
            .collect();
        // One untimed pass to warm caches and page tables.
        for program in &programs {
            black_box(
                bench
                    .run_with(program, &RunOptions::new(Policy::Conduit))
                    .expect("simulation cannot fail"),
            );
        }
        let repeats = if quick { 3 } else { 1 };
        let mut instructions = 0u64;
        let t = Instant::now();
        for _ in 0..repeats {
            for program in &programs {
                let report = bench
                    .run_with(program, &RunOptions::new(Policy::Conduit))
                    .expect("simulation cannot fail");
                instructions += report.instructions as u64;
                black_box(report);
            }
        }
        let wall_seconds = t.elapsed().as_secs_f64();

        // --- per-policy probe timings (jacobi-1d, one run each) -----------
        let probe = Workload::Jacobi1d.program(scale).expect("generator");
        let mut per_policy = Vec::new();
        for policy in [
            Policy::HostCpu,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ] {
            let t = Instant::now();
            let report = bench
                .run_with(&probe, &RunOptions::new(policy))
                .expect("simulation cannot fail");
            let ns = t.elapsed().as_secs_f64() * 1e9;
            black_box(report);
            per_policy.push(BenchResult {
                name: format!("jacobi1d/{policy}"),
                samples: 1,
                batch: 1,
                mean_ns: ns,
                median_ns: ns,
                min_ns: ns,
                max_ns: ns,
            });
        }

        // --- full figure sweep: serial vs parallel harness ----------------
        let t = Instant::now();
        let mut serial = Harness::new(cfg.clone(), scale).with_parallel(false);
        serial.prefetch_all();
        let sweep_serial_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut parallel = Harness::new(cfg, scale).with_parallel(true);
        parallel.prefetch_all();
        let sweep_parallel_seconds = t.elapsed().as_secs_f64();

        ThroughputReport {
            instructions,
            wall_seconds,
            instructions_per_sec: instructions as f64 / wall_seconds.max(1e-12),
            sweep_serial_seconds,
            sweep_parallel_seconds,
            parallel_speedup: sweep_serial_seconds / sweep_parallel_seconds.max(1e-12),
            per_policy,
        }
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "# Simulator throughput\n\
             instructions simulated: {}\n\
             wall seconds:           {:.3}\n\
             instructions/sec:       {:.0}\n\
             sweep serial:           {:.3} s\n\
             sweep parallel:         {:.3} s\n\
             parallel speedup:       {:.2}x\n",
            self.instructions,
            self.wall_seconds,
            self.instructions_per_sec,
            self.sweep_serial_seconds,
            self.sweep_parallel_seconds,
            self.parallel_speedup
        )
    }

    /// The JSON document written to `BENCH_sim_throughput.json`.
    pub fn to_json(&self) -> String {
        results_to_json(
            &self.per_policy,
            &[
                ("instructions", self.instructions.to_string()),
                ("wall_seconds", format!("{:.6}", self.wall_seconds)),
                (
                    "instructions_per_sec",
                    format!("{:.1}", self.instructions_per_sec),
                ),
                (
                    "sweep_serial_seconds",
                    format!("{:.6}", self.sweep_serial_seconds),
                ),
                (
                    "sweep_parallel_seconds",
                    format!("{:.6}", self.sweep_parallel_seconds),
                ),
                ("parallel_speedup", format!("{:.3}", self.parallel_speedup)),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_consistent_numbers() {
        let r = ThroughputReport::measure(true);
        assert!(r.instructions > 0);
        assert!(r.instructions_per_sec > 0.0);
        assert!(r.sweep_serial_seconds > 0.0);
        assert!(r.sweep_parallel_seconds > 0.0);
        assert_eq!(r.per_policy.len(), 4);
        let json = r.to_json();
        assert!(json.contains("\"instructions_per_sec\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(r.summary().contains("instructions/sec"));
    }
}
