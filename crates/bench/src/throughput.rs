//! Simulator-throughput measurement: vector instructions simulated per
//! wall-clock second, plus the parallel-vs-serial sweep speedup.
//!
//! This is the number the perf trajectory tracks (`BENCH_sim_throughput.json`
//! at the repository root, emitted by `repro sim-throughput` and guarded by
//! `repro perf-gate` in CI): it bounds how fast the whole figure-regeneration
//! pipeline can go and directly reflects hot-path work like cost-feature
//! collection and energy accounting.
//!
//! The measurement itself exercises the service API the way a server would:
//! each workload is vectorized once, registered in a
//! [`conduit::Session`], and then resubmitted via [`conduit::RunRequest`]s
//! (summary-only, using the repeat knob) without ever re-running the
//! vectorizer.

use std::time::Instant;

use conduit::{Policy, RunRequest, Session};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

use crate::micro::{black_box, results_to_json, BenchResult};
use crate::Harness;

/// The measured simulator throughput and sweep scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Whether this was a quick-scale (test-sized) measurement rather than
    /// paper scale. Recorded in the JSON so `repro perf-gate` refuses to
    /// compare measurements taken at different scales.
    pub quick: bool,
    /// Vector instructions simulated during the timed section.
    pub instructions: u64,
    /// Wall-clock seconds of the timed section.
    pub wall_seconds: f64,
    /// Instructions simulated per second (the headline number).
    pub instructions_per_sec: f64,
    /// Wall-clock seconds of the full figure sweep run serially.
    pub sweep_serial_seconds: f64,
    /// Wall-clock seconds of the same sweep with the parallel harness.
    pub sweep_parallel_seconds: f64,
    /// `sweep_serial_seconds / sweep_parallel_seconds`.
    pub parallel_speedup: f64,
    /// Per-policy single-run timings of the probe workload.
    pub per_policy: Vec<BenchResult>,
}

impl ThroughputReport {
    /// Measures throughput at the reduced test scale (fast; used by the
    /// bench target and CI) or the paper scale.
    pub fn measure(quick: bool) -> ThroughputReport {
        let (cfg, scale) = if quick {
            (SsdConfig::small_for_tests(), Scale::test())
        } else {
            (SsdConfig::default(), Scale::new(4, 1))
        };

        // --- raw engine throughput: Conduit policy over every workload ----
        // Register every workload program once; the timed section reuses
        // them straight from the registry (summary-only requests: the run
        // loop is measured, not timeline allocation).
        let mut session = Session::builder(cfg.clone()).serial().build();
        let ids: Vec<_> = Workload::ALL
            .iter()
            .map(|w| {
                let program = w.program(scale).expect("generators always succeed");
                session
                    .register(program)
                    .expect("generated programs always validate")
            })
            .collect();
        // One untimed pass to warm caches and page tables.
        for &id in &ids {
            black_box(
                session
                    .submit(&RunRequest::new(id, Policy::Conduit))
                    .expect("simulation cannot fail"),
            );
        }
        let repeats = if quick { 3 } else { 1 };
        let mut instructions = 0u64;
        let t = Instant::now();
        for &id in &ids {
            let outcome = session
                .submit(&RunRequest::new(id, Policy::Conduit).repeat(repeats))
                .expect("simulation cannot fail");
            instructions += outcome.summary.instructions as u64 * outcome.summary.repeats as u64;
            black_box(outcome);
        }
        let wall_seconds = t.elapsed().as_secs_f64();

        // --- per-policy probe timings (jacobi-1d, one run each) -----------
        let probe = ids[Workload::ALL
            .iter()
            .position(|&w| w == Workload::Jacobi1d)
            .expect("jacobi-1d is in ALL")];
        let mut per_policy = Vec::new();
        for policy in [
            Policy::HostCpu,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ] {
            let t = Instant::now();
            let outcome = session
                .submit(&RunRequest::new(probe, policy))
                .expect("simulation cannot fail");
            let ns = t.elapsed().as_secs_f64() * 1e9;
            black_box(outcome);
            per_policy.push(BenchResult {
                name: format!("jacobi1d/{policy}"),
                samples: 1,
                batch: 1,
                mean_ns: ns,
                median_ns: ns,
                min_ns: ns,
                max_ns: ns,
            });
        }

        // --- full figure sweep: serial vs parallel harness ----------------
        let t = Instant::now();
        let mut serial = Harness::new(cfg.clone(), scale).with_parallel(false);
        serial.prefetch_all();
        let sweep_serial_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut parallel = Harness::new(cfg, scale).with_parallel(true);
        parallel.prefetch_all();
        let sweep_parallel_seconds = t.elapsed().as_secs_f64();

        ThroughputReport {
            quick,
            instructions,
            wall_seconds,
            instructions_per_sec: instructions as f64 / wall_seconds.max(1e-12),
            sweep_serial_seconds,
            sweep_parallel_seconds,
            parallel_speedup: sweep_serial_seconds / sweep_parallel_seconds.max(1e-12),
            per_policy,
        }
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "# Simulator throughput\n\
             instructions simulated: {}\n\
             wall seconds:           {:.3}\n\
             instructions/sec:       {:.0}\n\
             sweep serial:           {:.3} s\n\
             sweep parallel:         {:.3} s\n\
             parallel speedup:       {:.2}x\n",
            self.instructions,
            self.wall_seconds,
            self.instructions_per_sec,
            self.sweep_serial_seconds,
            self.sweep_parallel_seconds,
            self.parallel_speedup
        )
    }

    /// The JSON document written to `BENCH_sim_throughput.json`.
    pub fn to_json(&self) -> String {
        results_to_json(
            &self.per_policy,
            &[
                (
                    "scale",
                    format!("\"{}\"", if self.quick { "quick" } else { "paper" }),
                ),
                ("instructions", self.instructions.to_string()),
                ("wall_seconds", format!("{:.6}", self.wall_seconds)),
                (
                    "instructions_per_sec",
                    format!("{:.1}", self.instructions_per_sec),
                ),
                (
                    "sweep_serial_seconds",
                    format!("{:.6}", self.sweep_serial_seconds),
                ),
                (
                    "sweep_parallel_seconds",
                    format!("{:.6}", self.sweep_parallel_seconds),
                ),
                ("parallel_speedup", format!("{:.3}", self.parallel_speedup)),
            ],
        )
    }
}

/// Extracts the `instructions_per_sec` field from a
/// `BENCH_sim_throughput.json` document (no JSON parser is available
/// offline; the field is written by [`ThroughputReport::to_json`] as a bare
/// number). Returns `None` if the field is missing or malformed.
pub fn baseline_instructions_per_sec(json: &str) -> Option<f64> {
    let key = "\"instructions_per_sec\":";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `scale` field (`"paper"` or `"quick"`) from a
/// `BENCH_sim_throughput.json` document. Documents written before the field
/// existed return `None`; callers should treat that as paper scale, which is
/// what the committed baseline has always been.
pub fn baseline_scale(json: &str) -> Option<&str> {
    let key = "\"scale\":";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_consistent_numbers() {
        let r = ThroughputReport::measure(true);
        assert!(r.instructions > 0);
        assert!(r.instructions_per_sec > 0.0);
        assert!(r.sweep_serial_seconds > 0.0);
        assert!(r.sweep_parallel_seconds > 0.0);
        assert_eq!(r.per_policy.len(), 4);
        let json = r.to_json();
        assert!(json.contains("\"instructions_per_sec\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(r.summary().contains("instructions/sec"));
        // The perf gate can read back what we wrote.
        let parsed = baseline_instructions_per_sec(&json).expect("field is present");
        assert!((parsed - r.instructions_per_sec).abs() <= 0.05 * r.instructions_per_sec + 0.1);
    }

    #[test]
    fn baseline_parser_handles_real_and_bad_documents() {
        assert_eq!(
            baseline_instructions_per_sec("{\n  \"instructions_per_sec\": 177000.5,\n}"),
            Some(177000.5)
        );
        assert_eq!(
            baseline_instructions_per_sec("{\"instructions_per_sec\": 42}"),
            Some(42.0)
        );
        assert_eq!(baseline_instructions_per_sec("{}"), None);
        assert_eq!(
            baseline_instructions_per_sec("{\"instructions_per_sec\": \"oops\"}"),
            None
        );
    }

    #[test]
    fn scale_field_roundtrips_and_parses() {
        assert_eq!(baseline_scale("{\"scale\": \"paper\",}"), Some("paper"));
        assert_eq!(baseline_scale("{\"scale\": \"quick\"}"), Some("quick"));
        // Pre-scale-field documents (PR 1 format) report None.
        assert_eq!(baseline_scale("{\"instructions_per_sec\": 1.0}"), None);
        let quick = ThroughputReport {
            quick: true,
            instructions: 1,
            wall_seconds: 1.0,
            instructions_per_sec: 1.0,
            sweep_serial_seconds: 1.0,
            sweep_parallel_seconds: 1.0,
            parallel_speedup: 1.0,
            per_policy: Vec::new(),
        };
        assert_eq!(baseline_scale(&quick.to_json()), Some("quick"));
    }
}
