//! Simulator-throughput measurement: vector instructions simulated per
//! wall-clock second, plus the parallel-vs-serial sweep speedup.
//!
//! This is the number the perf trajectory tracks (`BENCH_sim_throughput.json`
//! at the repository root, emitted by `repro sim-throughput`): it bounds how
//! fast the whole figure-regeneration pipeline can go and directly reflects
//! hot-path work like cost-feature collection and energy accounting.
//!
//! The CI gate (`repro perf-gate`) no longer compares wall-clock throughput
//! — that number depends on whatever machine CI lands on. It gates on
//! [`ThroughputReport::ops_per_instruction`], the *simulated device
//! operations per vector instruction*: a deterministic counter that grows
//! exactly when a change makes the simulator do more work per instruction
//! (extra data movement, redundant reservations, duplicated model calls)
//! and is identical on every machine. Wall-clock throughput is still
//! measured and recorded for the human-readable trajectory.
//!
//! The measurement itself exercises the service API the way a server would:
//! each workload is vectorized once, registered in a
//! [`conduit::Session`], and then resubmitted via [`conduit::RunRequest`]s
//! (summary-only, using the repeat knob) without ever re-running the
//! vectorizer.

use std::time::Instant;

use conduit::{Policy, RunRequest, Session};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

use crate::micro::{black_box, results_to_json, BenchResult};
use crate::Harness;

/// The measured simulator throughput and sweep scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Whether this was a quick-scale (test-sized) measurement rather than
    /// paper scale. Recorded in the JSON so `repro perf-gate` refuses to
    /// compare measurements taken at different scales.
    pub quick: bool,
    /// Vector instructions simulated during the timed section.
    pub instructions: u64,
    /// Wall-clock seconds of the timed section.
    pub wall_seconds: f64,
    /// Instructions simulated per second (the headline number).
    pub instructions_per_sec: f64,
    /// Simulated device operations (contended-timeline reservations) the
    /// timed section performed. Fully deterministic for a given code
    /// version: the same program stream always schedules the same
    /// operations, on any machine.
    pub sim_device_ops: u64,
    /// `sim_device_ops / instructions` — the machine-independent
    /// simulated-work metric `repro perf-gate` gates on (wall-clock
    /// throughput varies with the CI machine; this does not).
    pub ops_per_instruction: f64,
    /// Wall-clock seconds of the same timed section re-run with the
    /// intra-run parallel strip evaluator (a multi-worker session; results
    /// are bit-identical to the serial section).
    pub parallel_wall_seconds: f64,
    /// Instructions per second of the intra-run parallel section.
    pub parallel_instructions_per_sec: f64,
    /// `wall_seconds / parallel_wall_seconds`: the intra-run speedup of the
    /// DAG-scheduled evaluate/commit loop on this machine (≈1 on a single
    /// hardware thread — the committer then evaluates everything inline).
    pub intra_run_speedup: f64,
    /// Strip-plan cache hits across the measurement's sessions.
    pub plan_cache_hits: u64,
    /// Strip-plan cache misses (planner runs) across the sessions.
    pub plan_cache_misses: u64,
    /// Inline-program runs that bypassed the plan cache (always 0 here —
    /// the measurement only submits registered programs).
    pub plan_cache_inline: u64,
    /// Wall-clock seconds of the full figure sweep run serially.
    pub sweep_serial_seconds: f64,
    /// Wall-clock seconds of the same sweep with the parallel harness.
    pub sweep_parallel_seconds: f64,
    /// `sweep_serial_seconds / sweep_parallel_seconds`.
    pub parallel_speedup: f64,
    /// Per-policy single-run timings of the probe workload.
    pub per_policy: Vec<BenchResult>,
}

impl ThroughputReport {
    /// Measures throughput at the reduced test scale (fast; used by the
    /// bench target and CI) or the paper scale, including the serial and
    /// parallel figure sweeps.
    pub fn measure(quick: bool) -> ThroughputReport {
        Self::measure_with_sweeps(quick, true)
    }

    /// Measures only the timed per-workload section and the per-policy
    /// probes, skipping the two full figure sweeps. This is all
    /// `repro perf-gate` needs — the gate reads the deterministic
    /// `ops_per_instruction` counter, and the sweep timings it skips are
    /// informational — so the CI gate step avoids re-simulating every
    /// (workload, policy) pair that the figure-smoke step already ran. The
    /// sweep fields are zero in the result.
    pub fn measure_counters_only(quick: bool) -> ThroughputReport {
        Self::measure_with_sweeps(quick, false)
    }

    fn measure_with_sweeps(quick: bool, sweeps: bool) -> ThroughputReport {
        let (cfg, scale) = if quick {
            (SsdConfig::small_for_tests(), Scale::test())
        } else {
            (SsdConfig::default(), Scale::new(4, 1))
        };

        // --- raw engine throughput: Conduit policy over every workload ----
        // Register every workload program once; the timed section reuses
        // them straight from the registry (summary-only requests: the run
        // loop is measured, not timeline allocation).
        let mut session = Session::builder(cfg.clone()).serial().build();
        let ids: Vec<_> = Workload::ALL
            .iter()
            .map(|w| {
                let program = w.program(scale).expect("generators always succeed");
                session
                    .register(program)
                    .expect("generated programs always validate")
            })
            .collect();
        // One untimed pass to warm caches and page tables.
        for &id in &ids {
            black_box(
                session
                    .submit(&RunRequest::new(id, Policy::Conduit))
                    .expect("simulation cannot fail"),
            );
        }
        let repeats = if quick { 3 } else { 1 };
        let mut instructions = 0u64;
        let mut sim_device_ops = 0u64;
        let t = Instant::now();
        for &id in &ids {
            let outcome = session
                .submit(&RunRequest::new(id, Policy::Conduit).repeat(repeats))
                .expect("simulation cannot fail");
            instructions += outcome.summary.instructions as u64 * outcome.summary.repeats as u64;
            sim_device_ops += outcome.summary.device_delta.device_ops;
            black_box(outcome);
        }
        let wall_seconds = t.elapsed().as_secs_f64();

        // --- the same timed section under the intra-run parallel path -----
        // A multi-worker session routes each run's strip evaluation through
        // the DAG-scheduled evaluate/commit loop; outcomes (and the gated
        // device-op counter) are bit-identical, only wall clock may differ.
        let mut pooled = Session::builder(cfg.clone()).workers(4).build();
        let pooled_ids: Vec<_> = Workload::ALL
            .iter()
            .map(|w| {
                pooled
                    .register(w.program(scale).expect("generators always succeed"))
                    .expect("generated programs always validate")
            })
            .collect();
        for &id in &pooled_ids {
            black_box(
                pooled
                    .submit(&RunRequest::new(id, Policy::Conduit))
                    .expect("simulation cannot fail"),
            );
        }
        let t = Instant::now();
        for &id in &pooled_ids {
            black_box(
                pooled
                    .submit(&RunRequest::new(id, Policy::Conduit).repeat(repeats))
                    .expect("simulation cannot fail"),
            );
        }
        let parallel_wall_seconds = t.elapsed().as_secs_f64();

        // --- per-policy probe timings (jacobi-1d, sampled) ----------------
        // Each policy is timed over several independent submissions so the
        // recorded spread is real; a single-sample row would make the
        // min/median/max fields degenerate copies of the mean.
        const PROBE_SAMPLES: usize = 5;
        let probe = ids[Workload::ALL
            .iter()
            .position(|&w| w == Workload::Jacobi1d)
            .expect("jacobi-1d is in ALL")];
        let mut per_policy = Vec::new();
        for policy in [
            Policy::HostCpu,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ] {
            let mut samples_ns: Vec<f64> = Vec::with_capacity(PROBE_SAMPLES);
            for _ in 0..PROBE_SAMPLES {
                let t = Instant::now();
                let outcome = session
                    .submit(&RunRequest::new(probe, policy))
                    .expect("simulation cannot fail");
                samples_ns.push(t.elapsed().as_secs_f64() * 1e9);
                black_box(outcome);
            }
            samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            per_policy.push(BenchResult {
                name: format!("jacobi1d/{policy}"),
                samples: samples_ns.len(),
                batch: 1,
                mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
                median_ns: samples_ns[samples_ns.len() / 2],
                min_ns: samples_ns[0],
                max_ns: *samples_ns.last().expect("at least one sample"),
            });
        }

        // --- full figure sweep: serial vs parallel harness ----------------
        let (sweep_serial_seconds, sweep_parallel_seconds) = if sweeps {
            let t = Instant::now();
            let mut serial = Harness::new(cfg.clone(), scale).with_parallel(false);
            serial.prefetch_all();
            let sweep_serial_seconds = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let mut parallel = Harness::new(cfg, scale).with_parallel(true);
            parallel.prefetch_all();
            (sweep_serial_seconds, t.elapsed().as_secs_f64())
        } else {
            (0.0, 0.0)
        };

        let serial_stats = session.plan_cache_stats();
        let pooled_stats = pooled.plan_cache_stats();
        ThroughputReport {
            quick,
            instructions,
            wall_seconds,
            instructions_per_sec: instructions as f64 / wall_seconds.max(1e-12),
            sim_device_ops,
            ops_per_instruction: sim_device_ops as f64 / (instructions.max(1)) as f64,
            parallel_wall_seconds,
            parallel_instructions_per_sec: instructions as f64 / parallel_wall_seconds.max(1e-12),
            intra_run_speedup: wall_seconds / parallel_wall_seconds.max(1e-12),
            plan_cache_hits: serial_stats.hits + pooled_stats.hits,
            plan_cache_misses: serial_stats.misses + pooled_stats.misses,
            plan_cache_inline: serial_stats.inline + pooled_stats.inline,
            sweep_serial_seconds,
            sweep_parallel_seconds,
            parallel_speedup: if sweeps {
                sweep_serial_seconds / sweep_parallel_seconds.max(1e-12)
            } else {
                0.0
            },
            per_policy,
        }
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "# Simulator throughput\n\
             instructions simulated: {}\n\
             wall seconds:           {:.3}\n\
             instructions/sec:       {:.0}\n\
             sim device ops:         {}\n\
             ops/instruction:        {:.4}\n\
             intra-run parallel:     {:.3} s ({:.0} inst/s, {:.2}x)\n\
             plan cache:             {} hits / {} misses / {} inline ({:.0}% hit rate)\n\
             sweep serial:           {:.3} s\n\
             sweep parallel:         {:.3} s\n\
             parallel speedup:       {:.2}x\n",
            self.instructions,
            self.wall_seconds,
            self.instructions_per_sec,
            self.sim_device_ops,
            self.ops_per_instruction,
            self.parallel_wall_seconds,
            self.parallel_instructions_per_sec,
            self.intra_run_speedup,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.plan_cache_inline,
            100.0 * self.plan_cache_hits as f64
                / ((self.plan_cache_hits + self.plan_cache_misses).max(1)) as f64,
            self.sweep_serial_seconds,
            self.sweep_parallel_seconds,
            self.parallel_speedup
        )
    }

    /// The JSON document written to `BENCH_sim_throughput.json`.
    pub fn to_json(&self) -> String {
        results_to_json(
            &self.per_policy,
            &[
                (
                    "scale",
                    format!("\"{}\"", if self.quick { "quick" } else { "paper" }),
                ),
                ("instructions", self.instructions.to_string()),
                ("wall_seconds", format!("{:.6}", self.wall_seconds)),
                (
                    "instructions_per_sec",
                    format!("{:.1}", self.instructions_per_sec),
                ),
                ("sim_device_ops", self.sim_device_ops.to_string()),
                (
                    "ops_per_instruction",
                    format!("{:.6}", self.ops_per_instruction),
                ),
                (
                    "parallel_wall_seconds",
                    format!("{:.6}", self.parallel_wall_seconds),
                ),
                (
                    "parallel_instructions_per_sec",
                    format!("{:.1}", self.parallel_instructions_per_sec),
                ),
                (
                    "intra_run_speedup",
                    format!("{:.3}", self.intra_run_speedup),
                ),
                ("plan_cache_hits", self.plan_cache_hits.to_string()),
                ("plan_cache_misses", self.plan_cache_misses.to_string()),
                (
                    "sweep_serial_seconds",
                    format!("{:.6}", self.sweep_serial_seconds),
                ),
                (
                    "sweep_parallel_seconds",
                    format!("{:.6}", self.sweep_parallel_seconds),
                ),
                ("parallel_speedup", format!("{:.3}", self.parallel_speedup)),
            ],
        )
    }
}

/// Extracts a bare numeric field from a `BENCH_sim_throughput.json`
/// document (no JSON parser is available offline; the fields are written by
/// [`ThroughputReport::to_json`] as bare numbers). Returns `None` if the
/// field is missing or malformed.
fn baseline_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `instructions_per_sec` field of a baseline document (wall-clock
/// throughput; informational since the gate moved to simulated-work
/// counters).
pub fn baseline_instructions_per_sec(json: &str) -> Option<f64> {
    baseline_number(json, "instructions_per_sec")
}

/// The `ops_per_instruction` field of a baseline document: the
/// deterministic simulated-work metric `repro perf-gate` compares against.
/// Baselines written before the field existed return `None` (the gate asks
/// for a regeneration).
pub fn baseline_ops_per_instruction(json: &str) -> Option<f64> {
    baseline_number(json, "ops_per_instruction")
}

/// Extracts the `scale` field (`"paper"` or `"quick"`) from a
/// `BENCH_sim_throughput.json` document. Documents written before the field
/// existed return `None`; callers should treat that as paper scale, which is
/// what the committed baseline has always been.
pub fn baseline_scale(json: &str) -> Option<&str> {
    let key = "\"scale\":";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_consistent_numbers() {
        let r = ThroughputReport::measure(true);
        assert!(r.instructions > 0);
        assert!(r.instructions_per_sec > 0.0);
        assert!(r.sweep_serial_seconds > 0.0);
        assert!(r.sweep_parallel_seconds > 0.0);
        assert_eq!(r.per_policy.len(), 4);
        // The probe rows carry a real sample spread, not degenerate
        // single-sample copies.
        for p in &r.per_policy {
            assert!(p.samples >= 5, "{}: only {} samples", p.name, p.samples);
            assert!(p.min_ns <= p.median_ns && p.median_ns <= p.max_ns);
            assert!(p.min_ns <= p.mean_ns && p.mean_ns <= p.max_ns);
        }
        assert!(r.sim_device_ops > 0);
        assert!(r.ops_per_instruction > 0.0);
        assert!(r.parallel_wall_seconds > 0.0);
        assert!(r.intra_run_speedup > 0.0);
        // Every (program, policy) key planned once — each session plans all
        // workloads under Conduit, and the serial session's per-policy
        // probes add three more policy keys for jacobi-1d. Re-planned never:
        // the warm-up and timed passes hit the cache.
        assert_eq!(
            r.plan_cache_misses,
            2 * conduit_workloads::Workload::ALL.len() as u64 + 3
        );
        assert!(r.plan_cache_hits >= r.plan_cache_misses);
        assert_eq!(r.plan_cache_inline, 0);
        let json = r.to_json();
        assert!(json.contains("\"instructions_per_sec\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(json.contains("\"sim_device_ops\""));
        assert!(json.contains("\"intra_run_speedup\""));
        assert!(json.contains("\"plan_cache_hits\""));
        assert!(r.summary().contains("instructions/sec"));
        assert!(r.summary().contains("ops/instruction"));
        assert!(r.summary().contains("plan cache"));
        // The perf gate can read back what we wrote.
        let parsed = baseline_instructions_per_sec(&json).expect("field is present");
        assert!((parsed - r.instructions_per_sec).abs() <= 0.05 * r.instructions_per_sec + 0.1);
        let ops = baseline_ops_per_instruction(&json).expect("field is present");
        assert!((ops - r.ops_per_instruction).abs() <= 1e-5);
        // The simulated-work metric is deterministic: re-running one of the
        // timed submits sees exactly the same per-run counter even though
        // wall clock differs. (Cheaper than a second full measure(), which
        // would repeat both figure sweeps.)
        let mut session = Session::builder(SsdConfig::small_for_tests())
            .serial()
            .build();
        let id = session
            .register(Workload::Jacobi1d.program(Scale::test()).unwrap())
            .unwrap();
        let a = session
            .submit(&RunRequest::new(id, Policy::Conduit))
            .unwrap();
        let b = session
            .submit(&RunRequest::new(id, Policy::Conduit))
            .unwrap();
        assert_eq!(
            a.summary.device_delta.device_ops,
            b.summary.device_delta.device_ops
        );
        assert!(a.summary.device_delta.device_ops > 0);
    }

    #[test]
    fn counters_only_measurement_skips_the_sweeps() {
        let r = ThroughputReport::measure_counters_only(true);
        assert!(r.instructions > 0);
        assert!(r.sim_device_ops > 0);
        assert_eq!(r.sweep_serial_seconds, 0.0);
        assert_eq!(r.sweep_parallel_seconds, 0.0);
        // The gated counter is identical to the full measurement's.
        assert!(
            (r.ops_per_instruction - ThroughputReport::measure(true).ops_per_instruction).abs()
                < 1e-12
        );
    }

    #[test]
    fn baseline_parser_handles_real_and_bad_documents() {
        assert_eq!(
            baseline_instructions_per_sec("{\n  \"instructions_per_sec\": 177000.5,\n}"),
            Some(177000.5)
        );
        assert_eq!(
            baseline_instructions_per_sec("{\"instructions_per_sec\": 42}"),
            Some(42.0)
        );
        assert_eq!(baseline_instructions_per_sec("{}"), None);
        assert_eq!(
            baseline_ops_per_instruction("{\"ops_per_instruction\": 6.25}"),
            Some(6.25)
        );
        // Pre-counter baselines (PR 2 format) report None.
        assert_eq!(
            baseline_ops_per_instruction("{\"instructions_per_sec\": 1.0}"),
            None
        );
        assert_eq!(
            baseline_instructions_per_sec("{\"instructions_per_sec\": \"oops\"}"),
            None
        );
    }

    #[test]
    fn scale_field_roundtrips_and_parses() {
        assert_eq!(baseline_scale("{\"scale\": \"paper\",}"), Some("paper"));
        assert_eq!(baseline_scale("{\"scale\": \"quick\"}"), Some("quick"));
        // Pre-scale-field documents (PR 1 format) report None.
        assert_eq!(baseline_scale("{\"instructions_per_sec\": 1.0}"), None);
        let quick = ThroughputReport {
            quick: true,
            instructions: 1,
            wall_seconds: 1.0,
            instructions_per_sec: 1.0,
            sim_device_ops: 1,
            ops_per_instruction: 1.0,
            parallel_wall_seconds: 1.0,
            parallel_instructions_per_sec: 1.0,
            intra_run_speedup: 1.0,
            plan_cache_hits: 1,
            plan_cache_misses: 1,
            plan_cache_inline: 0,
            sweep_serial_seconds: 1.0,
            sweep_parallel_seconds: 1.0,
            parallel_speedup: 1.0,
            per_policy: Vec::new(),
        };
        assert_eq!(baseline_scale(&quick.to_json()), Some("quick"));
    }
}
