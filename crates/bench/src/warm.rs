//! The `repro warm-pool` target: a multi-tenant request mix on a pool of
//! named warm devices.
//!
//! The paper's deployment scenario is several long-lived SSDs serving
//! different tenants: each device's FTL mappings, coherence state,
//! garbage-collection debt and wear are *carried over* from request to
//! request rather than reset per experiment, and the devices age
//! independently of one another. This module drives that scenario through
//! the service API: one [`Session`] with one named device per tenant
//! ([`Session::create_device`]), each tenant's requests submitted in rounds
//! of batches so the per-device FIFO lanes execute in parallel across
//! devices while staying serial (and deterministic) within each device.
//!
//! The report prints, per request, the stream-clock split
//! ([`conduit::RunSummary::queueing_time`] vs
//! [`conduit::RunSummary::service_time`]) and the device-delta counters the
//! run added ([`conduit::RunSummary::device_delta`]), then ends with each
//! device's cumulative [`conduit_sim::DeviceSnapshot`] — the observable
//! that distinguishes a warm pool from the fresh-device figure sweeps,
//! where every one of these counters would restart from zero.

use conduit::{Policy, RunRequest, Session};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

/// The multi-tenant mix: each tenant submits one workload under one policy
/// on its own named device. The policies are chosen to exercise different
/// parts of the persistent state — Conduit mixes all three SSD resources,
/// PuD-SSD dirties DRAM rows, ISP-only dirties controller SRAM, and the
/// host baseline drags pages across the PCIe link and back.
const TENANTS: [(&str, Workload, Policy); 4] = [
    ("tenant-xor", Workload::XorFilter, Policy::Conduit),
    ("tenant-jacobi", Workload::Jacobi1d, Policy::PudSsd),
    ("tenant-aes", Workload::Aes, Policy::IspOnly),
    ("tenant-llm", Workload::LlmTraining, Policy::HostCpu),
];

/// How many requests each tenant submits per round: the lane scheduling
/// (and the queueing/service split) is only visible when a device receives
/// more than one request per batch.
const REQUESTS_PER_ROUND: usize = 2;

/// Runs the warm multi-tenant pool and formats the report.
///
/// `quick` selects the reduced test scale (the `--smoke` / `--quick` flags
/// of the `repro` binary); the paper scale runs the same mix on full-size
/// devices.
pub fn warm_pool_report(quick: bool) -> String {
    let (cfg, scale, rounds) = if quick {
        (SsdConfig::small_for_tests(), Scale::test(), 2usize)
    } else {
        (SsdConfig::default(), Scale::new(4, 1), 3usize)
    };

    let mut session = Session::builder(cfg).build();
    let tenants: Vec<_> = TENANTS
        .iter()
        .map(|&(name, workload, policy)| {
            let program = workload.program(scale).expect("generators always succeed");
            let id = session
                .register(program)
                .expect("generated programs always validate");
            let device = session.create_device(name);
            (name, workload, policy, id, device)
        })
        .collect();

    let mut out = String::from(
        "# Warm device pool: 4 tenants on 4 named devices (per-device FIFO lanes, parallel across devices)\n\
         req\ttenant\tworkload\tpolicy\tqueue_ms\tservice_ms\trewrites\tcoh_syncs\tgc_inv\tpages_migrated\twear_spread\tdevice_ops\n",
    );
    let mut seq = 0usize;
    for _ in 0..rounds {
        // One batch per round: every tenant's lane gets two requests, so
        // the second request of each lane shows real queueing time while
        // the four lanes execute in parallel.
        let requests: Vec<RunRequest> = (0..REQUESTS_PER_ROUND)
            .flat_map(|_| {
                tenants.iter().map(|&(_, _, policy, id, device)| {
                    RunRequest::new(id, policy).on_device(device)
                })
            })
            .collect();
        let outcomes = session
            .submit_batch(&requests)
            .expect("warm simulation of a generated workload cannot fail");
        for (outcome, &(name, workload, policy, _, _)) in outcomes
            .iter()
            .zip(tenants.iter().cycle().take(outcomes.len()))
        {
            let s = &outcome.summary;
            let d = s.device_delta;
            out.push_str(&format!(
                "{seq}\t{name}\t{workload}\t{policy}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                s.queueing_time.as_ms(),
                s.service_time.as_ms(),
                d.rewrites,
                d.coherence_syncs,
                d.gc_invocations,
                d.pages_migrated,
                d.wear_spread,
                d.device_ops,
            ));
            seq += 1;
        }
    }

    out.push_str(&format!(
        "\n# Cumulative per-device state after {seq} requests\n\
         tenant\tpages_mapped\trewrites\tcoh_writes\tcoh_syncs\tgc_inv\tgc_migrated\twear_migrated\twear_spread\tdevice_ops\tlane_reqs\toccupancy\tqueued_ms\tidle_ms\tstream_clock_ms\tenergy_mJ\n"
    ));
    for &(name, _, _, _, device) in &tenants {
        let snap = session.device_snapshot(device);
        let clock = session.device_clock(device);
        out.push_str(&format!(
            "{name}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\n",
            snap.pages_mapped,
            snap.rewrites,
            snap.coherence_writes,
            snap.coherence_syncs,
            snap.gc_invocations,
            snap.gc_pages_migrated,
            snap.wear_pages_migrated,
            snap.wear_spread,
            snap.device_ops,
            snap.lane_requests,
            snap.lane_occupancy(),
            snap.lane_queued_time.as_ms(),
            snap.lane_idle_time.as_ms(),
            clock.as_ps() as f64 / 1e9,
            snap.total_energy.as_nj() / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_warm_pool_produces_a_full_report() {
        let report = warm_pool_report(true);
        // One row per request plus the cumulative block.
        assert!(
            report.lines().count() > TENANTS.len() * REQUESTS_PER_ROUND * 2,
            "report too short:\n{report}"
        );
        assert!(report.contains("Cumulative per-device state"));
        for (name, _, _) in TENANTS {
            assert!(report.contains(name), "missing tenant {name}:\n{report}");
        }
    }

    #[test]
    fn warm_pool_is_deterministic() {
        assert_eq!(warm_pool_report(true), warm_pool_report(true));
    }
}
