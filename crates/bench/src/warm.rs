//! The `repro warm-stream` target: a multi-tenant request mix on one warm
//! device.
//!
//! The paper's evaluation implies a long-lived SSD serving many tenants:
//! FTL mappings, coherence state, garbage-collection debt and wear are
//! *carried over* from request to request rather than reset per experiment.
//! This module drives that scenario through the service API: one
//! [`Session`] in [`conduit::DeviceMode::Warm`], four tenants with
//! different workload/policy characters, their requests interleaved
//! round-robin so the device ages under a realistic mix of SSD-internal
//! compute (which dirties pages in DRAM/SRAM), host offload traffic (which
//! pulls pages across the PCIe link) and result writes (which force
//! coherence syncs and out-of-place flash programs, eventually waking the
//! garbage collector).
//!
//! The report prints, per request, the device-delta counters the run added
//! ([`conduit::RunSummary::device_delta`]) and ends with the cumulative
//! [`conduit_sim::DeviceSnapshot`] — the observable that distinguishes a
//! warm stream from the fresh-device figure sweeps, where every one of
//! these counters would restart from zero.

use conduit::{DeviceMode, Policy, RunRequest, Session};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

/// The multi-tenant mix: each tenant submits one workload under one policy.
/// The policies are chosen to exercise different parts of the persistent
/// state — Conduit mixes all three SSD resources, PuD-SSD dirties DRAM
/// rows, ISP-only dirties controller SRAM, and the host baseline drags
/// pages across the PCIe link and back.
const TENANTS: [(Workload, Policy); 4] = [
    (Workload::XorFilter, Policy::Conduit),
    (Workload::Jacobi1d, Policy::PudSsd),
    (Workload::Aes, Policy::IspOnly),
    (Workload::LlmTraining, Policy::HostCpu),
];

/// Runs the warm multi-tenant stream and formats the report.
///
/// `quick` selects the reduced test scale (the `--smoke` / `--quick` flags
/// of the `repro` binary); the paper scale runs the same mix on the
/// full-size device.
pub fn warm_stream_report(quick: bool) -> String {
    let (cfg, scale, rounds) = if quick {
        (SsdConfig::small_for_tests(), Scale::test(), 3usize)
    } else {
        (SsdConfig::default(), Scale::new(4, 1), 4usize)
    };

    let mut session = Session::builder(cfg).device_mode(DeviceMode::Warm).build();
    let ids: Vec<_> = TENANTS
        .iter()
        .map(|(w, _)| {
            let program = w.program(scale).expect("generators always succeed");
            session
                .register(program)
                .expect("generated programs always validate")
        })
        .collect();

    let mut out = String::from(
        "# Warm-device multi-tenant stream (one persistent DeviceState across all requests)\n\
         req\tworkload\tpolicy\ttime_ms\trewrites\tcoh_syncs\tgc_inv\tpages_migrated\twear_spread\tdevice_ops\n",
    );
    let mut seq = 0usize;
    for _ in 0..rounds {
        for (&id, &(workload, policy)) in ids.iter().zip(TENANTS.iter()) {
            let outcome = session
                .submit(&RunRequest::new(id, policy))
                .expect("warm simulation of a generated workload cannot fail");
            let d = outcome.summary.device_delta;
            out.push_str(&format!(
                "{seq}\t{workload}\t{policy}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                outcome.summary.total_time.as_us() / 1000.0,
                d.rewrites,
                d.coherence_syncs,
                d.gc_invocations,
                d.pages_migrated,
                d.wear_spread,
                d.device_ops,
            ));
            seq += 1;
        }
    }

    let snap = session.device_snapshot();
    out.push_str(&format!(
        "\n# Cumulative device state after {seq} requests\n\
         pages mapped:        {}\n\
         rewrites:            {}\n\
         coherence writes:    {}\n\
         coherence syncs:     {}\n\
         GC invocations:      {}\n\
         GC pages migrated:   {}\n\
         GC blocks erased:    {}\n\
         wear spread (max-min erases): {}\n\
         dirty pages left:    {}\n\
         device ops:          {}\n\
         total energy (mJ):   {:.3}\n",
        snap.pages_mapped,
        snap.rewrites,
        snap.coherence_writes,
        snap.coherence_syncs,
        snap.gc_invocations,
        snap.gc_pages_migrated,
        snap.gc_blocks_erased,
        snap.wear_spread,
        snap.dirty_pages,
        snap.device_ops,
        snap.total_energy.as_nj() / 1e6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_warm_stream_produces_a_full_report() {
        let report = warm_stream_report(true);
        // One row per request plus the cumulative block.
        assert!(
            report.lines().count() > TENANTS.len() * 3,
            "report too short:\n{report}"
        );
        assert!(report.contains("Cumulative device state"));
        assert!(report.contains("coherence syncs"));
    }

    #[test]
    fn warm_stream_is_deterministic() {
        assert_eq!(warm_stream_report(true), warm_stream_report(true));
    }
}
