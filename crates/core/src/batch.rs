//! The batch planner: strip-mining a [`VectorProgram`] into runs of
//! homogeneous instructions.
//!
//! A **strip** is a maximal run of consecutive instructions that share the
//! same `(op, elem_bits, lanes)` shape — and therefore the same
//! [`conduit_sim::StripEstimates`] (per-resource compute estimates and
//! per-location static-move latencies). The batched run loop in
//! [`crate::RuntimeEngine`] hoists those estimates and the offloader-core
//! reservation once per strip instead of once per instruction.
//!
//! For policies whose placement is a pure function of the operation
//! (host-side policies and the single-resource NDP baselines), the planner
//! also resolves the [`ExecutionSite`] statically, so the run loop skips
//! site selection entirely. Policies that consult runtime state — operand
//! residency, queueing delays, utilization — keep `site: None` and place
//! each instruction inside the strip exactly as the scalar path would
//! (which is also how a warm device's coherence state can flip placements
//! mid-strip without invalidating the plan: the plan never pins a dynamic
//! decision).
//!
//! Planning is O(n) and allocation-light, so inline programs can plan on
//! the fly; registered programs cache their plan per (program, policy,
//! cost-function) in the session (see `Session`), keyed by the
//! content-addressed registry id — the registry is append-only, so cached
//! plans never need invalidation.

use conduit_types::{ExecutionSite, Resource, VectorProgram};

use crate::cost::CostFunction;
use crate::engine::RunOptions;
use crate::policy::Policy;

/// One run of consecutive instructions with a homogeneous
/// `(op, elem_bits, lanes)` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strip {
    /// Index of the strip's first instruction in the program.
    pub start: usize,
    /// Number of instructions in the strip (≥ 1).
    pub len: usize,
    /// The statically resolved execution site, when the policy's placement
    /// depends only on the operation. `None` = the policy decides per
    /// instruction at run time.
    pub site: Option<ExecutionSite>,
    /// Start of this strip's dataflow-dependence edge range in
    /// [`StripPlan::dep_edges`] (see [`StripPlan::deps_of`]).
    pub deps_start: u32,
    /// Number of dependence edges (earlier strips this strip consumes
    /// [`conduit_types::Operand::Result`] values from).
    pub deps_len: u32,
    /// Conservative bit: some instruction in this strip mutates warm device
    /// state visible to later placement decisions (today: it commits a
    /// result page, which moves FTL mappings and the coherence directory).
    pub touches_warm_state: bool,
    /// Whether a worker thread may *speculate* this strip's dynamic
    /// placement ahead of commit: the strip consumes no earlier strip's
    /// results and no earlier strip touches warm device state, so on a
    /// fresh device its placement inputs are exactly the pure plan-time
    /// context. Commit always recomputes the real choice — this bit only
    /// gates whether speculation is attempted (and counted).
    pub speculative: bool,
}

/// The strip decomposition of one program under one (policy, cost-function)
/// pair, annotated with the strip-level **dataflow DAG**: which earlier
/// strips each strip consumes `Operand::Result` values from, plus the
/// conservative warm-state bits that decide speculation eligibility.
#[derive(Debug, Clone, PartialEq)]
pub struct StripPlan {
    policy: Policy,
    cost_function: CostFunction,
    strips: Vec<Strip>,
    /// Flattened per-strip dependence edges: strip `s` depends on the
    /// earlier strips `dep_edges[s.deps_start .. s.deps_start + s.deps_len]`
    /// (sorted, deduplicated strip indices).
    dep_edges: Vec<u32>,
}

impl StripPlan {
    /// Strip-mines `program` for `policy`. The cost function is recorded so
    /// the plan can be cache-keyed and validity-checked against the run's
    /// options; ablation switches do not change the strip boundaries.
    pub fn plan(program: &VectorProgram, policy: Policy, cost_function: CostFunction) -> Self {
        let mut strips = Vec::new();
        let mut dep_edges = Vec::new();
        Self::plan_into(program, policy, &mut strips, &mut dep_edges);
        StripPlan {
            policy,
            cost_function,
            strips,
            dep_edges,
        }
    }

    /// The planner core: strip-mines `program` into `strips` and its
    /// dataflow edges into `dep_edges` (both cleared first). Used directly
    /// by the engine to plan inline programs into its reusable scratch
    /// without allocating a [`StripPlan`].
    ///
    /// Dependence edges are derived in one forward pass: a `Result(id)`
    /// operand whose producer index falls before the strip's own range adds
    /// an edge to the producer's strip (found by binary search over the
    /// already-emitted strip starts — producers always precede consumers,
    /// [`VectorProgram::validate`] forbids forward references). Intra-strip
    /// result references are *not* edges: the engine already chains them
    /// through the per-instruction ready times inside a strip.
    pub(crate) fn plan_into(
        program: &VectorProgram,
        policy: Policy,
        strips: &mut Vec<Strip>,
        dep_edges: &mut Vec<u32>,
    ) {
        strips.clear();
        dep_edges.clear();
        let insts = program.insts();
        // Prefix property for speculation: true while no strip emitted so
        // far mutates warm device state.
        let mut warm_clean = true;
        let mut i = 0;
        while i < insts.len() {
            let key = (insts[i].op, insts[i].elem_bits, insts[i].lanes);
            let mut end = i + 1;
            while end < insts.len()
                && (insts[end].op, insts[end].elem_bits, insts[end].lanes) == key
            {
                end += 1;
            }
            let deps_start = dep_edges.len();
            let mut touches_warm_state = false;
            for inst in &insts[i..end] {
                touches_warm_state |= inst.dst_page.is_some();
                for dep in inst.src_results() {
                    let producer = dep.index();
                    if producer < i {
                        dep_edges.push(owning_strip(strips, producer));
                    }
                }
            }
            dedup_suffix(dep_edges, deps_start);
            let deps_len = (dep_edges.len() - deps_start) as u32;
            strips.push(Strip {
                start: i,
                len: end - i,
                site: static_site(policy, key.0),
                deps_start: deps_start as u32,
                deps_len,
                touches_warm_state,
                speculative: warm_clean && deps_len == 0,
            });
            warm_clean &= !touches_warm_state;
            i = end;
        }
    }

    /// Whether this plan was computed for exactly the given run options.
    pub fn matches(&self, options: &RunOptions) -> bool {
        self.policy == options.policy && self.cost_function == options.cost_function
    }

    /// The policy this plan was computed for.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The strips, in program order.
    pub fn strips(&self) -> &[Strip] {
        &self.strips
    }

    /// The flattened dependence-edge store (for scratch-planned strips the
    /// engine borrows the edges alongside the strip vector).
    pub fn dep_edges(&self) -> &[u32] {
        &self.dep_edges
    }

    /// The earlier strips `strip` consumes results from: sorted,
    /// deduplicated indices into [`StripPlan::strips`].
    pub fn deps_of(&self, strip: &Strip) -> &[u32] {
        strip.deps(&self.dep_edges)
    }
}

impl Strip {
    /// This strip's dependence edges inside a flattened edge store (the
    /// plan's own, or the engine scratch's for inline programs).
    pub fn deps<'a>(&self, dep_edges: &'a [u32]) -> &'a [u32] {
        let start = self.deps_start as usize;
        &dep_edges[start..start + self.deps_len as usize]
    }
}

/// Index of the already-emitted strip containing instruction `index`
/// (binary search over the sorted strip starts).
fn owning_strip(strips: &[Strip], index: usize) -> u32 {
    debug_assert!(!strips.is_empty(), "producer precedes the current strip");
    let k = strips.partition_point(|s| s.start <= index) - 1;
    debug_assert!(index < strips[k].start + strips[k].len);
    k as u32
}

/// Sorts and deduplicates `v[start..]` in place (the just-pushed edge set
/// of one strip).
fn dedup_suffix(v: &mut Vec<u32>, start: usize) {
    v[start..].sort_unstable();
    let mut w = start;
    for r in start..v.len() {
        if w == start || v[w - 1] != v[r] {
            v[w] = v[r];
            w += 1;
        }
    }
    v.truncate(w);
}

/// The statically resolvable arms of [`Policy::choose_site`]: placements
/// that are a pure function of the operation. Must mirror `choose_site`
/// exactly — the differential tests in `tests/integration_batched.rs` hold
/// the two together.
fn static_site(policy: Policy, op: conduit_types::OpType) -> Option<ExecutionSite> {
    match policy {
        Policy::HostCpu => Some(ExecutionSite::HostCpu),
        Policy::HostGpu => Some(ExecutionSite::HostGpu),
        Policy::IspOnly => Some(ExecutionSite::Ssd(Resource::Isp)),
        Policy::PudSsd => Some(ExecutionSite::Ssd(if Resource::PudSsd.supports(op) {
            Resource::PudSsd
        } else {
            Resource::Isp
        })),
        Policy::FlashCosmos | Policy::IfpIsp => Some(ExecutionSite::Ssd(if op.is_bitwise() {
            Resource::Ifp
        } else {
            Resource::Isp
        })),
        Policy::AresFlash => Some(ExecutionSite::Ssd(if Resource::Ifp.supports(op) {
            Resource::Ifp
        } else {
            Resource::Isp
        })),
        // Runtime-state-dependent placement (utilization, operand residency,
        // queueing) — and Ideal, whose choice is resolved per strip from the
        // hoisted compute estimates in the engine.
        Policy::BwOffloading | Policy::DmOffloading | Policy::Conduit | Policy::Ideal => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand, SimTime, VectorInst};

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("strips");
        // Three XORs, then one Add, then two XORs: three strips.
        for k in 0..3 {
            prog.push(VectorInst::binary(
                k,
                OpType::Xor,
                Operand::page(k as u64 * 8),
                Operand::page(k as u64 * 8 + 4),
            ));
        }
        prog.push(VectorInst::binary(
            3,
            OpType::Add,
            Operand::page(32),
            Operand::page(36),
        ));
        for k in 4..6 {
            prog.push(VectorInst::binary(
                k,
                OpType::Xor,
                Operand::page(k as u64 * 8 + 8),
                Operand::page(k as u64 * 8 + 12),
            ));
        }
        prog
    }

    #[test]
    fn strips_cover_the_program_in_order() {
        let prog = program();
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        let strips = plan.strips();
        assert_eq!(strips.len(), 3);
        assert_eq!((strips[0].start, strips[0].len), (0, 3));
        assert_eq!((strips[1].start, strips[1].len), (3, 1));
        assert_eq!((strips[2].start, strips[2].len), (4, 2));
        let covered: usize = strips.iter().map(|s| s.len).sum();
        assert_eq!(covered, prog.len());
    }

    #[test]
    fn shape_changes_break_strips() {
        let mut prog = VectorProgram::new("shapes");
        prog.push(VectorInst::binary(
            0,
            OpType::Add,
            Operand::page(0),
            Operand::page(4),
        ));
        let mut narrow = VectorInst::binary(1, OpType::Add, Operand::page(8), Operand::page(12));
        narrow.elem_bits = 8;
        prog.push(narrow);
        let plan = StripPlan::plan(&prog, Policy::IspOnly, CostFunction::conduit());
        assert_eq!(plan.strips().len(), 2);
    }

    #[test]
    fn static_sites_mirror_choose_site() {
        use crate::policy::PolicyContext;
        use conduit_sim::SsdDevice;
        use conduit_types::{DataLocation, Duration, SsdConfig};

        let dev = SsdDevice::new(&SsdConfig::small_for_tests()).unwrap();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let ctx = PolicyContext {
            device: &dev,
            now: SimTime::ZERO,
            operand_locations: &locs,
            dependence_delay: Duration::ZERO,
        };
        for policy in Policy::ALL {
            for op in OpType::ALL {
                let inst = VectorInst::with_srcs(
                    0,
                    op,
                    (0..op.arity())
                        .map(|k| Operand::page(k as u64 * 4))
                        .collect(),
                );
                if let Some(site) = static_site(policy, op) {
                    assert_eq!(
                        site,
                        policy.choose_site(&inst, &ctx),
                        "{policy}/{op} static site diverged from choose_site"
                    );
                }
            }
        }
    }

    #[test]
    fn dag_edges_point_at_producing_strips() {
        let mut prog = VectorProgram::new("dag");
        // Strip 0: two XORs (no deps). Strip 1: one Add consuming strip 0's
        // second result twice (edges dedup). Strip 2: XORs consuming strip
        // 1's result and strip 0's first — two edges, sorted.
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        let b = prog.push_binary(OpType::Xor, Operand::page(8), Operand::page(12));
        let c = prog.push_binary(OpType::Add, Operand::result(b), Operand::result(b));
        prog.push_binary(OpType::Xor, Operand::result(c), Operand::result(a));
        prog.push_binary(OpType::Xor, Operand::page(16), Operand::page(20));
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        let strips = plan.strips();
        assert_eq!(strips.len(), 3);
        assert_eq!(plan.deps_of(&strips[0]), &[] as &[u32]);
        assert_eq!(plan.deps_of(&strips[1]), &[0]);
        assert_eq!(plan.deps_of(&strips[2]), &[0, 1]);
        // Intra-strip result references are not cross-strip edges.
        let mut chained = VectorProgram::new("chain");
        let x = chained.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        chained.push_binary(OpType::Xor, Operand::result(x), Operand::page(8));
        let plan = StripPlan::plan(&chained, Policy::Conduit, CostFunction::conduit());
        assert_eq!(plan.strips().len(), 1);
        assert!(plan.dep_edges().is_empty());
    }

    #[test]
    fn speculation_eligibility_is_a_warm_clean_prefix() {
        let mut prog = VectorProgram::new("spec");
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        // Strip 1: different shape, no deps — still speculative (strip 0
        // does not commit a result page).
        prog.push_binary(OpType::Add, Operand::page(8), Operand::page(12));
        // Strip 2: depends on strip 0 — not speculative.
        prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(16));
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        let strips = plan.strips();
        assert!(strips[0].speculative && strips[1].speculative);
        assert!(!strips[2].speculative);
        assert!(strips.iter().all(|s| !s.touches_warm_state));

        // A dst_page commit poisons every later strip's eligibility.
        let mut warm = VectorProgram::new("warm");
        let mut inst = VectorInst::binary(0, OpType::Xor, Operand::page(0), Operand::page(4));
        inst.dst_page = Some(conduit_types::LogicalPageId::new(64));
        warm.push(inst);
        warm.push(VectorInst::binary(
            1,
            OpType::Add,
            Operand::page(8),
            Operand::page(12),
        ));
        let plan = StripPlan::plan(&warm, Policy::Conduit, CostFunction::conduit());
        let strips = plan.strips();
        assert!(strips[0].touches_warm_state && strips[0].speculative);
        assert!(!strips[1].speculative);
    }

    #[test]
    fn plans_validate_against_run_options() {
        let prog = program();
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        assert!(plan.matches(&RunOptions::new(Policy::Conduit)));
        assert!(!plan.matches(&RunOptions::new(Policy::IspOnly)));
        let ablated = RunOptions::new(Policy::Conduit).cost_function(CostFunction {
            include_data_movement: false,
            ..CostFunction::conduit()
        });
        assert!(!plan.matches(&ablated));
        assert_eq!(plan.policy(), Policy::Conduit);
    }
}
