//! The batch planner: strip-mining a [`VectorProgram`] into runs of
//! homogeneous instructions.
//!
//! A **strip** is a maximal run of consecutive instructions that share the
//! same `(op, elem_bits, lanes)` shape — and therefore the same
//! [`conduit_sim::StripEstimates`] (per-resource compute estimates and
//! per-location static-move latencies). The batched run loop in
//! [`crate::RuntimeEngine`] hoists those estimates and the offloader-core
//! reservation once per strip instead of once per instruction.
//!
//! For policies whose placement is a pure function of the operation
//! (host-side policies and the single-resource NDP baselines), the planner
//! also resolves the [`ExecutionSite`] statically, so the run loop skips
//! site selection entirely. Policies that consult runtime state — operand
//! residency, queueing delays, utilization — keep `site: None` and place
//! each instruction inside the strip exactly as the scalar path would
//! (which is also how a warm device's coherence state can flip placements
//! mid-strip without invalidating the plan: the plan never pins a dynamic
//! decision).
//!
//! Planning is O(n) and allocation-light, so inline programs can plan on
//! the fly; registered programs cache their plan per (program, policy,
//! cost-function) in the session (see `Session`), keyed by the
//! content-addressed registry id — the registry is append-only, so cached
//! plans never need invalidation.

use conduit_types::{ExecutionSite, Resource, VectorProgram};

use crate::cost::CostFunction;
use crate::engine::RunOptions;
use crate::policy::Policy;

/// One run of consecutive instructions with a homogeneous
/// `(op, elem_bits, lanes)` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strip {
    /// Index of the strip's first instruction in the program.
    pub start: usize,
    /// Number of instructions in the strip (≥ 1).
    pub len: usize,
    /// The statically resolved execution site, when the policy's placement
    /// depends only on the operation. `None` = the policy decides per
    /// instruction at run time.
    pub site: Option<ExecutionSite>,
}

/// The strip decomposition of one program under one (policy, cost-function)
/// pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StripPlan {
    policy: Policy,
    cost_function: CostFunction,
    strips: Vec<Strip>,
}

impl StripPlan {
    /// Strip-mines `program` for `policy`. The cost function is recorded so
    /// the plan can be cache-keyed and validity-checked against the run's
    /// options; ablation switches do not change the strip boundaries.
    pub fn plan(program: &VectorProgram, policy: Policy, cost_function: CostFunction) -> Self {
        let mut strips = Vec::new();
        Self::plan_into(program, policy, &mut strips);
        StripPlan {
            policy,
            cost_function,
            strips,
        }
    }

    /// The planner core: strip-mines `program` into `strips` (cleared
    /// first). Used directly by the engine to plan inline programs into its
    /// reusable scratch without allocating a [`StripPlan`].
    pub(crate) fn plan_into(program: &VectorProgram, policy: Policy, strips: &mut Vec<Strip>) {
        strips.clear();
        let insts = program.insts();
        let mut i = 0;
        while i < insts.len() {
            let key = (insts[i].op, insts[i].elem_bits, insts[i].lanes);
            let mut end = i + 1;
            while end < insts.len()
                && (insts[end].op, insts[end].elem_bits, insts[end].lanes) == key
            {
                end += 1;
            }
            strips.push(Strip {
                start: i,
                len: end - i,
                site: static_site(policy, key.0),
            });
            i = end;
        }
    }

    /// Whether this plan was computed for exactly the given run options.
    pub fn matches(&self, options: &RunOptions) -> bool {
        self.policy == options.policy && self.cost_function == options.cost_function
    }

    /// The policy this plan was computed for.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The strips, in program order.
    pub fn strips(&self) -> &[Strip] {
        &self.strips
    }
}

/// The statically resolvable arms of [`Policy::choose_site`]: placements
/// that are a pure function of the operation. Must mirror `choose_site`
/// exactly — the differential tests in `tests/integration_batched.rs` hold
/// the two together.
fn static_site(policy: Policy, op: conduit_types::OpType) -> Option<ExecutionSite> {
    match policy {
        Policy::HostCpu => Some(ExecutionSite::HostCpu),
        Policy::HostGpu => Some(ExecutionSite::HostGpu),
        Policy::IspOnly => Some(ExecutionSite::Ssd(Resource::Isp)),
        Policy::PudSsd => Some(ExecutionSite::Ssd(if Resource::PudSsd.supports(op) {
            Resource::PudSsd
        } else {
            Resource::Isp
        })),
        Policy::FlashCosmos | Policy::IfpIsp => Some(ExecutionSite::Ssd(if op.is_bitwise() {
            Resource::Ifp
        } else {
            Resource::Isp
        })),
        Policy::AresFlash => Some(ExecutionSite::Ssd(if Resource::Ifp.supports(op) {
            Resource::Ifp
        } else {
            Resource::Isp
        })),
        // Runtime-state-dependent placement (utilization, operand residency,
        // queueing) — and Ideal, whose choice is resolved per strip from the
        // hoisted compute estimates in the engine.
        Policy::BwOffloading | Policy::DmOffloading | Policy::Conduit | Policy::Ideal => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand, SimTime, VectorInst};

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("strips");
        // Three XORs, then one Add, then two XORs: three strips.
        for k in 0..3 {
            prog.push(VectorInst::binary(
                k,
                OpType::Xor,
                Operand::page(k as u64 * 8),
                Operand::page(k as u64 * 8 + 4),
            ));
        }
        prog.push(VectorInst::binary(
            3,
            OpType::Add,
            Operand::page(32),
            Operand::page(36),
        ));
        for k in 4..6 {
            prog.push(VectorInst::binary(
                k,
                OpType::Xor,
                Operand::page(k as u64 * 8 + 8),
                Operand::page(k as u64 * 8 + 12),
            ));
        }
        prog
    }

    #[test]
    fn strips_cover_the_program_in_order() {
        let prog = program();
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        let strips = plan.strips();
        assert_eq!(strips.len(), 3);
        assert_eq!((strips[0].start, strips[0].len), (0, 3));
        assert_eq!((strips[1].start, strips[1].len), (3, 1));
        assert_eq!((strips[2].start, strips[2].len), (4, 2));
        let covered: usize = strips.iter().map(|s| s.len).sum();
        assert_eq!(covered, prog.len());
    }

    #[test]
    fn shape_changes_break_strips() {
        let mut prog = VectorProgram::new("shapes");
        prog.push(VectorInst::binary(
            0,
            OpType::Add,
            Operand::page(0),
            Operand::page(4),
        ));
        let mut narrow = VectorInst::binary(1, OpType::Add, Operand::page(8), Operand::page(12));
        narrow.elem_bits = 8;
        prog.push(narrow);
        let plan = StripPlan::plan(&prog, Policy::IspOnly, CostFunction::conduit());
        assert_eq!(plan.strips().len(), 2);
    }

    #[test]
    fn static_sites_mirror_choose_site() {
        use crate::policy::PolicyContext;
        use conduit_sim::SsdDevice;
        use conduit_types::{DataLocation, Duration, SsdConfig};

        let dev = SsdDevice::new(&SsdConfig::small_for_tests()).unwrap();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let ctx = PolicyContext {
            device: &dev,
            now: SimTime::ZERO,
            operand_locations: &locs,
            dependence_delay: Duration::ZERO,
        };
        for policy in Policy::ALL {
            for op in OpType::ALL {
                let inst = VectorInst::with_srcs(
                    0,
                    op,
                    (0..op.arity())
                        .map(|k| Operand::page(k as u64 * 4))
                        .collect(),
                );
                if let Some(site) = static_site(policy, op) {
                    assert_eq!(
                        site,
                        policy.choose_site(&inst, &ctx),
                        "{policy}/{op} static site diverged from choose_site"
                    );
                }
            }
        }
    }

    #[test]
    fn plans_validate_against_run_options() {
        let prog = program();
        let plan = StripPlan::plan(&prog, Policy::Conduit, CostFunction::conduit());
        assert!(plan.matches(&RunOptions::new(Policy::Conduit)));
        assert!(!plan.matches(&RunOptions::new(Policy::IspOnly)));
        let ablated = RunOptions::new(Policy::Conduit).cost_function(CostFunction {
            include_data_movement: false,
            ..CostFunction::conduit()
        });
        assert!(!plan.matches(&ablated));
        assert_eq!(plan.policy(), Policy::Conduit);
    }
}
