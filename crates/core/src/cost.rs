//! The holistic cost function (Eqns. 1 and 2 of the paper).
//!
//! For every candidate SSD compute resource, Conduit estimates
//!
//! ```text
//! total_latency_resource = latency_comp + latency_dm + max(delay_dd, delay_queue)
//! ```
//!
//! and offloads the instruction to the resource with the smallest total
//! (restricted to resources that support the operation at all). The
//! individual terms come from six features: operation type, operand
//! location, data-dependence delay, resource queueing delay, (statically
//! estimated) data-movement latency, and expected computation latency.
//!
//! The struct exposes ablation switches so the benchmark harness can measure
//! how much each term contributes (DESIGN.md lists these as ablation
//! candidates).

use conduit_sim::StripEstimates;
use conduit_types::{DataLocation, Duration, OpType, Resource, VectorInst};

use crate::policy::PolicyContext;

/// The per-resource feature vector the cost function evaluates (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostFeatures {
    /// The candidate resource.
    pub resource: Resource,
    /// Operation type of the instruction.
    pub op: OpType,
    /// Expected computation latency on this resource (`latency_comp`).
    pub comp_latency: Duration,
    /// Static data-movement latency to stage operands at this resource
    /// (`latency_dm`).
    pub dm_latency: Duration,
    /// Delay until the instruction's operands are produced (`delay_dd`).
    pub dependence_delay: Duration,
    /// Delay until the resource is free (`delay_queue`).
    pub queue_delay: Duration,
}

/// The cost function with its ablation switches.
///
/// `Hash` lets (program, policy, cost-function) triples key the session's
/// strip-plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostFunction {
    /// Include the data-movement term (`latency_dm`).
    pub include_data_movement: bool,
    /// Include the queueing-delay term.
    pub include_queue_delay: bool,
    /// Include the data-dependence term.
    pub include_dependence_delay: bool,
    /// Combine dependence and queueing delays with `max` (Eqn. 1). When
    /// `false` the two are summed instead (an ablation the paper argues
    /// against because the delays overlap).
    pub combine_with_max: bool,
}

impl Default for CostFunction {
    fn default() -> Self {
        CostFunction {
            include_data_movement: true,
            include_queue_delay: true,
            include_dependence_delay: true,
            combine_with_max: true,
        }
    }
}

impl CostFunction {
    /// The full cost function used by Conduit.
    pub fn conduit() -> Self {
        CostFunction::default()
    }

    /// Computes the feature vector for executing `inst` on `resource`, or
    /// `None` if the resource does not support the operation.
    pub fn features_for(
        &self,
        resource: Resource,
        inst: &VectorInst,
        ctx: &PolicyContext<'_>,
    ) -> Option<CostFeatures> {
        if !resource.supports(inst.op) {
            return None;
        }
        let comp_latency =
            ctx.device
                .estimate_compute(resource, inst.op, inst.elem_bits, inst.lanes)?;
        let home = resource.home_location();
        let per_operand = inst.vector_bytes();
        let dm_latency: Duration = ctx
            .operand_locations
            .iter()
            .map(|&loc| ctx.device.estimate_move(loc, home, per_operand))
            .sum();
        Some(CostFeatures {
            resource,
            op: inst.op,
            comp_latency,
            dm_latency,
            dependence_delay: ctx.dependence_delay,
            queue_delay: ctx.device.queue_delay(resource, ctx.now),
        })
    }

    /// Eqn. 1: the total offloading latency for one feature vector, honoring
    /// the ablation switches.
    pub fn total_latency(&self, f: &CostFeatures) -> Duration {
        let dm = if self.include_data_movement {
            f.dm_latency
        } else {
            Duration::ZERO
        };
        let dep = if self.include_dependence_delay {
            f.dependence_delay
        } else {
            Duration::ZERO
        };
        let queue = if self.include_queue_delay {
            f.queue_delay
        } else {
            Duration::ZERO
        };
        let stall = if self.combine_with_max {
            dep.max(queue)
        } else {
            dep + queue
        };
        f.comp_latency + dm + stall
    }

    /// Eqn. 2: evaluates every SSD compute resource and returns the one with
    /// the lowest total latency (with its latency), or `None` if no resource
    /// supports the operation (which cannot happen because ISP supports
    /// everything, but the type signature stays honest).
    pub fn choose(
        &self,
        inst: &VectorInst,
        ctx: &PolicyContext<'_>,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                self.features_for(r, inst, ctx)
                    .map(|f| (r, self.total_latency(&f)))
            })
            .min_by_key(|(_, lat)| *lat)
    }

    /// Like [`CostFunction::choose`] but ignores everything except the
    /// expected computation latency — the selection rule of the Ideal policy
    /// (no contention, free data movement).
    pub fn choose_ideal(
        &self,
        inst: &VectorInst,
        ctx: &PolicyContext<'_>,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                if !r.supports(inst.op) {
                    return None;
                }
                ctx.device
                    .estimate_compute(r, inst.op, inst.elem_bits, inst.lanes)
                    .map(|lat| (r, lat))
            })
            .min_by_key(|(_, lat)| *lat)
    }

    /// The data-movement-minimizing selection rule of DM-Offloading.
    pub fn choose_min_data_movement(
        &self,
        inst: &VectorInst,
        ctx: &PolicyContext<'_>,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                self.features_for(r, inst, ctx)
                    .map(|f| (r, f.dm_latency, f.comp_latency))
            })
            // Ties on data movement (e.g. everything already resident in
            // DRAM) are broken by the faster compute latency.
            .min_by_key(|(_, dm, comp)| (*dm, *comp))
            .map(|(r, dm, _)| (r, dm))
    }

    /// [`CostFunction::features_for`] with the per-strip hoisted estimates
    /// substituted for the device's per-instruction estimate queries. The
    /// hoisted table answers are bit-identical to the scalar queries (see
    /// [`StripEstimates`]), so this computes the exact same feature vector.
    pub fn features_from_strip(
        &self,
        resource: Resource,
        op: OpType,
        strip: &StripEstimates,
        ctx: &PolicyContext<'_>,
    ) -> Option<CostFeatures> {
        let est = strip.compute_for(resource)?;
        let dm_latency: Duration = ctx
            .operand_locations
            .iter()
            .map(|&loc| strip.move_from(resource, loc))
            .sum();
        Some(CostFeatures {
            resource,
            op,
            comp_latency: est.latency,
            dm_latency,
            dependence_delay: ctx.dependence_delay,
            queue_delay: ctx.device.queue_delay(resource, ctx.now),
        })
    }

    /// [`CostFunction::choose`] evaluated from per-strip hoisted estimates —
    /// the same candidate set, totals, iteration order, and tie-breaking.
    pub fn choose_from_strip(
        &self,
        op: OpType,
        strip: &StripEstimates,
        ctx: &PolicyContext<'_>,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                self.features_from_strip(r, op, strip, ctx)
                    .map(|f| (r, self.total_latency(&f)))
            })
            .min_by_key(|(_, lat)| *lat)
    }

    /// [`CostFunction::choose_ideal`] from per-strip hoisted estimates.
    pub fn choose_ideal_from_strip(&self, strip: &StripEstimates) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| strip.compute_for(r).map(|e| (r, e.latency)))
            .min_by_key(|(_, lat)| *lat)
    }

    /// The worker-thread **speculation** rule of the parallel strip
    /// evaluator: the choice [`CostFunction::choose_from_strip`] would make
    /// in the pure plan-time context — every data operand flash-resident,
    /// zero dependence delay, zero queue delay. Entirely device-free, so a
    /// pool worker can run it from the hoisted estimates alone; the commit
    /// phase always recomputes the real choice against live device state,
    /// and a divergence is counted as a speculation miss, never a wrong
    /// result.
    pub fn speculate_from_strip(
        &self,
        strip: &StripEstimates,
        data_operands: u64,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                let est = strip.compute_for(r)?;
                let dm = if self.include_data_movement {
                    strip.move_from(r, DataLocation::Flash) * data_operands
                } else {
                    Duration::ZERO
                };
                Some((r, est.latency + dm))
            })
            .min_by_key(|(_, lat)| *lat)
    }

    /// The DM-Offloading speculation rule: same pure plan-time context as
    /// [`CostFunction::speculate_from_strip`], with
    /// [`CostFunction::choose_min_data_movement_from_strip`]'s selection
    /// (data movement first, compute latency as the tie-break; the
    /// data-movement term is never ablated here, matching the real rule).
    pub fn speculate_min_data_movement_from_strip(
        &self,
        strip: &StripEstimates,
        data_operands: u64,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                let est = strip.compute_for(r)?;
                let dm = strip.move_from(r, DataLocation::Flash) * data_operands;
                Some((r, dm, est.latency))
            })
            .min_by_key(|(_, dm, comp)| (*dm, *comp))
            .map(|(r, dm, _)| (r, dm))
    }

    /// [`CostFunction::choose_min_data_movement`] from per-strip hoisted
    /// estimates.
    pub fn choose_min_data_movement_from_strip(
        &self,
        op: OpType,
        strip: &StripEstimates,
        ctx: &PolicyContext<'_>,
    ) -> Option<(Resource, Duration)> {
        Resource::ALL
            .iter()
            .filter_map(|&r| {
                self.features_from_strip(r, op, strip, ctx)
                    .map(|f| (r, f.dm_latency, f.comp_latency))
            })
            .min_by_key(|(_, dm, comp)| (*dm, *comp))
            .map(|(r, dm, _)| (r, dm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_sim::SsdDevice;
    use conduit_types::{DataLocation, Operand, SimTime, SsdConfig};

    fn device() -> SsdDevice {
        SsdDevice::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn ctx<'a>(device: &'a SsdDevice, locs: &'a [DataLocation]) -> PolicyContext<'a> {
        PolicyContext {
            device,
            now: SimTime::ZERO,
            operand_locations: locs,
            dependence_delay: Duration::ZERO,
        }
    }

    fn xor_inst() -> VectorInst {
        VectorInst::binary(0, OpType::Xor, Operand::page(0), Operand::page(4))
    }

    fn mul_inst() -> VectorInst {
        VectorInst::binary(0, OpType::Mul, Operand::page(0), Operand::page(4))
    }

    #[test]
    fn unsupported_resources_are_skipped() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        let inst = VectorInst::binary(0, OpType::Div, Operand::page(0), Operand::page(4));
        let cf = CostFunction::conduit();
        assert!(cf.features_for(Resource::Ifp, &inst, &c).is_none());
        assert!(cf.features_for(Resource::PudSsd, &inst, &c).is_none());
        // Division can only go to the controller cores.
        let (r, _) = cf.choose(&inst, &c).unwrap();
        assert_eq!(r, Resource::Isp);
    }

    #[test]
    fn flash_resident_bitwise_prefers_ifp() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        let (r, _) = CostFunction::conduit().choose(&xor_inst(), &c).unwrap();
        assert_eq!(r, Resource::Ifp);
    }

    #[test]
    fn dram_resident_multiplication_avoids_ifp() {
        let dev = device();
        let locs = [DataLocation::Dram, DataLocation::Dram];
        let c = ctx(&dev, &locs);
        let (r, _) = CostFunction::conduit().choose(&mul_inst(), &c).unwrap();
        assert_ne!(r, Resource::Ifp);
    }

    #[test]
    fn queue_backlog_steers_away_from_a_busy_resource() {
        let mut dev = device();
        // Saturate the flash dies with long operations.
        for _ in 0..64 {
            dev.execute_ifp(OpType::Mul, 32, 4096, &[], SimTime::ZERO)
                .unwrap();
        }
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        let (r, _) = CostFunction::conduit().choose(&xor_inst(), &c).unwrap();
        assert_ne!(
            r,
            Resource::Ifp,
            "busy flash should push the choice elsewhere"
        );
    }

    #[test]
    fn ablation_switches_change_the_total() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        let full = CostFunction::conduit();
        let f = full
            .features_for(Resource::PudSsd, &xor_inst(), &c)
            .unwrap();
        let without_dm = CostFunction {
            include_data_movement: false,
            ..full
        };
        assert!(without_dm.total_latency(&f) < full.total_latency(&f));

        let mut f2 = f;
        f2.dependence_delay = Duration::from_us(5.0);
        f2.queue_delay = Duration::from_us(3.0);
        let sum_combine = CostFunction {
            combine_with_max: false,
            ..full
        };
        assert_eq!(
            sum_combine.total_latency(&f2) - full.total_latency(&f2),
            Duration::from_us(3.0)
        );
    }

    #[test]
    fn ideal_choice_ignores_data_location() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        let cf = CostFunction::conduit();
        // For a bitwise op the fastest raw compute is DRAM (no sensing), so
        // Ideal picks PuD even though the data is in flash.
        let (ideal, _) = cf.choose_ideal(&xor_inst(), &c).unwrap();
        assert_eq!(ideal, Resource::PudSsd);
        // DM-offloading picks flash because the operands already live there.
        let (dm, _) = cf.choose_min_data_movement(&xor_inst(), &c).unwrap();
        assert_eq!(dm, Resource::Ifp);
    }
}
