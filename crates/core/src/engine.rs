//! The runtime offloading engine.
//!
//! Executes a [`VectorProgram`] on a simulated [`SsdDevice`] under an
//! offloading [`Policy`], reproducing the runtime stage of the paper
//! (§4.3.2): per instruction it collects the cost-function features, lets
//! the policy pick an execution site, charges the offloader overheads,
//! stages the operands at that site (respecting the lazy coherence
//! protocol), executes the computation on the contended resource timelines,
//! and records the result's new location.
//!
//! The engine itself is **stateless across runs**: it owns only the models
//! derived from the configuration (offloader overheads, the instruction
//! transformer, the host CPU/GPU rooflines) and *borrows* the device it
//! executes on. Callers decide the device's lifetime — a fresh
//! [`SsdDevice`] per run reproduces independent, bit-identical experiments,
//! while threading one device (its [`conduit_sim::DeviceState`]) through a
//! stream of runs models a warm, aging SSD.

use std::sync::{Mutex, OnceLock};

use conduit_sim::{CostBreakdown, HostCpuModel, HostGpuModel, OpCompletion, SsdDevice};
use conduit_types::{
    ConduitError, DataLocation, Duration, Energy, ExecutionSite, HostConfig, LogicalPageId,
    Operand, Resource, Result, SimTime, SsdConfig, VectorInst, VectorProgram, PAGE_BYTES,
};

use crate::batch::{Strip, StripPlan};
use crate::cost::CostFunction;
use crate::overhead::OverheadModel;
use crate::policy::{Policy, PolicyContext};
use crate::report::{EnergySummary, OffloadMix, OverheadReport, RunReport, TimelineEntry};
use crate::transform::InstructionTransformer;

/// Whether the `CONDUIT_SCALAR` environment variable forces the scalar
/// (pre-batching) run loop. Read once per process: set it to a non-empty
/// value other than `0` before the first run.
fn env_forces_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("CONDUIT_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Options controlling one run of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// The offloading policy to use.
    pub policy: Policy,
    /// The cost function (with ablation switches) used by the Conduit
    /// policy.
    pub cost_function: CostFunction,
    /// Whether to charge the offloader's per-instruction overheads (§4.5).
    pub charge_overheads: bool,
    /// Whether to record the full instruction → resource timeline
    /// (Figure 10). Disable for very large programs to save memory.
    pub record_timeline: bool,
    /// The simulation time at which the run starts issuing instructions.
    /// Fresh runs start at [`SimTime::ZERO`]; a warm device's stream clock
    /// issues each request at its predecessor's finish time, so the
    /// reported `total_time` covers only this run's own service (any
    /// residual contention — e.g. a garbage-collection tail still occupying
    /// a die — shows up as queueing on the resource timelines, not as a
    /// flat offset).
    pub start: SimTime,
    /// Forces the pre-batching scalar run loop (the reference
    /// implementation the batched path is asserted bit-identical against).
    /// Also switchable process-wide via the `CONDUIT_SCALAR` environment
    /// variable.
    pub force_scalar: bool,
}

impl RunOptions {
    /// Default options for a policy.
    pub fn new(policy: Policy) -> Self {
        RunOptions {
            policy,
            cost_function: CostFunction::conduit(),
            charge_overheads: true,
            record_timeline: true,
            start: SimTime::ZERO,
            force_scalar: false,
        }
    }

    /// Builder-style: issues the run's first instruction at `start` on the
    /// device's timeline instead of time zero (the warm-device stream
    /// clock).
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Builder-style: replaces the cost function (for ablations).
    pub fn cost_function(mut self, cf: CostFunction) -> Self {
        self.cost_function = cf;
        self
    }

    /// Builder-style: disables the offloader overhead charges.
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// Builder-style: disables timeline recording.
    pub fn without_timeline(mut self) -> Self {
        self.record_timeline = false;
        self
    }

    /// Builder-style: forces the scalar run loop for this run.
    pub fn scalar(mut self) -> Self {
        self.force_scalar = true;
        self
    }
}

/// Struct-of-arrays per-run bookkeeping, owned by the engine and reused
/// across runs and repeats so the batched hot path performs no heap
/// allocation. Columns are keyed by instruction index; the timeline
/// `Vec<TimelineEntry>` is materialized from the columns only when
/// [`RunOptions::record_timeline`] is set.
#[derive(Debug, Default)]
struct RunScratch {
    /// Where each instruction's result currently lives.
    result_site: Vec<DataLocation>,
    /// When each instruction's result becomes available.
    result_ready: Vec<SimTime>,
    /// The execution site each instruction was placed on.
    placed: Vec<ExecutionSite>,
    /// Dispatch (issue) time per instruction.
    issued: Vec<SimTime>,
    /// Completion time per instruction.
    finished: Vec<SimTime>,
    /// Per-instruction operand staging scratch.
    operand_locations: Vec<DataLocation>,
    operand_first_pages: Vec<LogicalPageId>,
    /// Inline strip-plan buffer (used when no cached plan applies).
    strips: Vec<Strip>,
}

impl RunScratch {
    fn reset(&mut self, n: usize, start: SimTime) {
        self.result_site.clear();
        self.result_site.resize(n, DataLocation::Flash);
        self.result_ready.clear();
        self.result_ready.resize(n, start);
        self.placed.clear();
        self.placed.resize(n, ExecutionSite::HostCpu);
        self.issued.clear();
        self.issued.resize(n, start);
        self.finished.clear();
        self.finished.resize(n, start);
        self.operand_locations.clear();
        self.operand_first_pages.clear();
    }
}

/// The runtime offloading engine: the host models and the offloader's own
/// bookkeeping. Stateless across runs — the device is borrowed per call
/// ([`RuntimeEngine::prepare`], [`RuntimeEngine::run`]); the only mutable
/// state is a pool of reusable [`RunScratch`] arenas, which never affects
/// results.
#[derive(Debug)]
pub struct RuntimeEngine {
    overhead: OverheadModel,
    transformer: InstructionTransformer,
    host_cpu: HostCpuModel,
    host_gpu: HostGpuModel,
    l2p_miss_period: u64,
    /// Reusable run arenas: popped at run start, pushed back at run end.
    /// A pool (not a single slot) because parallel lanes share one cloned
    /// engine per batch task and must not serialize on the scratch.
    scratch: Mutex<Vec<RunScratch>>,
}

impl Clone for RuntimeEngine {
    /// Clones the models; the clone starts with an empty scratch pool
    /// (arenas are a reuse cache, not state).
    fn clone(&self) -> Self {
        RuntimeEngine {
            overhead: self.overhead.clone(),
            transformer: self.transformer.clone(),
            host_cpu: self.host_cpu.clone(),
            host_gpu: self.host_gpu.clone(),
            l2p_miss_period: self.l2p_miss_period,
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl RuntimeEngine {
    /// Builds an engine with the default host configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        Self::with_host(cfg, &HostConfig::default())
    }

    /// Builds an engine with an explicit host configuration.
    pub fn with_host(cfg: &SsdConfig, host: &HostConfig) -> Self {
        let miss_rate = (1.0 - cfg.l2p_cache_hit_rate).max(0.0);
        let l2p_miss_period = if miss_rate <= f64::EPSILON {
            0
        } else {
            (1.0 / miss_rate).round() as u64
        };
        RuntimeEngine {
            overhead: OverheadModel::new(cfg),
            transformer: InstructionTransformer::new(cfg),
            host_cpu: HostCpuModel::new(&host.cpu),
            host_gpu: HostGpuModel::new(&host.gpu),
            l2p_miss_period,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The instruction transformation unit.
    pub fn transformer(&self) -> &InstructionTransformer {
        &self.transformer
    }

    /// The overhead model.
    pub fn overhead_model(&self) -> &OverheadModel {
        &self.overhead
    }

    /// Places the program's data in the SSD before execution: operand groups
    /// of in-flash-capable instructions are co-located in the same flash
    /// block (the Flash-Cosmos layout constraint), everything else is striped
    /// across planes for parallelism. All application data resides in the SSD
    /// at the start of execution (§4.4). Pages a warm device has already
    /// mapped keep their existing placement, so re-preparing the same
    /// program on a warm device is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates FTL allocation errors.
    pub fn prepare(&self, device: &mut SsdDevice, program: &VectorProgram) -> Result<()> {
        program.validate().map_err(ConduitError::invalid_program)?;
        for inst in program.iter() {
            let span = Self::pages_per_vector(inst);
            let page_srcs: Vec<LogicalPageId> = inst.src_pages().collect();
            if conduit_types::Resource::Ifp.supports(inst.op) && page_srcs.len() >= 2 {
                // Co-locate slice k of every operand in one block; spread the
                // slices across planes for multi-plane parallelism.
                for k in 0..span {
                    let group: Vec<LogicalPageId> = page_srcs.iter().map(|p| p.offset(k)).collect();
                    device.map_group(&group, Some(k))?;
                }
            } else {
                for p in &page_srcs {
                    let pages: Vec<LogicalPageId> = (0..span).map(|k| p.offset(k)).collect();
                    device.map_pages(&pages, None)?;
                }
            }
            if let Some(dst) = inst.dst_page {
                let pages: Vec<LogicalPageId> = (0..span).map(|k| dst.offset(k)).collect();
                device.map_pages(&pages, None)?;
            }
        }
        Ok(())
    }

    /// Executes `program` under `options` on the borrowed `device` and
    /// returns the run report.
    ///
    /// Dispatches to the batched strip-mined loop (planning the program
    /// inline) unless [`RunOptions::force_scalar`] or the `CONDUIT_SCALAR`
    /// environment variable forces the scalar reference loop. Both paths
    /// produce bit-identical reports.
    ///
    /// # Errors
    ///
    /// Returns validation errors for malformed programs and simulation errors
    /// for device-level failures.
    pub fn run(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
    ) -> Result<RunReport> {
        self.run_with_plan(device, program, options, None)
    }

    /// [`RuntimeEngine::run`] with an optional precomputed [`StripPlan`]
    /// (the session's plan cache). A plan computed for different options is
    /// ignored; the program is then strip-mined inline into the engine's
    /// reusable scratch (planning is O(n)).
    ///
    /// # Errors
    ///
    /// Returns validation errors for malformed programs and simulation errors
    /// for device-level failures.
    pub fn run_with_plan(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
        plan: Option<&StripPlan>,
    ) -> Result<RunReport> {
        if program.is_empty() {
            return Err(ConduitError::invalid_program("program has no instructions"));
        }
        program.validate().map_err(ConduitError::invalid_program)?;
        if options.force_scalar || env_forces_scalar() {
            return self.run_scalar(device, program, options);
        }
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let result = self.run_batched(device, program, options, plan, &mut scratch);
        self.scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
        result
    }

    /// The pre-batching per-instruction loop, kept verbatim as the reference
    /// implementation the batched path is differentially tested against
    /// (`CONDUIT_SCALAR=1`, [`RunOptions::scalar`]).
    fn run_scalar(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
    ) -> Result<RunReport> {
        let policy = options.policy;
        let n = program.len();
        let mut result_site: Vec<DataLocation> = vec![DataLocation::Flash; n];
        let mut result_ready: Vec<SimTime> = vec![options.start; n];
        let mut offload_clock = options.start;
        let mut host_clock = options.start;
        let mut finish = options.start;

        let mut energy = EnergySummary::default();
        let mut breakdown = CostBreakdown::zero();
        let mut mix = OffloadMix::default();
        let mut latency = conduit_sim::LatencyStats::new();
        let mut timeline = Vec::with_capacity(if options.record_timeline { n } else { 0 });
        let mut overhead_report = OverheadReport::default();
        let mut lookups: u64 = 0;
        // Scratch buffers reused across instructions so the per-instruction
        // loop performs no heap allocation.
        let mut operand_locations: Vec<DataLocation> = Vec::with_capacity(4);
        let mut operand_first_pages: Vec<LogicalPageId> = Vec::with_capacity(4);

        for inst in program.iter() {
            let issue = if policy.is_host() {
                host_clock
            } else {
                offload_clock
            };

            // Gather operand locations and the data-dependence delay.
            operand_locations.clear();
            let mut dep_ready = issue;
            for src in &inst.srcs {
                match src {
                    Operand::Page(p) => operand_locations.push(device.locate(*p)),
                    Operand::Result(id) => {
                        operand_locations.push(result_site[id.index()]);
                        dep_ready = dep_ready.max(result_ready[id.index()]);
                    }
                    Operand::Immediate(_) => {}
                }
            }
            let dependence_delay = dep_ready.saturating_since(issue);

            let site = {
                let ctx = PolicyContext {
                    device: &*device,
                    now: issue,
                    operand_locations: &operand_locations,
                    dependence_delay,
                };
                if policy == Policy::Conduit {
                    // Honour the (possibly ablated) cost function from the
                    // options rather than the default one.
                    options
                        .cost_function
                        .choose(inst, &ctx)
                        .map(|(r, _)| ExecutionSite::Ssd(r))
                        .unwrap_or(ExecutionSite::Ssd(conduit_types::Resource::Isp))
                } else {
                    policy.choose_site(inst, &ctx)
                }
            };
            mix.record(site);

            // The unrealizable Ideal policy: no overhead, no data movement,
            // no contention — just the fastest compute latency.
            if policy.is_contention_free() {
                let resource = site.resource().expect("ideal stays inside the SSD");
                let comp_latency = device
                    .estimate_compute(resource, inst.op, inst.elem_bits, inst.lanes)
                    .unwrap_or(Duration::ZERO);
                let comp_energy = device
                    .estimate_compute_energy(resource, inst.op, inst.elem_bits, inst.lanes)
                    .unwrap_or(Energy::ZERO);
                let start = issue.max(dep_ready);
                let end = start + comp_latency;
                energy.compute += comp_energy;
                breakdown.compute += comp_latency;
                result_site[inst.id.index()] = resource.home_location();
                result_ready[inst.id.index()] = end;
                finish = finish.max(end);
                latency.record(end.saturating_since(issue));
                if options.record_timeline {
                    timeline.push(TimelineEntry {
                        inst: inst.id,
                        op: inst.op,
                        site,
                        dispatched: issue,
                        completed: end,
                    });
                }
                continue;
            }

            // Offloader overhead (feature collection + transformation). The
            // offloader core pipelines feature collection for the next
            // instruction with the table lookups of the current one, so only
            // the translation-table lookup occupies the core exclusively;
            // the full overhead is still added to the instruction's dispatch
            // latency (§4.5).
            let mut dispatched = issue;
            if options.charge_overheads && policy.pays_offloader_overhead() {
                lookups += 1;
                let miss = self.l2p_miss_period > 0 && lookups.is_multiple_of(self.l2p_miss_period);
                let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                let ov = self.overhead.per_instruction(operands, miss);
                overhead_report.record(ov);
                let exclusive = self.overhead.transformation();
                let oc = device.offloader_busy(exclusive, issue);
                energy.compute += oc.energy;
                breakdown.accumulate(oc.breakdown);
                offload_clock = oc.ready;
                dispatched = oc.ready + ov.saturating_sub(exclusive);
            }

            let dest = match site {
                ExecutionSite::HostCpu | ExecutionSite::HostGpu => DataLocation::Host,
                ExecutionSite::Ssd(r) => r.home_location(),
            };

            // Stage the operands at the execution site.
            let span = Self::pages_per_vector(inst);
            let mut data_ready = dispatched.max(dep_ready);
            let movement_earliest = data_ready;
            operand_first_pages.clear();
            for src in &inst.srcs {
                match src {
                    Operand::Page(p) => {
                        operand_first_pages.push(*p);
                        for k in 0..span {
                            let c = device.ensure_at(p.offset(k), dest, movement_earliest)?;
                            data_ready = data_ready.max(c.ready);
                            energy.data_movement += c.energy;
                            breakdown.accumulate(c.breakdown);
                        }
                    }
                    Operand::Result(id) => {
                        let from = result_site[id.index()];
                        if from != dest {
                            let c = device.transfer_value(
                                from,
                                dest,
                                inst.vector_bytes(),
                                movement_earliest,
                            );
                            data_ready = data_ready.max(c.ready);
                            energy.data_movement += c.energy;
                            breakdown.accumulate(c.breakdown);
                            result_site[id.index()] = dest;
                        }
                    }
                    Operand::Immediate(_) => {}
                }
            }

            // Execute.
            let comp = match site {
                ExecutionSite::Ssd(resource) => device.execute(
                    resource,
                    inst.op,
                    inst.elem_bits,
                    inst.lanes,
                    &operand_first_pages,
                    data_ready,
                )?,
                ExecutionSite::HostCpu => {
                    let t = self
                        .host_cpu
                        .compute_time(inst.op, inst.elem_bits, inst.lanes);
                    let start = data_ready.max(host_clock);
                    let end = start + t;
                    host_clock = end;
                    OpCompletion {
                        ready: end,
                        breakdown: CostBreakdown {
                            compute: t,
                            ..CostBreakdown::zero()
                        },
                        energy: self.host_cpu.energy(t),
                    }
                }
                ExecutionSite::HostGpu => {
                    let t = self
                        .host_gpu
                        .compute_time(inst.op, inst.elem_bits, inst.lanes);
                    let start = data_ready.max(host_clock);
                    let end = start + t;
                    host_clock = end;
                    OpCompletion {
                        ready: end,
                        breakdown: CostBreakdown {
                            compute: t,
                            ..CostBreakdown::zero()
                        },
                        energy: self.host_gpu.energy(t),
                    }
                }
            };
            energy.compute += comp.energy;
            breakdown.accumulate(comp.breakdown);

            result_site[inst.id.index()] = dest;
            result_ready[inst.id.index()] = comp.ready;
            let mut done = comp.ready;

            // Commit stored results (lazily, via the coherence directory).
            if let Some(dst) = inst.dst_page {
                for k in 0..span {
                    let page = dst.offset(k);
                    if dest == DataLocation::Host {
                        // OSP results return over the host link into the
                        // SSD's write cache; the host keeps its own copy, so
                        // later host-side reads of this page stay local.
                        let link = device.host_transfer(PAGE_BYTES, false, comp.ready);
                        energy.data_movement += link.energy;
                        breakdown.accumulate(link.breakdown);
                        let wb =
                            device.record_result_write(page, DataLocation::Host, link.ready)?;
                        done = done.max(wb.ready);
                        energy.data_movement += wb.energy;
                        breakdown.accumulate(wb.breakdown);
                    } else {
                        let wb = device.record_result_write(page, dest, comp.ready)?;
                        done = done.max(wb.ready);
                        energy.data_movement += wb.energy;
                        breakdown.accumulate(wb.breakdown);
                    }
                }
            }

            finish = finish.max(done);
            latency.record(done.saturating_since(issue));
            if options.record_timeline {
                timeline.push(TimelineEntry {
                    inst: inst.id,
                    op: inst.op,
                    site,
                    dispatched: issue,
                    completed: done,
                });
            }
        }

        Ok(RunReport {
            workload: program.name().to_string(),
            policy,
            instructions: n,
            total_time: finish.saturating_since(options.start),
            energy,
            breakdown,
            offload_mix: mix,
            latency,
            timeline,
            overhead: overhead_report,
        })
    }

    /// The batched strip-mined run loop. Per strip of homogeneous
    /// instructions it hoists the per-resource estimate lookups into one
    /// [`conduit_sim::StripEstimates`] and the offloader-core occupancy into
    /// one reservation window; per instruction it performs exactly the same
    /// device operations (staging, execution, commit) in exactly the same
    /// order as [`RuntimeEngine::run_scalar`], so reports, timelines and
    /// end-of-run device state are bit-identical. Bookkeeping lives in the
    /// reusable struct-of-arrays `scratch`, and the timeline is materialized
    /// from the columns only when requested.
    fn run_batched(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
        plan: Option<&StripPlan>,
        scratch: &mut RunScratch,
    ) -> Result<RunReport> {
        let policy = options.policy;
        let n = program.len();
        scratch.reset(n, options.start);
        let RunScratch {
            result_site,
            result_ready,
            placed,
            issued,
            finished,
            operand_locations,
            operand_first_pages,
            strips: strip_buf,
        } = scratch;
        let strips: &[Strip] = match plan {
            Some(p) if p.matches(options) => p.strips(),
            _ => {
                StripPlan::plan_into(program, policy, strip_buf);
                strip_buf
            }
        };

        let mut offload_clock = options.start;
        let mut host_clock = options.start;
        let mut finish = options.start;

        let mut energy = EnergySummary::default();
        let mut breakdown = CostBreakdown::zero();
        let mut mix = OffloadMix::default();
        let mut latency = conduit_sim::LatencyStats::new();
        let mut overhead_report = OverheadReport::default();
        let mut lookups: u64 = 0;
        let exclusive = self.overhead.transformation();
        let insts = program.insts();

        for strip in strips {
            let first = &insts[strip.start];
            // One table walk per strip: per-resource compute estimates and
            // per-location static-move latencies at the strip's shape.
            let se =
                device.estimate_strip(first.op, first.elem_bits, first.lanes, first.vector_bytes());

            // The unrealizable Ideal policy: its placement depends only on
            // the hoisted compute estimates, so the whole strip resolves to
            // one resource up front.
            if policy.is_contention_free() {
                let resource = CostFunction::conduit()
                    .choose_ideal_from_strip(&se)
                    .map(|(r, _)| r)
                    .unwrap_or(Resource::Isp);
                let site = ExecutionSite::Ssd(resource);
                let est = se.compute_for(resource);
                let comp_latency = est.map(|e| e.latency).unwrap_or(Duration::ZERO);
                let comp_energy = est.map(|e| e.energy).unwrap_or(Energy::ZERO);
                for i in 0..strip.len {
                    let inst = &insts[strip.start + i];
                    let issue = offload_clock;
                    let mut dep_ready = issue;
                    for src in &inst.srcs {
                        if let Operand::Result(id) = src {
                            dep_ready = dep_ready.max(result_ready[id.index()]);
                        }
                    }
                    mix.record(site);
                    let start = issue.max(dep_ready);
                    let end = start + comp_latency;
                    energy.compute += comp_energy;
                    breakdown.compute += comp_latency;
                    result_site[inst.id.index()] = resource.home_location();
                    result_ready[inst.id.index()] = end;
                    finish = finish.max(end);
                    latency.record(end.saturating_since(issue));
                    let idx = strip.start + i;
                    placed[idx] = site;
                    issued[idx] = issue;
                    finished[idx] = end;
                }
                continue;
            }

            // One offloader-core reservation for the whole strip (exact:
            // each instruction's exclusive window starts where the previous
            // one ended, which is precisely how the scalar loop chains its
            // offload clock through `offloader_busy`).
            let window = if options.charge_overheads && policy.pays_offloader_overhead() {
                Some(device.offloader_busy_strip(exclusive, offload_clock, strip.len as u64))
            } else {
                None
            };

            for i in 0..strip.len {
                let inst = &insts[strip.start + i];
                let issue = if policy.is_host() {
                    host_clock
                } else {
                    offload_clock
                };

                // Gather operand locations and the data-dependence delay.
                operand_locations.clear();
                let mut dep_ready = issue;
                for src in &inst.srcs {
                    match src {
                        Operand::Page(p) => operand_locations.push(device.locate(*p)),
                        Operand::Result(id) => {
                            operand_locations.push(result_site[id.index()]);
                            dep_ready = dep_ready.max(result_ready[id.index()]);
                        }
                        Operand::Immediate(_) => {}
                    }
                }
                let dependence_delay = dep_ready.saturating_since(issue);

                let site = match strip.site {
                    // Statically planned placement (pure function of the op).
                    Some(site) => site,
                    // Runtime-state-dependent placement, evaluated per
                    // instruction from the hoisted strip estimates.
                    None => {
                        let ctx = PolicyContext {
                            device: &*device,
                            now: issue,
                            operand_locations,
                            dependence_delay,
                        };
                        match policy {
                            Policy::Conduit => options
                                .cost_function
                                .choose_from_strip(inst.op, &se, &ctx)
                                .map(|(r, _)| ExecutionSite::Ssd(r))
                                .unwrap_or(ExecutionSite::Ssd(Resource::Isp)),
                            Policy::DmOffloading => CostFunction::conduit()
                                .choose_min_data_movement_from_strip(inst.op, &se, &ctx)
                                .map(|(r, _)| ExecutionSite::Ssd(r))
                                .unwrap_or(ExecutionSite::Ssd(Resource::Isp)),
                            // BW-Offloading reads per-instruction
                            // utilization; no estimate to hoist.
                            _ => policy.choose_site(inst, &ctx),
                        }
                    }
                };
                mix.record(site);

                // Offloader overhead: the strip's reservation already put
                // this instruction's exclusive window on the core; charge
                // the per-instruction accounting in scalar order.
                let mut dispatched = issue;
                if let Some(w) = &window {
                    lookups += 1;
                    let miss =
                        self.l2p_miss_period > 0 && lookups.is_multiple_of(self.l2p_miss_period);
                    let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                    let ov = self.overhead.per_instruction(operands, miss);
                    overhead_report.record(ov);
                    energy.compute += w.energy_each;
                    breakdown.compute += w.step;
                    let ready = w.first_ready + w.step * (i as u64);
                    offload_clock = ready;
                    dispatched = ready + ov.saturating_sub(exclusive);
                }

                let dest = match site {
                    ExecutionSite::HostCpu | ExecutionSite::HostGpu => DataLocation::Host,
                    ExecutionSite::Ssd(r) => r.home_location(),
                };

                // Stage the operands at the execution site.
                let span = Self::pages_per_vector(inst);
                let mut data_ready = dispatched.max(dep_ready);
                let movement_earliest = data_ready;
                operand_first_pages.clear();
                for src in &inst.srcs {
                    match src {
                        Operand::Page(p) => {
                            operand_first_pages.push(*p);
                            for k in 0..span {
                                let c = device.ensure_at(p.offset(k), dest, movement_earliest)?;
                                data_ready = data_ready.max(c.ready);
                                energy.data_movement += c.energy;
                                breakdown.accumulate(c.breakdown);
                            }
                        }
                        Operand::Result(id) => {
                            let from = result_site[id.index()];
                            if from != dest {
                                let c = device.transfer_value(
                                    from,
                                    dest,
                                    inst.vector_bytes(),
                                    movement_earliest,
                                );
                                data_ready = data_ready.max(c.ready);
                                energy.data_movement += c.energy;
                                breakdown.accumulate(c.breakdown);
                                result_site[id.index()] = dest;
                            }
                        }
                        Operand::Immediate(_) => {}
                    }
                }

                // Execute.
                let comp = match site {
                    ExecutionSite::Ssd(resource) => device.execute(
                        resource,
                        inst.op,
                        inst.elem_bits,
                        inst.lanes,
                        operand_first_pages,
                        data_ready,
                    )?,
                    ExecutionSite::HostCpu => {
                        let t = self
                            .host_cpu
                            .compute_time(inst.op, inst.elem_bits, inst.lanes);
                        let start = data_ready.max(host_clock);
                        let end = start + t;
                        host_clock = end;
                        OpCompletion {
                            ready: end,
                            breakdown: CostBreakdown {
                                compute: t,
                                ..CostBreakdown::zero()
                            },
                            energy: self.host_cpu.energy(t),
                        }
                    }
                    ExecutionSite::HostGpu => {
                        let t = self
                            .host_gpu
                            .compute_time(inst.op, inst.elem_bits, inst.lanes);
                        let start = data_ready.max(host_clock);
                        let end = start + t;
                        host_clock = end;
                        OpCompletion {
                            ready: end,
                            breakdown: CostBreakdown {
                                compute: t,
                                ..CostBreakdown::zero()
                            },
                            energy: self.host_gpu.energy(t),
                        }
                    }
                };
                energy.compute += comp.energy;
                breakdown.accumulate(comp.breakdown);

                result_site[inst.id.index()] = dest;
                result_ready[inst.id.index()] = comp.ready;
                let mut done = comp.ready;

                // Commit stored results (lazily, via the coherence
                // directory).
                if let Some(dst) = inst.dst_page {
                    for k in 0..span {
                        let page = dst.offset(k);
                        if dest == DataLocation::Host {
                            let link = device.host_transfer(PAGE_BYTES, false, comp.ready);
                            energy.data_movement += link.energy;
                            breakdown.accumulate(link.breakdown);
                            let wb =
                                device.record_result_write(page, DataLocation::Host, link.ready)?;
                            done = done.max(wb.ready);
                            energy.data_movement += wb.energy;
                            breakdown.accumulate(wb.breakdown);
                        } else {
                            let wb = device.record_result_write(page, dest, comp.ready)?;
                            done = done.max(wb.ready);
                            energy.data_movement += wb.energy;
                            breakdown.accumulate(wb.breakdown);
                        }
                    }
                }

                finish = finish.max(done);
                latency.record(done.saturating_since(issue));
                let idx = strip.start + i;
                placed[idx] = site;
                issued[idx] = issue;
                finished[idx] = done;
            }
        }

        // Materialize the timeline from the scratch columns on demand.
        let timeline = if options.record_timeline {
            insts
                .iter()
                .enumerate()
                .map(|(i, inst)| TimelineEntry {
                    inst: inst.id,
                    op: inst.op,
                    site: placed[i],
                    dispatched: issued[i],
                    completed: finished[i],
                })
                .collect()
        } else {
            Vec::new()
        };

        Ok(RunReport {
            workload: program.name().to_string(),
            policy,
            instructions: n,
            total_time: finish.saturating_since(options.start),
            energy,
            breakdown,
            offload_mix: mix,
            latency,
            timeline,
            overhead: overhead_report,
        })
    }

    fn pages_per_vector(inst: &VectorInst) -> u64 {
        inst.vector_bytes().div_ceil(PAGE_BYTES).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::OpType;

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("unit");
        let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        let y = prog.push_binary(OpType::Add, Operand::result(x), Operand::page(8));
        prog.push(
            conduit_types::VectorInst::binary(
                2,
                OpType::Mul,
                Operand::result(y),
                Operand::page(12),
            )
            .store_to(LogicalPageId::new(16)),
        );
        prog
    }

    fn engine() -> (RuntimeEngine, SsdDevice) {
        let cfg = SsdConfig::small_for_tests();
        (
            RuntimeEngine::new(&cfg),
            SsdDevice::new(&cfg).expect("test config is valid"),
        )
    }

    #[test]
    fn empty_program_is_rejected() {
        let (e, mut dev) = engine();
        let prog = VectorProgram::new("empty");
        assert!(e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .is_err());
    }

    #[test]
    fn run_produces_consistent_report() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        assert_eq!(report.instructions, 3);
        assert_eq!(report.offload_mix.total(), 3);
        assert_eq!(report.timeline.len(), 3);
        assert_eq!(report.latency.len(), 3);
        assert!(report.total_time > Duration::ZERO);
        assert!(report.energy.total() > Energy::ZERO);
        assert!(report.overhead.count >= 3);
        assert!(report.overhead.mean() > Duration::from_us(1.0));
        // The timeline is causally ordered per instruction.
        for t in &report.timeline {
            assert!(t.completed >= t.dispatched);
        }
    }

    #[test]
    fn dependences_serialize_completion_times() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let t = &report.timeline;
        assert!(t[1].completed > t[0].dispatched);
        assert!(t[2].completed >= t[1].completed);
        assert_eq!(
            report.total_time.as_ps(),
            t[2].completed.as_ps().max(t[1].completed.as_ps())
        );
    }

    #[test]
    fn ideal_is_faster_than_every_realizable_policy() {
        let prog = program();
        let mut reports = Vec::new();
        for policy in [
            Policy::Ideal,
            Policy::Conduit,
            Policy::IspOnly,
            Policy::HostCpu,
        ] {
            let (e, mut dev) = engine();
            e.prepare(&mut dev, &prog).unwrap();
            reports.push(e.run(&mut dev, &prog, &RunOptions::new(policy)).unwrap());
        }
        let ideal = &reports[0];
        for other in &reports[1..] {
            assert!(
                ideal.total_time <= other.total_time,
                "Ideal ({}) must not be slower than {} ({})",
                ideal.total_time,
                other.policy,
                other.total_time
            );
        }
    }

    #[test]
    fn overheads_can_be_disabled() {
        let prog = program();
        let (e1, mut dev1) = engine();
        e1.prepare(&mut dev1, &prog).unwrap();
        let with = e1
            .run(&mut dev1, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let (e2, mut dev2) = engine();
        e2.prepare(&mut dev2, &prog).unwrap();
        let without = e2
            .run(
                &mut dev2,
                &prog,
                &RunOptions::new(Policy::Conduit).without_overheads(),
            )
            .unwrap();
        assert_eq!(without.overhead.count, 0);
        assert!(without.total_time <= with.total_time);
    }

    #[test]
    fn host_policy_pays_pcie_data_movement() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::HostCpu))
            .unwrap();
        assert_eq!(report.offload_mix.host, 3);
        assert!(report.breakdown.host_data_movement > Duration::ZERO);
        assert!(report.energy.data_movement > Energy::ZERO);
    }

    #[test]
    fn timeline_recording_can_be_disabled() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(
                &mut dev,
                &prog,
                &RunOptions::new(Policy::Conduit).without_timeline(),
            )
            .unwrap();
        assert!(report.timeline.is_empty());
        assert_eq!(report.instructions, 3);
    }

    #[test]
    fn prepare_colocates_ifp_capable_operand_groups() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        // The XOR's operands (pages 0 and 4) must share a block.
        let a = dev.ftl().peek(LogicalPageId::new(0)).unwrap();
        let b = dev.ftl().peek(LogicalPageId::new(4)).unwrap();
        assert!(a.same_block(b));
    }

    #[test]
    fn start_time_shifts_a_fresh_run_without_changing_its_service_time() {
        let prog = program();
        let (e1, mut dev1) = engine();
        e1.prepare(&mut dev1, &prog).unwrap();
        let base = e1
            .run(&mut dev1, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let (e2, mut dev2) = engine();
        e2.prepare(&mut dev2, &prog).unwrap();
        let start = SimTime::ZERO + Duration::from_us(500.0);
        let shifted = e2
            .run(
                &mut dev2,
                &prog,
                &RunOptions::new(Policy::Conduit).starting_at(start),
            )
            .unwrap();
        // On an idle device the start time is a pure translation: service
        // time, energy and placement are unchanged; only absolute timeline
        // stamps move.
        assert_eq!(shifted.total_time, base.total_time);
        assert_eq!(shifted.energy, base.energy);
        assert_eq!(shifted.offload_mix, base.offload_mix);
        assert!(shifted.timeline[0].dispatched >= start);
        assert_eq!(
            shifted.timeline[0].dispatched.saturating_since(start),
            base.timeline[0].dispatched.saturating_since(SimTime::ZERO)
        );
    }

    #[test]
    fn warm_device_reruns_continue_where_the_last_run_left_off() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let first = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let ops_after_first = dev.snapshot().device_ops;
        // Same borrowed device again: timelines and FTL state carry over, so
        // cumulative counters keep growing (a fresh device would reset).
        e.prepare(&mut dev, &prog).unwrap();
        let _second = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        assert!(dev.snapshot().device_ops > ops_after_first);
        assert!(first.total_time > Duration::ZERO);
    }
}
