//! The runtime offloading engine.
//!
//! Executes a [`VectorProgram`] on a simulated [`SsdDevice`] under an
//! offloading [`Policy`], reproducing the runtime stage of the paper
//! (§4.3.2): per instruction it collects the cost-function features, lets
//! the policy pick an execution site, charges the offloader overheads,
//! stages the operands at that site (respecting the lazy coherence
//! protocol), executes the computation on the contended resource timelines,
//! and records the result's new location.
//!
//! The engine itself is **stateless across runs**: it owns only the models
//! derived from the configuration (offloader overheads, the instruction
//! transformer, the host CPU/GPU rooflines) and *borrows* the device it
//! executes on. Callers decide the device's lifetime — a fresh
//! [`SsdDevice`] per run reproduces independent, bit-identical experiments,
//! while threading one device (its [`conduit_sim::DeviceState`]) through a
//! stream of runs models a warm, aging SSD.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use conduit_sim::{
    CostBreakdown, DeviceModels, HostCpuModel, HostGpuModel, OpCompletion, SsdDevice,
    StripEstimates,
};
use conduit_types::{
    ConduitError, DataLocation, Duration, Energy, ExecutionSite, HostConfig, LogicalPageId,
    Operand, Resource, Result, SimTime, SsdConfig, VectorInst, VectorProgram, PAGE_BYTES,
};

use crate::batch::{Strip, StripPlan};
use crate::cost::CostFunction;
use crate::overhead::OverheadModel;
use crate::policy::{Policy, PolicyContext};
use crate::pool::ThreadPool;
use crate::report::{
    EnergySummary, OffloadMix, OverheadReport, ParallelismStats, RunReport, TimelineEntry,
};
use crate::transform::InstructionTransformer;

/// Whether the `CONDUIT_SCALAR` environment variable forces the scalar
/// (pre-batching) run loop. Read once per process: set it to a non-empty
/// value other than `0` before the first run.
fn env_forces_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("CONDUIT_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether the `CONDUIT_SEQ_STRIPS` environment variable forces strips to
/// evaluate sequentially on the committing thread (the PR-8 batched path),
/// disabling worker-thread strip evaluation. The escape hatch mirroring
/// `CONDUIT_SCALAR`, one level up: results are bit-identical either way.
/// Read once per process.
fn env_forces_seq_strips() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("CONDUIT_SEQ_STRIPS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Options controlling one run of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// The offloading policy to use.
    pub policy: Policy,
    /// The cost function (with ablation switches) used by the Conduit
    /// policy.
    pub cost_function: CostFunction,
    /// Whether to charge the offloader's per-instruction overheads (§4.5).
    pub charge_overheads: bool,
    /// Whether to record the full instruction → resource timeline
    /// (Figure 10). Disable for very large programs to save memory.
    pub record_timeline: bool,
    /// The simulation time at which the run starts issuing instructions.
    /// Fresh runs start at [`SimTime::ZERO`]; a warm device's stream clock
    /// issues each request at its predecessor's finish time, so the
    /// reported `total_time` covers only this run's own service (any
    /// residual contention — e.g. a garbage-collection tail still occupying
    /// a die — shows up as queueing on the resource timelines, not as a
    /// flat offset).
    pub start: SimTime,
    /// Forces the pre-batching scalar run loop (the reference
    /// implementation the batched path is asserted bit-identical against).
    /// Also switchable process-wide via the `CONDUIT_SCALAR` environment
    /// variable.
    pub force_scalar: bool,
    /// Forces strips to evaluate sequentially on the committing thread even
    /// when a thread pool is available ([`RuntimeEngine::run_pooled`]) —
    /// the PR-8 batched path. Also switchable process-wide via the
    /// `CONDUIT_SEQ_STRIPS` environment variable. Results are bit-identical
    /// either way; the knob exists for verification, debugging, and
    /// apples-to-apples perf comparison.
    pub sequential_strips: bool,
}

impl RunOptions {
    /// Default options for a policy.
    pub fn new(policy: Policy) -> Self {
        RunOptions {
            policy,
            cost_function: CostFunction::conduit(),
            charge_overheads: true,
            record_timeline: true,
            start: SimTime::ZERO,
            force_scalar: false,
            sequential_strips: false,
        }
    }

    /// Builder-style: issues the run's first instruction at `start` on the
    /// device's timeline instead of time zero (the warm-device stream
    /// clock).
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Builder-style: replaces the cost function (for ablations).
    pub fn cost_function(mut self, cf: CostFunction) -> Self {
        self.cost_function = cf;
        self
    }

    /// Builder-style: disables the offloader overhead charges.
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// Builder-style: disables timeline recording.
    pub fn without_timeline(mut self) -> Self {
        self.record_timeline = false;
        self
    }

    /// Builder-style: forces the scalar run loop for this run.
    pub fn scalar(mut self) -> Self {
        self.force_scalar = true;
        self
    }

    /// Builder-style: forces sequential strip evaluation for this run (see
    /// [`RunOptions::sequential_strips`]).
    pub fn with_sequential_strips(mut self) -> Self {
        self.sequential_strips = true;
        self
    }
}

/// Struct-of-arrays per-run bookkeeping, owned by the engine and reused
/// across runs and repeats so the batched hot path performs no heap
/// allocation. Columns are keyed by instruction index; the timeline
/// `Vec<TimelineEntry>` is materialized from the columns only when
/// [`RunOptions::record_timeline`] is set.
#[derive(Debug, Default)]
struct RunScratch {
    /// Where each instruction's result currently lives.
    result_site: Vec<DataLocation>,
    /// When each instruction's result becomes available.
    result_ready: Vec<SimTime>,
    /// The execution site each instruction was placed on.
    placed: Vec<ExecutionSite>,
    /// Dispatch (issue) time per instruction.
    issued: Vec<SimTime>,
    /// Completion time per instruction.
    finished: Vec<SimTime>,
    /// Per-instruction operand staging scratch.
    operand_locations: Vec<DataLocation>,
    operand_first_pages: Vec<LogicalPageId>,
    /// Inline strip-plan buffer (used when no cached plan applies).
    strips: Vec<Strip>,
    /// Flattened dependence edges of the inline strip plan (the
    /// [`StripPlan::plan_into`] companion buffer).
    dep_edges: Vec<u32>,
}

impl RunScratch {
    fn reset(&mut self, n: usize, start: SimTime) {
        self.result_site.clear();
        self.result_site.resize(n, DataLocation::Flash);
        self.result_ready.clear();
        self.result_ready.resize(n, start);
        self.placed.clear();
        self.placed.resize(n, ExecutionSite::HostCpu);
        self.issued.clear();
        self.issued.resize(n, start);
        self.finished.clear();
        self.finished.resize(n, start);
        self.operand_locations.clear();
        self.operand_first_pages.clear();
    }
}

/// One strip's precomputed expensive work, produced by a pool worker (or
/// inline by the committer) in the **evaluate** phase of the two-phase
/// run loop. Everything here is a pure function of the program, the plan,
/// and the immutable device models — never of live device state — so
/// evaluation order cannot affect results.
struct StripEval {
    /// The strip's hoisted per-resource estimates (identical to what
    /// [`SsdDevice::estimate_strip`] returns: both call the same pure
    /// [`DeviceModels`] table).
    se: StripEstimates,
    /// Per-instruction offloader overhead latencies, indexed by position in
    /// the strip. Empty when the run does not charge overheads (the L2P
    /// miss cadence is a pure function of the global instruction index —
    /// see [`EvalContext::eval`]).
    overheads: Vec<Duration>,
    /// The speculated dynamic placement for DAG-eligible strips
    /// ([`Strip::speculative`]), from the pure plan-time context. The
    /// commit phase always recomputes the real choice; this only feeds the
    /// speculation hit/miss counters.
    speculated: Option<ExecutionSite>,
}

/// Everything a worker needs to evaluate any strip of a run without
/// touching the device: shared immutable models and the run's fixed
/// parameters. Held inside [`EvalShared`] so workers and the committer use
/// the exact same evaluation code path.
struct EvalContext {
    models: Arc<DeviceModels>,
    overhead: OverheadModel,
    program: Arc<VectorProgram>,
    plan: Arc<StripPlan>,
    /// `options.charge_overheads && policy.pays_offloader_overhead()` —
    /// fixed for the whole run, which is what makes the per-instruction
    /// L2P miss flags precomputable: in a charging run *every* instruction
    /// bumps the lookup counter exactly once, so the counter at global
    /// instruction index `g` is always `g + 1`.
    pays_overheads: bool,
    l2p_miss_period: u64,
    policy: Policy,
    cost_function: CostFunction,
}

impl EvalContext {
    /// Evaluates strip `strip_idx`: hoists the estimate table row, derives
    /// the per-instruction overheads from the global instruction indices,
    /// and (for DAG-eligible dynamic strips) speculates the placement.
    fn eval(&self, strip_idx: usize) -> StripEval {
        let strip = &self.plan.strips()[strip_idx];
        let insts = self.program.insts();
        let first = &insts[strip.start];
        let se = self.models.estimate_strip(
            first.op,
            first.elem_bits,
            first.lanes,
            first.vector_bytes(),
        );
        let mut overheads = Vec::new();
        if self.pays_overheads {
            overheads.reserve(strip.len);
            for i in 0..strip.len {
                let lookups = (strip.start + i) as u64 + 1;
                let miss = self.l2p_miss_period > 0 && lookups.is_multiple_of(self.l2p_miss_period);
                let inst = &insts[strip.start + i];
                let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                overheads.push(self.overhead.per_instruction(operands, miss));
            }
        }
        // Speculate only strips the DAG proved independent of earlier
        // results and earlier warm-state mutations, and only for policies
        // whose dynamic choice the pure context can actually approximate
        // (BW-Offloading reads live utilization — never speculated).
        let speculated = if strip.speculative && strip.site.is_none() {
            // The first instruction of a DAG-independent strip carries no
            // `Result` operands (one would be a cross-strip edge), so its
            // data operands are exactly its page operands.
            let data_operands = first.srcs.iter().filter(|s| s.needs_data()).count() as u64;
            match self.policy {
                Policy::Conduit => self
                    .cost_function
                    .speculate_from_strip(&se, data_operands)
                    .map(|(r, _)| ExecutionSite::Ssd(r)),
                Policy::DmOffloading => CostFunction::conduit()
                    .speculate_min_data_movement_from_strip(&se, data_operands)
                    .map(|(r, _)| ExecutionSite::Ssd(r)),
                _ => None,
            }
        } else {
            None
        };
        StripEval {
            se,
            overheads,
            speculated,
        }
    }
}

/// Slot claim states of the evaluate phase.
const EVAL_UNCLAIMED: u8 = 0;
const EVAL_IN_FLIGHT: u8 = 1;
const EVAL_DONE: u8 = 2;

/// One strip's claim word and result box.
struct EvalSlot {
    state: AtomicU8,
    value: Mutex<Option<StripEval>>,
}

/// Marks a slot done on drop, so a panicking worker can never wedge the
/// committer: the slot finishes with `value = None` and the committer
/// recomputes inline.
struct DoneGuard<'a>(&'a AtomicU8);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.0.store(EVAL_DONE, Ordering::Release);
    }
}

/// The shared state of one run's parallel evaluate phase: per-strip claim
/// slots, a work-stealing cursor for the scanning workers, and the cancel
/// flag the committer raises once the run is over.
///
/// The protocol is deadlock-free by construction: the committer never
/// waits on an *unclaimed* slot — it claims and computes inline — so the
/// only wait is on a slot a worker is actively computing, which always
/// terminates (the worker's [`DoneGuard`] marks the slot done even on
/// panic). Workers, conversely, never wait on anything.
struct EvalShared {
    ctx: EvalContext,
    slots: Vec<EvalSlot>,
    cursor: AtomicUsize,
    cancel: AtomicBool,
}

impl EvalShared {
    fn new(ctx: EvalContext) -> Self {
        let slots = (0..ctx.plan.strips().len())
            .map(|_| EvalSlot {
                state: AtomicU8::new(EVAL_UNCLAIMED),
                value: Mutex::new(None),
            })
            .collect();
        EvalShared {
            ctx,
            slots,
            cursor: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
        }
    }

    /// Worker loop: claim unevaluated strips (front to back — the order
    /// the committer will need them) and fill their slots until the strips
    /// run out or the committer cancels.
    fn scan(&self) {
        loop {
            if self.cancel.load(Ordering::Relaxed) {
                return;
            }
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                return;
            }
            let slot = &self.slots[i];
            if slot
                .state
                .compare_exchange(
                    EVAL_UNCLAIMED,
                    EVAL_IN_FLIGHT,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                // The committer got here first and is computing it inline.
                continue;
            }
            let done = DoneGuard(&slot.state);
            let eval = self.ctx.eval(i);
            *slot.value.lock().unwrap_or_else(|e| e.into_inner()) = Some(eval);
            drop(done);
        }
    }

    /// Committer side: obtain strip `i`'s evaluation, computing it inline
    /// if no worker has claimed it. Returns the eval plus whether it came
    /// from a worker and whether the committer had to stall for it.
    fn take(&self, i: usize) -> (StripEval, bool, bool) {
        let slot = &self.slots[i];
        if slot
            .state
            .compare_exchange(
                EVAL_UNCLAIMED,
                EVAL_IN_FLIGHT,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            // Claimed by us; no worker will touch it (and none can be
            // waiting on it), so there is no need to publish the value.
            return (self.ctx.eval(i), false, false);
        }
        let mut stalled = false;
        while slot.state.load(Ordering::Acquire) != EVAL_DONE {
            stalled = true;
            std::thread::yield_now();
        }
        match slot.value.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(eval) => (eval, true, stalled),
            // The worker panicked mid-eval (DoneGuard finished the slot
            // without a value): recompute inline.
            None => (self.ctx.eval(i), false, stalled),
        }
    }
}

/// The runtime offloading engine: the host models and the offloader's own
/// bookkeeping. Stateless across runs — the device is borrowed per call
/// ([`RuntimeEngine::prepare`], [`RuntimeEngine::run`]); the only mutable
/// state is a pool of reusable [`RunScratch`] arenas, which never affects
/// results.
#[derive(Debug)]
pub struct RuntimeEngine {
    overhead: OverheadModel,
    transformer: InstructionTransformer,
    host_cpu: HostCpuModel,
    host_gpu: HostGpuModel,
    l2p_miss_period: u64,
    /// Reusable run arenas: popped at run start, pushed back at run end.
    /// A pool (not a single slot) because parallel lanes share one cloned
    /// engine per batch task and must not serialize on the scratch.
    scratch: Mutex<Vec<RunScratch>>,
}

impl Clone for RuntimeEngine {
    /// Clones the models; the clone starts with an empty scratch pool
    /// (arenas are a reuse cache, not state).
    fn clone(&self) -> Self {
        RuntimeEngine {
            overhead: self.overhead.clone(),
            transformer: self.transformer.clone(),
            host_cpu: self.host_cpu.clone(),
            host_gpu: self.host_gpu.clone(),
            l2p_miss_period: self.l2p_miss_period,
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl RuntimeEngine {
    /// Builds an engine with the default host configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        Self::with_host(cfg, &HostConfig::default())
    }

    /// Builds an engine with an explicit host configuration.
    pub fn with_host(cfg: &SsdConfig, host: &HostConfig) -> Self {
        let miss_rate = (1.0 - cfg.l2p_cache_hit_rate).max(0.0);
        let l2p_miss_period = if miss_rate <= f64::EPSILON {
            0
        } else {
            (1.0 / miss_rate).round() as u64
        };
        RuntimeEngine {
            overhead: OverheadModel::new(cfg),
            transformer: InstructionTransformer::new(cfg),
            host_cpu: HostCpuModel::new(&host.cpu),
            host_gpu: HostGpuModel::new(&host.gpu),
            l2p_miss_period,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The instruction transformation unit.
    pub fn transformer(&self) -> &InstructionTransformer {
        &self.transformer
    }

    /// The overhead model.
    pub fn overhead_model(&self) -> &OverheadModel {
        &self.overhead
    }

    /// Places the program's data in the SSD before execution: operand groups
    /// of in-flash-capable instructions are co-located in the same flash
    /// block (the Flash-Cosmos layout constraint), everything else is striped
    /// across planes for parallelism. All application data resides in the SSD
    /// at the start of execution (§4.4). Pages a warm device has already
    /// mapped keep their existing placement, so re-preparing the same
    /// program on a warm device is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates FTL allocation errors.
    pub fn prepare(&self, device: &mut SsdDevice, program: &VectorProgram) -> Result<()> {
        program.validate().map_err(ConduitError::invalid_program)?;
        for inst in program.iter() {
            let span = Self::pages_per_vector(inst);
            let page_srcs: Vec<LogicalPageId> = inst.src_pages().collect();
            if conduit_types::Resource::Ifp.supports(inst.op) && page_srcs.len() >= 2 {
                // Co-locate slice k of every operand in one block; spread the
                // slices across planes for multi-plane parallelism.
                for k in 0..span {
                    let group: Vec<LogicalPageId> = page_srcs.iter().map(|p| p.offset(k)).collect();
                    device.map_group(&group, Some(k))?;
                }
            } else {
                for p in &page_srcs {
                    let pages: Vec<LogicalPageId> = (0..span).map(|k| p.offset(k)).collect();
                    device.map_pages(&pages, None)?;
                }
            }
            if let Some(dst) = inst.dst_page {
                let pages: Vec<LogicalPageId> = (0..span).map(|k| dst.offset(k)).collect();
                device.map_pages(&pages, None)?;
            }
        }
        Ok(())
    }

    /// Executes `program` under `options` on the borrowed `device` and
    /// returns the run report.
    ///
    /// Dispatches to the batched strip-mined loop (planning the program
    /// inline) unless [`RunOptions::force_scalar`] or the `CONDUIT_SCALAR`
    /// environment variable forces the scalar reference loop. Both paths
    /// produce bit-identical reports.
    ///
    /// # Errors
    ///
    /// Returns validation errors for malformed programs and simulation errors
    /// for device-level failures.
    pub fn run(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
    ) -> Result<RunReport> {
        self.run_with_plan(device, program, options, None)
    }

    /// [`RuntimeEngine::run`] with an optional precomputed [`StripPlan`]
    /// (the session's plan cache). A plan computed for different options is
    /// ignored; the program is then strip-mined inline into the engine's
    /// reusable scratch (planning is O(n)).
    ///
    /// # Errors
    ///
    /// Returns validation errors for malformed programs and simulation errors
    /// for device-level failures.
    pub fn run_with_plan(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
        plan: Option<&StripPlan>,
    ) -> Result<RunReport> {
        self.run_dispatch(device, program, options, plan, None)
    }

    /// [`RuntimeEngine::run_with_plan`] with an optional [`ThreadPool`] for
    /// **parallel strip evaluation** — the two-phase run loop. When a pool
    /// (≥ 2 workers) and a matching cached plan are available, workers scan
    /// the plan's strips front to back and precompute each strip's pure
    /// expensive work (estimate-table hoisting, per-instruction overhead
    /// accounting, speculative placement of DAG-independent strips) while
    /// this thread **commits** strips strictly in program order: timeline
    /// reservations, clock advances, and every device mutation happen
    /// exactly as in the sequential batched loop, so results are
    /// bit-identical to it and to the scalar reference. A strip the workers
    /// have not reached yet is simply evaluated inline by the committer —
    /// the pool can never slow a run down, only overlap its pure work.
    ///
    /// Falls back to the sequential batched path when no pool or cached
    /// plan is given, when the program has fewer than two strips, or when
    /// [`RunOptions::sequential_strips`] / `CONDUIT_SEQ_STRIPS=1` /
    /// the scalar escape hatches are in force.
    ///
    /// # Errors
    ///
    /// Returns validation errors for malformed programs and simulation errors
    /// for device-level failures.
    pub fn run_pooled(
        &self,
        device: &mut SsdDevice,
        program: &Arc<VectorProgram>,
        options: &RunOptions,
        plan: Option<&Arc<StripPlan>>,
        pool: Option<&ThreadPool>,
    ) -> Result<RunReport> {
        let matching = plan.filter(|p| p.matches(options));
        let parallel = !options.sequential_strips
            && !env_forces_seq_strips()
            && !options.force_scalar
            && !env_forces_scalar()
            && pool.is_some_and(|p| p.size() >= 2)
            && matching.is_some_and(|p| p.strips().len() >= 2);
        if !parallel {
            return self.run_dispatch(device, program, options, plan.map(Arc::as_ref), None);
        }
        let pool = pool.expect("parallel implies a pool");
        let plan = matching.expect("parallel implies a matching plan");
        let shared = Arc::new(EvalShared::new(EvalContext {
            models: device.models(),
            overhead: self.overhead.clone(),
            program: Arc::clone(program),
            plan: Arc::clone(plan),
            pays_overheads: options.charge_overheads && options.policy.pays_offloader_overhead(),
            l2p_miss_period: self.l2p_miss_period,
            policy: options.policy,
            cost_function: options.cost_function,
        }));
        // Bulk-class scan jobs: strip evaluation must never preempt the
        // pool's reserved lane slots (warm-device lanes stay responsive).
        // Workers that are busy simply never pick these up, and the
        // committer computes inline — graceful degradation, no deadlock.
        let scanners = pool.size().min(plan.strips().len());
        for _ in 0..scanners {
            let shared = Arc::clone(&shared);
            pool.execute(move || shared.scan());
        }
        let result =
            self.run_dispatch(device, program, options, Some(plan.as_ref()), Some(&shared));
        // Stop any scanner that has not started (or is mid-scan); stragglers
        // only touch their own Arc'd slots, never the returned report.
        shared.cancel.store(true, Ordering::Relaxed);
        result
    }

    /// Common dispatch: scalar escape hatches, scratch-arena pooling, and
    /// the batched loop (with or without a parallel evaluate phase).
    fn run_dispatch(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
        plan: Option<&StripPlan>,
        evals: Option<&EvalShared>,
    ) -> Result<RunReport> {
        if program.is_empty() {
            return Err(ConduitError::invalid_program("program has no instructions"));
        }
        program.validate().map_err(ConduitError::invalid_program)?;
        if options.force_scalar || env_forces_scalar() {
            return self.run_scalar(device, program, options);
        }
        let mut scratch = self
            .scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let result = self.run_batched(device, program, options, plan, evals, &mut scratch);
        self.scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
        result
    }

    /// The pre-batching per-instruction loop, kept verbatim as the reference
    /// implementation the batched path is differentially tested against
    /// (`CONDUIT_SCALAR=1`, [`RunOptions::scalar`]).
    fn run_scalar(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
    ) -> Result<RunReport> {
        let policy = options.policy;
        let n = program.len();
        let mut result_site: Vec<DataLocation> = vec![DataLocation::Flash; n];
        let mut result_ready: Vec<SimTime> = vec![options.start; n];
        let mut offload_clock = options.start;
        let mut host_clock = options.start;
        let mut finish = options.start;

        let mut energy = EnergySummary::default();
        let mut breakdown = CostBreakdown::zero();
        let mut mix = OffloadMix::default();
        let mut latency = conduit_sim::LatencyStats::new();
        let mut timeline = Vec::with_capacity(if options.record_timeline { n } else { 0 });
        let mut overhead_report = OverheadReport::default();
        let mut lookups: u64 = 0;
        // Scratch buffers reused across instructions so the per-instruction
        // loop performs no heap allocation.
        let mut operand_locations: Vec<DataLocation> = Vec::with_capacity(4);
        let mut operand_first_pages: Vec<LogicalPageId> = Vec::with_capacity(4);

        for inst in program.iter() {
            let issue = if policy.is_host() {
                host_clock
            } else {
                offload_clock
            };

            // Gather operand locations and the data-dependence delay.
            operand_locations.clear();
            let mut dep_ready = issue;
            for src in &inst.srcs {
                match src {
                    Operand::Page(p) => operand_locations.push(device.locate(*p)),
                    Operand::Result(id) => {
                        operand_locations.push(result_site[id.index()]);
                        dep_ready = dep_ready.max(result_ready[id.index()]);
                    }
                    Operand::Immediate(_) => {}
                }
            }
            let dependence_delay = dep_ready.saturating_since(issue);

            let site = {
                let ctx = PolicyContext {
                    device: &*device,
                    now: issue,
                    operand_locations: &operand_locations,
                    dependence_delay,
                };
                if policy == Policy::Conduit {
                    // Honour the (possibly ablated) cost function from the
                    // options rather than the default one.
                    options
                        .cost_function
                        .choose(inst, &ctx)
                        .map(|(r, _)| ExecutionSite::Ssd(r))
                        .unwrap_or(ExecutionSite::Ssd(conduit_types::Resource::Isp))
                } else {
                    policy.choose_site(inst, &ctx)
                }
            };
            mix.record(site);

            // The unrealizable Ideal policy: no overhead, no data movement,
            // no contention — just the fastest compute latency.
            if policy.is_contention_free() {
                let resource = site.resource().expect("ideal stays inside the SSD");
                let comp_latency = device
                    .estimate_compute(resource, inst.op, inst.elem_bits, inst.lanes)
                    .unwrap_or(Duration::ZERO);
                let comp_energy = device
                    .estimate_compute_energy(resource, inst.op, inst.elem_bits, inst.lanes)
                    .unwrap_or(Energy::ZERO);
                let start = issue.max(dep_ready);
                let end = start + comp_latency;
                energy.compute += comp_energy;
                breakdown.compute += comp_latency;
                result_site[inst.id.index()] = resource.home_location();
                result_ready[inst.id.index()] = end;
                finish = finish.max(end);
                latency.record(end.saturating_since(issue));
                if options.record_timeline {
                    timeline.push(TimelineEntry {
                        inst: inst.id,
                        op: inst.op,
                        site,
                        dispatched: issue,
                        completed: end,
                    });
                }
                continue;
            }

            // Offloader overhead (feature collection + transformation). The
            // offloader core pipelines feature collection for the next
            // instruction with the table lookups of the current one, so only
            // the translation-table lookup occupies the core exclusively;
            // the full overhead is still added to the instruction's dispatch
            // latency (§4.5).
            let mut dispatched = issue;
            if options.charge_overheads && policy.pays_offloader_overhead() {
                lookups += 1;
                let miss = self.l2p_miss_period > 0 && lookups.is_multiple_of(self.l2p_miss_period);
                let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                let ov = self.overhead.per_instruction(operands, miss);
                overhead_report.record(ov);
                let exclusive = self.overhead.transformation();
                let oc = device.offloader_busy(exclusive, issue);
                energy.compute += oc.energy;
                breakdown.accumulate(oc.breakdown);
                offload_clock = oc.ready;
                dispatched = oc.ready + ov.saturating_sub(exclusive);
            }

            let dest = match site {
                ExecutionSite::HostCpu | ExecutionSite::HostGpu => DataLocation::Host,
                ExecutionSite::Ssd(r) => r.home_location(),
            };

            // Stage the operands at the execution site.
            let span = Self::pages_per_vector(inst);
            let mut data_ready = dispatched.max(dep_ready);
            let movement_earliest = data_ready;
            operand_first_pages.clear();
            for src in &inst.srcs {
                match src {
                    Operand::Page(p) => {
                        operand_first_pages.push(*p);
                        for k in 0..span {
                            let c = device.ensure_at(p.offset(k), dest, movement_earliest)?;
                            data_ready = data_ready.max(c.ready);
                            energy.data_movement += c.energy;
                            breakdown.accumulate(c.breakdown);
                        }
                    }
                    Operand::Result(id) => {
                        let from = result_site[id.index()];
                        if from != dest {
                            let c = device.transfer_value(
                                from,
                                dest,
                                inst.vector_bytes(),
                                movement_earliest,
                            );
                            data_ready = data_ready.max(c.ready);
                            energy.data_movement += c.energy;
                            breakdown.accumulate(c.breakdown);
                            result_site[id.index()] = dest;
                        }
                    }
                    Operand::Immediate(_) => {}
                }
            }

            // Execute.
            let comp = match site {
                ExecutionSite::Ssd(resource) => device.execute(
                    resource,
                    inst.op,
                    inst.elem_bits,
                    inst.lanes,
                    &operand_first_pages,
                    data_ready,
                )?,
                ExecutionSite::HostCpu => {
                    let t = self
                        .host_cpu
                        .compute_time(inst.op, inst.elem_bits, inst.lanes);
                    let start = data_ready.max(host_clock);
                    let end = start + t;
                    host_clock = end;
                    OpCompletion {
                        ready: end,
                        breakdown: CostBreakdown {
                            compute: t,
                            ..CostBreakdown::zero()
                        },
                        energy: self.host_cpu.energy(t),
                    }
                }
                ExecutionSite::HostGpu => {
                    let t = self
                        .host_gpu
                        .compute_time(inst.op, inst.elem_bits, inst.lanes);
                    let start = data_ready.max(host_clock);
                    let end = start + t;
                    host_clock = end;
                    OpCompletion {
                        ready: end,
                        breakdown: CostBreakdown {
                            compute: t,
                            ..CostBreakdown::zero()
                        },
                        energy: self.host_gpu.energy(t),
                    }
                }
            };
            energy.compute += comp.energy;
            breakdown.accumulate(comp.breakdown);

            result_site[inst.id.index()] = dest;
            result_ready[inst.id.index()] = comp.ready;
            let mut done = comp.ready;

            // Commit stored results (lazily, via the coherence directory).
            if let Some(dst) = inst.dst_page {
                for k in 0..span {
                    let page = dst.offset(k);
                    if dest == DataLocation::Host {
                        // OSP results return over the host link into the
                        // SSD's write cache; the host keeps its own copy, so
                        // later host-side reads of this page stay local.
                        let link = device.host_transfer(PAGE_BYTES, false, comp.ready);
                        energy.data_movement += link.energy;
                        breakdown.accumulate(link.breakdown);
                        let wb =
                            device.record_result_write(page, DataLocation::Host, link.ready)?;
                        done = done.max(wb.ready);
                        energy.data_movement += wb.energy;
                        breakdown.accumulate(wb.breakdown);
                    } else {
                        let wb = device.record_result_write(page, dest, comp.ready)?;
                        done = done.max(wb.ready);
                        energy.data_movement += wb.energy;
                        breakdown.accumulate(wb.breakdown);
                    }
                }
            }

            finish = finish.max(done);
            latency.record(done.saturating_since(issue));
            if options.record_timeline {
                timeline.push(TimelineEntry {
                    inst: inst.id,
                    op: inst.op,
                    site,
                    dispatched: issue,
                    completed: done,
                });
            }
        }

        Ok(RunReport {
            workload: program.name().to_string(),
            policy,
            instructions: n,
            total_time: finish.saturating_since(options.start),
            energy,
            breakdown,
            offload_mix: mix,
            latency,
            timeline,
            overhead: overhead_report,
            parallelism: ParallelismStats::default(),
        })
    }

    /// The batched strip-mined run loop. Per strip of homogeneous
    /// instructions it hoists the per-resource estimate lookups into one
    /// [`conduit_sim::StripEstimates`] and the offloader-core occupancy into
    /// one reservation window; per instruction it performs exactly the same
    /// device operations (staging, execution, commit) in exactly the same
    /// order as [`RuntimeEngine::run_scalar`], so reports, timelines and
    /// end-of-run device state are bit-identical. Bookkeeping lives in the
    /// reusable struct-of-arrays `scratch`, and the timeline is materialized
    /// from the columns only when requested.
    fn run_batched(
        &self,
        device: &mut SsdDevice,
        program: &VectorProgram,
        options: &RunOptions,
        plan: Option<&StripPlan>,
        evals: Option<&EvalShared>,
        scratch: &mut RunScratch,
    ) -> Result<RunReport> {
        let policy = options.policy;
        let n = program.len();
        scratch.reset(n, options.start);
        let RunScratch {
            result_site,
            result_ready,
            placed,
            issued,
            finished,
            operand_locations,
            operand_first_pages,
            strips: strip_buf,
            dep_edges: dep_buf,
        } = scratch;
        let strips: &[Strip] = match plan {
            Some(p) if p.matches(options) => p.strips(),
            _ => {
                StripPlan::plan_into(program, policy, strip_buf, dep_buf);
                strip_buf
            }
        };

        let mut offload_clock = options.start;
        let mut host_clock = options.start;
        let mut finish = options.start;

        let mut energy = EnergySummary::default();
        let mut breakdown = CostBreakdown::zero();
        let mut mix = OffloadMix::default();
        let mut latency = conduit_sim::LatencyStats::new();
        let mut overhead_report = OverheadReport::default();
        let mut par_stats = ParallelismStats::default();
        let mut lookups: u64 = 0;
        let exclusive = self.overhead.transformation();
        let insts = program.insts();

        for (s_idx, strip) in strips.iter().enumerate() {
            let first = &insts[strip.start];
            // Two-phase mode: collect this strip's pure evaluation — from a
            // worker if one got here first, inline otherwise. The counters
            // are diagnostics only; the values are bit-identical either way
            // (and the debug asserts below hold the two together).
            let eval = evals.map(|shared| {
                let (eval, from_worker, stalled) = shared.take(s_idx);
                if from_worker {
                    par_stats.parallel_evals += 1;
                } else {
                    par_stats.inline_evals += 1;
                }
                if stalled {
                    par_stats.commit_stalls += 1;
                }
                eval
            });
            // One table walk per strip: per-resource compute estimates and
            // per-location static-move latencies at the strip's shape.
            let se = match &eval {
                Some(ev) => {
                    debug_assert_eq!(
                        ev.se,
                        device.estimate_strip(
                            first.op,
                            first.elem_bits,
                            first.lanes,
                            first.vector_bytes()
                        ),
                        "a precomputed strip estimate must equal the inline lookup"
                    );
                    ev.se
                }
                None => device.estimate_strip(
                    first.op,
                    first.elem_bits,
                    first.lanes,
                    first.vector_bytes(),
                ),
            };

            // The unrealizable Ideal policy: its placement depends only on
            // the hoisted compute estimates, so the whole strip resolves to
            // one resource up front.
            if policy.is_contention_free() {
                let resource = CostFunction::conduit()
                    .choose_ideal_from_strip(&se)
                    .map(|(r, _)| r)
                    .unwrap_or(Resource::Isp);
                let site = ExecutionSite::Ssd(resource);
                let est = se.compute_for(resource);
                let comp_latency = est.map(|e| e.latency).unwrap_or(Duration::ZERO);
                let comp_energy = est.map(|e| e.energy).unwrap_or(Energy::ZERO);
                for i in 0..strip.len {
                    let inst = &insts[strip.start + i];
                    let issue = offload_clock;
                    let mut dep_ready = issue;
                    for src in &inst.srcs {
                        if let Operand::Result(id) = src {
                            dep_ready = dep_ready.max(result_ready[id.index()]);
                        }
                    }
                    mix.record(site);
                    let start = issue.max(dep_ready);
                    let end = start + comp_latency;
                    energy.compute += comp_energy;
                    breakdown.compute += comp_latency;
                    result_site[inst.id.index()] = resource.home_location();
                    result_ready[inst.id.index()] = end;
                    finish = finish.max(end);
                    latency.record(end.saturating_since(issue));
                    let idx = strip.start + i;
                    placed[idx] = site;
                    issued[idx] = issue;
                    finished[idx] = end;
                }
                continue;
            }

            // One offloader-core reservation for the whole strip (exact:
            // each instruction's exclusive window starts where the previous
            // one ended, which is precisely how the scalar loop chains its
            // offload clock through `offloader_busy`).
            let window = if options.charge_overheads && policy.pays_offloader_overhead() {
                Some(device.offloader_busy_strip(exclusive, offload_clock, strip.len as u64))
            } else {
                None
            };

            for i in 0..strip.len {
                let inst = &insts[strip.start + i];
                let issue = if policy.is_host() {
                    host_clock
                } else {
                    offload_clock
                };

                // Gather operand locations and the data-dependence delay.
                operand_locations.clear();
                let mut dep_ready = issue;
                for src in &inst.srcs {
                    match src {
                        Operand::Page(p) => operand_locations.push(device.locate(*p)),
                        Operand::Result(id) => {
                            operand_locations.push(result_site[id.index()]);
                            dep_ready = dep_ready.max(result_ready[id.index()]);
                        }
                        Operand::Immediate(_) => {}
                    }
                }
                let dependence_delay = dep_ready.saturating_since(issue);

                let site = match strip.site {
                    // Statically planned placement (pure function of the op).
                    Some(site) => site,
                    // Runtime-state-dependent placement, evaluated per
                    // instruction from the hoisted strip estimates.
                    None => {
                        let ctx = PolicyContext {
                            device: &*device,
                            now: issue,
                            operand_locations,
                            dependence_delay,
                        };
                        match policy {
                            Policy::Conduit => options
                                .cost_function
                                .choose_from_strip(inst.op, &se, &ctx)
                                .map(|(r, _)| ExecutionSite::Ssd(r))
                                .unwrap_or(ExecutionSite::Ssd(Resource::Isp)),
                            Policy::DmOffloading => CostFunction::conduit()
                                .choose_min_data_movement_from_strip(inst.op, &se, &ctx)
                                .map(|(r, _)| ExecutionSite::Ssd(r))
                                .unwrap_or(ExecutionSite::Ssd(Resource::Isp)),
                            // BW-Offloading reads per-instruction
                            // utilization; no estimate to hoist.
                            _ => policy.choose_site(inst, &ctx),
                        }
                    }
                };
                mix.record(site);

                // Score the worker's speculated placement against the
                // committed choice for the strip's lead instruction. The
                // commit decision above is authoritative either way —
                // speculation can only be right or counted wrong, never
                // believed.
                if i == 0 {
                    if let Some(spec) = eval.as_ref().and_then(|ev| ev.speculated) {
                        if spec == site {
                            par_stats.speculation_hits += 1;
                        } else {
                            par_stats.speculation_misses += 1;
                        }
                    }
                }

                // Offloader overhead: the strip's reservation already put
                // this instruction's exclusive window on the core; charge
                // the per-instruction accounting in scalar order.
                let mut dispatched = issue;
                if let Some(w) = &window {
                    lookups += 1;
                    let ov = match &eval {
                        // Precomputed on a worker from the global
                        // instruction index (every charged instruction
                        // bumps `lookups` exactly once, so the cadence is
                        // index-determined); the debug assert pins it to
                        // the inline recomputation under `cargo test`.
                        Some(ev) if !ev.overheads.is_empty() => {
                            let ov = ev.overheads[i];
                            #[cfg(debug_assertions)]
                            {
                                let miss = self.l2p_miss_period > 0
                                    && lookups.is_multiple_of(self.l2p_miss_period);
                                let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                                debug_assert_eq!(
                                    ov,
                                    self.overhead.per_instruction(operands, miss),
                                    "a precomputed overhead must match the inline \
                                     recomputation at the same lookup count"
                                );
                            }
                            ov
                        }
                        _ => {
                            let miss = self.l2p_miss_period > 0
                                && lookups.is_multiple_of(self.l2p_miss_period);
                            let operands = inst.srcs.iter().filter(|s| s.needs_data()).count();
                            self.overhead.per_instruction(operands, miss)
                        }
                    };
                    overhead_report.record(ov);
                    energy.compute += w.energy_each;
                    breakdown.compute += w.step;
                    let ready = w.first_ready + w.step * (i as u64);
                    offload_clock = ready;
                    dispatched = ready + ov.saturating_sub(exclusive);
                }

                let dest = match site {
                    ExecutionSite::HostCpu | ExecutionSite::HostGpu => DataLocation::Host,
                    ExecutionSite::Ssd(r) => r.home_location(),
                };

                // Stage the operands at the execution site.
                let span = Self::pages_per_vector(inst);
                let mut data_ready = dispatched.max(dep_ready);
                let movement_earliest = data_ready;
                operand_first_pages.clear();
                for src in &inst.srcs {
                    match src {
                        Operand::Page(p) => {
                            operand_first_pages.push(*p);
                            for k in 0..span {
                                let c = device.ensure_at(p.offset(k), dest, movement_earliest)?;
                                data_ready = data_ready.max(c.ready);
                                energy.data_movement += c.energy;
                                breakdown.accumulate(c.breakdown);
                            }
                        }
                        Operand::Result(id) => {
                            let from = result_site[id.index()];
                            if from != dest {
                                let c = device.transfer_value(
                                    from,
                                    dest,
                                    inst.vector_bytes(),
                                    movement_earliest,
                                );
                                data_ready = data_ready.max(c.ready);
                                energy.data_movement += c.energy;
                                breakdown.accumulate(c.breakdown);
                                result_site[id.index()] = dest;
                            }
                        }
                        Operand::Immediate(_) => {}
                    }
                }

                // Execute.
                let comp = match site {
                    ExecutionSite::Ssd(resource) => device.execute(
                        resource,
                        inst.op,
                        inst.elem_bits,
                        inst.lanes,
                        operand_first_pages,
                        data_ready,
                    )?,
                    ExecutionSite::HostCpu => {
                        let t = self
                            .host_cpu
                            .compute_time(inst.op, inst.elem_bits, inst.lanes);
                        let start = data_ready.max(host_clock);
                        let end = start + t;
                        host_clock = end;
                        OpCompletion {
                            ready: end,
                            breakdown: CostBreakdown {
                                compute: t,
                                ..CostBreakdown::zero()
                            },
                            energy: self.host_cpu.energy(t),
                        }
                    }
                    ExecutionSite::HostGpu => {
                        let t = self
                            .host_gpu
                            .compute_time(inst.op, inst.elem_bits, inst.lanes);
                        let start = data_ready.max(host_clock);
                        let end = start + t;
                        host_clock = end;
                        OpCompletion {
                            ready: end,
                            breakdown: CostBreakdown {
                                compute: t,
                                ..CostBreakdown::zero()
                            },
                            energy: self.host_gpu.energy(t),
                        }
                    }
                };
                energy.compute += comp.energy;
                breakdown.accumulate(comp.breakdown);

                result_site[inst.id.index()] = dest;
                result_ready[inst.id.index()] = comp.ready;
                let mut done = comp.ready;

                // Commit stored results (lazily, via the coherence
                // directory).
                if let Some(dst) = inst.dst_page {
                    for k in 0..span {
                        let page = dst.offset(k);
                        if dest == DataLocation::Host {
                            let link = device.host_transfer(PAGE_BYTES, false, comp.ready);
                            energy.data_movement += link.energy;
                            breakdown.accumulate(link.breakdown);
                            let wb =
                                device.record_result_write(page, DataLocation::Host, link.ready)?;
                            done = done.max(wb.ready);
                            energy.data_movement += wb.energy;
                            breakdown.accumulate(wb.breakdown);
                        } else {
                            let wb = device.record_result_write(page, dest, comp.ready)?;
                            done = done.max(wb.ready);
                            energy.data_movement += wb.energy;
                            breakdown.accumulate(wb.breakdown);
                        }
                    }
                }

                finish = finish.max(done);
                latency.record(done.saturating_since(issue));
                let idx = strip.start + i;
                placed[idx] = site;
                issued[idx] = issue;
                finished[idx] = done;
            }
        }

        // Materialize the timeline from the scratch columns on demand.
        let timeline = if options.record_timeline {
            insts
                .iter()
                .enumerate()
                .map(|(i, inst)| TimelineEntry {
                    inst: inst.id,
                    op: inst.op,
                    site: placed[i],
                    dispatched: issued[i],
                    completed: finished[i],
                })
                .collect()
        } else {
            Vec::new()
        };

        Ok(RunReport {
            workload: program.name().to_string(),
            policy,
            instructions: n,
            total_time: finish.saturating_since(options.start),
            energy,
            breakdown,
            offload_mix: mix,
            latency,
            timeline,
            overhead: overhead_report,
            parallelism: par_stats,
        })
    }

    fn pages_per_vector(inst: &VectorInst) -> u64 {
        inst.vector_bytes().div_ceil(PAGE_BYTES).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::OpType;

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("unit");
        let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        let y = prog.push_binary(OpType::Add, Operand::result(x), Operand::page(8));
        prog.push(
            conduit_types::VectorInst::binary(
                2,
                OpType::Mul,
                Operand::result(y),
                Operand::page(12),
            )
            .store_to(LogicalPageId::new(16)),
        );
        prog
    }

    fn engine() -> (RuntimeEngine, SsdDevice) {
        let cfg = SsdConfig::small_for_tests();
        (
            RuntimeEngine::new(&cfg),
            SsdDevice::new(&cfg).expect("test config is valid"),
        )
    }

    #[test]
    fn empty_program_is_rejected() {
        let (e, mut dev) = engine();
        let prog = VectorProgram::new("empty");
        assert!(e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .is_err());
    }

    #[test]
    fn run_produces_consistent_report() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        assert_eq!(report.instructions, 3);
        assert_eq!(report.offload_mix.total(), 3);
        assert_eq!(report.timeline.len(), 3);
        assert_eq!(report.latency.len(), 3);
        assert!(report.total_time > Duration::ZERO);
        assert!(report.energy.total() > Energy::ZERO);
        assert!(report.overhead.count >= 3);
        assert!(report.overhead.mean() > Duration::from_us(1.0));
        // The timeline is causally ordered per instruction.
        for t in &report.timeline {
            assert!(t.completed >= t.dispatched);
        }
    }

    #[test]
    fn dependences_serialize_completion_times() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let t = &report.timeline;
        assert!(t[1].completed > t[0].dispatched);
        assert!(t[2].completed >= t[1].completed);
        assert_eq!(
            report.total_time.as_ps(),
            t[2].completed.as_ps().max(t[1].completed.as_ps())
        );
    }

    #[test]
    fn ideal_is_faster_than_every_realizable_policy() {
        let prog = program();
        let mut reports = Vec::new();
        for policy in [
            Policy::Ideal,
            Policy::Conduit,
            Policy::IspOnly,
            Policy::HostCpu,
        ] {
            let (e, mut dev) = engine();
            e.prepare(&mut dev, &prog).unwrap();
            reports.push(e.run(&mut dev, &prog, &RunOptions::new(policy)).unwrap());
        }
        let ideal = &reports[0];
        for other in &reports[1..] {
            assert!(
                ideal.total_time <= other.total_time,
                "Ideal ({}) must not be slower than {} ({})",
                ideal.total_time,
                other.policy,
                other.total_time
            );
        }
    }

    #[test]
    fn overheads_can_be_disabled() {
        let prog = program();
        let (e1, mut dev1) = engine();
        e1.prepare(&mut dev1, &prog).unwrap();
        let with = e1
            .run(&mut dev1, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let (e2, mut dev2) = engine();
        e2.prepare(&mut dev2, &prog).unwrap();
        let without = e2
            .run(
                &mut dev2,
                &prog,
                &RunOptions::new(Policy::Conduit).without_overheads(),
            )
            .unwrap();
        assert_eq!(without.overhead.count, 0);
        assert!(without.total_time <= with.total_time);
    }

    #[test]
    fn host_policy_pays_pcie_data_movement() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::HostCpu))
            .unwrap();
        assert_eq!(report.offload_mix.host, 3);
        assert!(report.breakdown.host_data_movement > Duration::ZERO);
        assert!(report.energy.data_movement > Energy::ZERO);
    }

    #[test]
    fn timeline_recording_can_be_disabled() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let report = e
            .run(
                &mut dev,
                &prog,
                &RunOptions::new(Policy::Conduit).without_timeline(),
            )
            .unwrap();
        assert!(report.timeline.is_empty());
        assert_eq!(report.instructions, 3);
    }

    #[test]
    fn prepare_colocates_ifp_capable_operand_groups() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        // The XOR's operands (pages 0 and 4) must share a block.
        let a = dev.ftl().peek(LogicalPageId::new(0)).unwrap();
        let b = dev.ftl().peek(LogicalPageId::new(4)).unwrap();
        assert!(a.same_block(b));
    }

    #[test]
    fn start_time_shifts_a_fresh_run_without_changing_its_service_time() {
        let prog = program();
        let (e1, mut dev1) = engine();
        e1.prepare(&mut dev1, &prog).unwrap();
        let base = e1
            .run(&mut dev1, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let (e2, mut dev2) = engine();
        e2.prepare(&mut dev2, &prog).unwrap();
        let start = SimTime::ZERO + Duration::from_us(500.0);
        let shifted = e2
            .run(
                &mut dev2,
                &prog,
                &RunOptions::new(Policy::Conduit).starting_at(start),
            )
            .unwrap();
        // On an idle device the start time is a pure translation: service
        // time, energy and placement are unchanged; only absolute timeline
        // stamps move.
        assert_eq!(shifted.total_time, base.total_time);
        assert_eq!(shifted.energy, base.energy);
        assert_eq!(shifted.offload_mix, base.offload_mix);
        assert!(shifted.timeline[0].dispatched >= start);
        assert_eq!(
            shifted.timeline[0].dispatched.saturating_since(start),
            base.timeline[0].dispatched.saturating_since(SimTime::ZERO)
        );
    }

    #[test]
    fn warm_device_reruns_continue_where_the_last_run_left_off() {
        let prog = program();
        let (e, mut dev) = engine();
        e.prepare(&mut dev, &prog).unwrap();
        let first = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        let ops_after_first = dev.snapshot().device_ops;
        // Same borrowed device again: timelines and FTL state carry over, so
        // cumulative counters keep growing (a fresh device would reset).
        e.prepare(&mut dev, &prog).unwrap();
        let _second = e
            .run(&mut dev, &prog, &RunOptions::new(Policy::Conduit))
            .unwrap();
        assert!(dev.snapshot().device_ops > ops_after_first);
        assert!(first.total_time > Duration::ZERO);
    }
}
