//! # conduit
//!
//! Conduit: a general-purpose, programmer-transparent near-data-processing
//! (NDP) framework that dynamically offloads vectorized instructions across
//! the three heterogeneous compute resources of a modern SSD — embedded
//! controller cores (ISP), SSD-internal DRAM (PuD-SSD) and NAND flash chips
//! (IFP).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`CostFunction`] — the six-feature holistic cost model (operation type,
//!   operand location, data-dependence delay, resource queueing delay, data
//!   movement latency, expected computation latency; Eqns. 1–2),
//! * [`Policy`] — Conduit plus every baseline the paper evaluates against
//!   (host CPU/GPU, ISP-only, PuD-SSD, Flash-Cosmos, Ares-Flash,
//!   BW-Offloading, DM-Offloading, the unrealizable Ideal policy, and the
//!   naive IFP+ISP combination from the motivation case study),
//! * [`InstructionTransformer`] — the translation of vectorized instructions
//!   to each resource's native primitives (ARM MVE, SIMDRAM/MIMDRAM `bbop`s,
//!   Flash-Cosmos MWS / Ares-Flash `shift_and_add`) and the vector-width
//!   splitting between 4096-lane flash pages, 2048-element DRAM rows and
//!   8-lane MVE micro-ops,
//! * [`OverheadModel`] — the runtime latency and storage overheads of §4.5,
//! * [`RuntimeEngine`] — the runtime offloading engine that executes a
//!   [`conduit_types::VectorProgram`] on a simulated [`conduit_sim::SsdDevice`]
//!   under a chosen policy,
//! * [`Session`] — the service-level API on top of the engine: register a
//!   vectorized program once (persistable via the compact registry
//!   serialization), then [`Session::submit`] [`RunRequest`]s describing the
//!   policy, repeat count and collection flags, getting back a cheap
//!   [`RunSummary`] (times, energy split, histogram-backed latency
//!   percentiles, offload mix) plus opt-in [`RunArtifacts`] (the full
//!   timeline). [`Session::submit_batch`] fans requests out across a
//!   two-class thread pool (reserved lane slots for per-device FIFO lanes,
//!   bulk slots for the fresh fan-out) with results bit-identical to serial
//!   runs; named **warm devices** ([`Session::create_device`],
//!   [`RunRequest::on_device`]) age their FTL/coherence/GC/wear state
//!   across their request streams ([`Session::device_snapshot`],
//!   [`RunSummary::device_delta`]), with open-loop arrivals via
//!   [`RunRequest::arriving_at`].
//!
//! ## Quick start
//!
//! ```
//! use conduit::{Policy, RunRequest, Session};
//! use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
//!
//! // A tiny program: c = a ^ b; d = c + a.
//! let mut prog = VectorProgram::new("demo");
//! let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
//! prog.push_binary(OpType::Add, Operand::result(x), Operand::page(0));
//!
//! // Register once; run under as many policies as you like.
//! let mut session = Session::builder(SsdConfig::small_for_tests()).build();
//! let id = session.register(prog)?;
//!
//! let conduit = session.submit(&RunRequest::new(id, Policy::Conduit))?;
//! let cpu = session.submit(&RunRequest::new(id, Policy::HostCpu))?;
//! assert_eq!(conduit.summary.instructions, 2);
//! assert!(conduit.summary.speedup_over(&cpu.summary) > 0.0);
//! assert!(conduit.summary.percentile(0.99) <= conduit.summary.total_time);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod batch;
mod cost;
mod engine;
mod overhead;
mod policy;
mod pool;
mod report;
mod session;
mod transform;

pub use batch::{Strip, StripPlan};
pub use cost::{CostFeatures, CostFunction};
pub use engine::{RunOptions, RuntimeEngine};
pub use overhead::{OverheadModel, StorageOverhead};
pub use policy::{Policy, PolicyContext};
pub use pool::{JobClass, ThreadPool};
pub use report::{
    gmean, EnergySummary, OffloadMix, OverheadReport, ParallelismStats, RunReport, TimelineEntry,
};
pub use session::{
    DeviceHandle, PlanCacheStats, ProgramId, ProgramRegistry, RunArtifacts, RunOutcome, RunRequest,
    RunSummary, Session, SessionBuilder, DEFAULT_DRR_QUANTUM, DEFAULT_PERCENTILES,
    DEVICE_CHECKPOINT_FORMAT_VERSION, DEVICE_CHECKPOINT_FORMAT_VERSION_V1,
    DEVICE_CHECKPOINT_FORMAT_VERSION_V2, DEVICE_CHECKPOINT_MAGIC, REGISTRY_FORMAT_VERSION,
    REGISTRY_MAGIC,
};
pub use transform::{InstructionTransformer, NativeIsa, TranslationEntry};
