//! # conduit
//!
//! Conduit: a general-purpose, programmer-transparent near-data-processing
//! (NDP) framework that dynamically offloads vectorized instructions across
//! the three heterogeneous compute resources of a modern SSD — embedded
//! controller cores (ISP), SSD-internal DRAM (PuD-SSD) and NAND flash chips
//! (IFP).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`CostFunction`] — the six-feature holistic cost model (operation type,
//!   operand location, data-dependence delay, resource queueing delay, data
//!   movement latency, expected computation latency; Eqns. 1–2),
//! * [`Policy`] — Conduit plus every baseline the paper evaluates against
//!   (host CPU/GPU, ISP-only, PuD-SSD, Flash-Cosmos, Ares-Flash,
//!   BW-Offloading, DM-Offloading, the unrealizable Ideal policy, and the
//!   naive IFP+ISP combination from the motivation case study),
//! * [`InstructionTransformer`] — the translation of vectorized instructions
//!   to each resource's native primitives (ARM MVE, SIMDRAM/MIMDRAM `bbop`s,
//!   Flash-Cosmos MWS / Ares-Flash `shift_and_add`) and the vector-width
//!   splitting between 4096-lane flash pages, 2048-element DRAM rows and
//!   8-lane MVE micro-ops,
//! * [`OverheadModel`] — the runtime latency and storage overheads of §4.5,
//! * [`RuntimeEngine`] — the runtime offloading engine that executes a
//!   [`conduit_types::VectorProgram`] on a simulated [`conduit_sim::SsdDevice`]
//!   under a chosen policy and produces a [`RunReport`] (execution time,
//!   energy split, latency percentiles, offload mix, timeline).
//!
//! ## Quick start
//!
//! ```
//! use conduit::{Policy, Workbench};
//! use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
//!
//! // A tiny program: c = a ^ b; d = c + a.
//! let mut prog = VectorProgram::new("demo");
//! let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
//! prog.push_binary(OpType::Add, Operand::result(x), Operand::page(0));
//!
//! let mut bench = Workbench::new(SsdConfig::small_for_tests());
//! let report = bench.run(&prog, Policy::Conduit)?;
//! assert_eq!(report.instructions, 2);
//! assert!(report.total_time.as_ns() > 0.0);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod cost;
mod engine;
mod overhead;
mod policy;
mod report;
mod transform;
mod workbench;

pub use cost::{CostFeatures, CostFunction};
pub use engine::{RunOptions, RuntimeEngine};
pub use overhead::{OverheadModel, StorageOverhead};
pub use policy::{Policy, PolicyContext};
pub use report::{gmean, EnergySummary, OffloadMix, OverheadReport, RunReport, TimelineEntry};
pub use transform::{InstructionTransformer, NativeIsa, TranslationEntry};
pub use workbench::Workbench;
