//! Runtime latency and storage overheads of Conduit's offloader (§4.5).

use conduit_types::{Duration, OffloaderOverheadConfig, Resource, SsdConfig};

/// Storage footprint of Conduit's metadata in SSD DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOverhead {
    /// Per-instruction feature metadata table (Table 1 fields).
    pub metadata_table_bytes: u64,
    /// The instruction-transformation translation table.
    pub translation_table_bytes: u64,
    /// Coherence metadata per tracked logical page.
    pub coherence_bytes_per_page: u64,
}

impl StorageOverhead {
    /// Total fixed overhead (excluding the per-page coherence metadata).
    pub fn fixed_total_bytes(&self) -> u64 {
        self.metadata_table_bytes + self.translation_table_bytes
    }
}

/// The runtime overhead model: how long feature collection and instruction
/// transformation occupy the offloader core for each instruction.
///
/// # Examples
///
/// ```
/// use conduit::OverheadModel;
/// use conduit_types::SsdConfig;
///
/// let model = OverheadModel::new(&SsdConfig::default());
/// let typical = model.per_instruction(2, false);
/// let worst = model.per_instruction(2, true);
/// // §4.5: ≈3.77 µs on average, up to ≈33 µs when an L2P lookup misses.
/// assert!((typical.as_us() - 3.77).abs() < 0.5);
/// assert!(worst.as_us() > 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadModel {
    cfg: OffloaderOverheadConfig,
    translation_entries: u64,
}

impl OverheadModel {
    /// Builds the overhead model from the device configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        OverheadModel {
            cfg: cfg.overheads.clone(),
            translation_entries: Resource::ALL
                .iter()
                .map(|r| r.supported_op_count() as u64)
                .sum(),
        }
    }

    /// Latency of collecting the six cost-function features for one
    /// instruction with `operands` data operands. `l2p_miss` selects the
    /// slow path where a mapping entry has to be fetched from flash.
    pub fn feature_collection(&self, operands: usize, l2p_miss: bool) -> Duration {
        let c = &self.cfg;
        let location = if l2p_miss {
            c.l2p_lookup_flash
        } else {
            c.l2p_lookup_dram * operands.max(1) as u64
        };
        // Dependence tracking inspects the execution queues of the (on
        // average two) resources that hold pending producers; queue tracking
        // reads one running counter per resource.
        location
            + c.dependence_tracking_per_queue * 2
            + c.queue_tracking_per_resource
            + c.dm_table_lookup
            + c.comp_table_lookup
    }

    /// Latency of the instruction-transformation translation-table lookup.
    pub fn transformation(&self) -> Duration {
        self.cfg.transform_lookup
    }

    /// Total per-instruction offloader overhead.
    pub fn per_instruction(&self, operands: usize, l2p_miss: bool) -> Duration {
        self.feature_collection(operands, l2p_miss) + self.transformation()
    }

    /// The storage overheads of §4.5.
    pub fn storage(&self) -> StorageOverhead {
        // Metadata table fields (Table 1): 2 B op type, 0.5 B operand
        // location, 2 B dependence delay, 3×4 B queueing delays, 4 B data
        // movement latency, 4 B computation latency ≈ 25 B, rounded to 32 B.
        StorageOverhead {
            metadata_table_bytes: 32,
            translation_table_bytes: self.translation_entries * 4,
            coherence_bytes_per_page: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        OverheadModel::new(&SsdConfig::default())
    }

    #[test]
    fn typical_overhead_matches_section_4_5() {
        let m = model();
        let typical = m.per_instruction(2, false);
        assert!((typical.as_us() - 3.77).abs() < 0.5, "got {typical}");
        assert_eq!(m.transformation(), Duration::from_ns(300.0));
    }

    #[test]
    fn l2p_miss_dominates_worst_case() {
        let m = model();
        let worst = m.per_instruction(2, true);
        assert!(worst.as_us() > 30.0 && worst.as_us() < 36.0, "got {worst}");
        assert!(worst > m.per_instruction(2, false) * 5);
    }

    #[test]
    fn more_operands_cost_slightly_more() {
        let m = model();
        assert!(m.feature_collection(3, false) > m.feature_collection(1, false));
    }

    #[test]
    fn storage_overhead_is_under_two_kib() {
        let m = model();
        let s = m.storage();
        assert!(s.translation_table_bytes > 100);
        assert!(
            s.fixed_total_bytes() <= 2048,
            "got {}",
            s.fixed_total_bytes()
        );
        assert_eq!(s.coherence_bytes_per_page, 2);
    }
}
