//! Offloading policies: Conduit and every baseline the paper evaluates.

use conduit_sim::SsdDevice;
use conduit_types::{DataLocation, Duration, ExecutionSite, Resource, SimTime, VectorInst};

use crate::cost::CostFunction;

/// Runtime information available to a policy when it places one instruction.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// The simulated device (read-only: estimates, queue delays,
    /// utilizations).
    pub device: &'a SsdDevice,
    /// Current dispatch time.
    pub now: SimTime,
    /// Where each source operand currently lives.
    pub operand_locations: &'a [DataLocation],
    /// Delay until the instruction's producers finish (`delay_dd`).
    pub dependence_delay: Duration,
}

/// An offloading policy.
///
/// The variants cover the paper's evaluation matrix: outside-storage
/// processing on the host CPU or GPU, the four single-resource NDP baselines
/// (ISP, PuD-SSD, Flash-Cosmos, Ares-Flash), the naive IFP+ISP combination
/// from the §3.1 case study, the two prior offloading models (BW- and
/// DM-Offloading), Conduit itself, and the unrealizable Ideal upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Policy {
    /// Outside-storage processing on the host CPU.
    HostCpu,
    /// Outside-storage processing on the host GPU.
    HostGpu,
    /// All computation on the SSD controller cores.
    IspOnly,
    /// Processing-using-DRAM for every supported operation, controller cores
    /// otherwise (the MIMDRAM-based PuD-SSD baseline).
    PudSsd,
    /// Flash-Cosmos: in-flash bulk bitwise operations, controller cores for
    /// everything else.
    FlashCosmos,
    /// Ares-Flash: in-flash bitwise *and* arithmetic operations, controller
    /// cores for everything else.
    AresFlash,
    /// The naive IFP+ISP split of the motivation case study: bitwise work in
    /// flash, every other operation on the controller cores.
    IfpIsp,
    /// Bandwidth-based offloading: pick the least-utilized resource.
    BwOffloading,
    /// Data-movement-based offloading: pick the resource whose operands are
    /// closest.
    DmOffloading,
    /// Conduit's holistic cost function (Eqns. 1–2).
    Conduit,
    /// The unrealizable Ideal policy: no contention, free data movement,
    /// always the fastest compute resource.
    Ideal,
}

impl Policy {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [Policy; 11] = [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::IfpIsp,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Conduit,
        Policy::Ideal,
    ];

    /// The NDP policies compared in Figure 5 (the motivation study, i.e.
    /// everything except Conduit itself).
    pub const MOTIVATION: [Policy; 9] = [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Ideal,
    ];

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Policy::HostCpu => "CPU",
            Policy::HostGpu => "GPU",
            Policy::IspOnly => "ISP",
            Policy::PudSsd => "PuD-SSD",
            Policy::FlashCosmos => "Flash-Cosmos",
            Policy::AresFlash => "Ares-Flash",
            Policy::IfpIsp => "IFP+ISP",
            Policy::BwOffloading => "BW-Offloading",
            Policy::DmOffloading => "DM-Offloading",
            Policy::Conduit => "Conduit",
            Policy::Ideal => "Ideal",
        }
    }

    /// Whether this policy executes on the host side (outside-storage
    /// processing).
    pub fn is_host(self) -> bool {
        matches!(self, Policy::HostCpu | Policy::HostGpu)
    }

    /// Whether the runtime engine should charge Conduit's offloader
    /// overheads (feature collection + instruction transformation) for this
    /// policy. Host baselines do their placement at compile time; the Ideal
    /// policy is defined without overheads.
    pub fn pays_offloader_overhead(self) -> bool {
        !self.is_host() && self != Policy::Ideal
    }

    /// Whether the engine should model contention and data movement for this
    /// policy (the Ideal policy assumes both away).
    pub fn is_contention_free(self) -> bool {
        self == Policy::Ideal
    }

    /// Chooses the execution site for one instruction.
    pub fn choose_site(self, inst: &VectorInst, ctx: &PolicyContext<'_>) -> ExecutionSite {
        let cost = CostFunction::conduit();
        match self {
            Policy::HostCpu => ExecutionSite::HostCpu,
            Policy::HostGpu => ExecutionSite::HostGpu,
            Policy::IspOnly => ExecutionSite::Ssd(Resource::Isp),
            Policy::PudSsd => {
                if Resource::PudSsd.supports(inst.op) {
                    ExecutionSite::Ssd(Resource::PudSsd)
                } else {
                    ExecutionSite::Ssd(Resource::Isp)
                }
            }
            Policy::FlashCosmos | Policy::IfpIsp => {
                if inst.op.is_bitwise() {
                    ExecutionSite::Ssd(Resource::Ifp)
                } else {
                    ExecutionSite::Ssd(Resource::Isp)
                }
            }
            Policy::AresFlash => {
                if Resource::Ifp.supports(inst.op) {
                    ExecutionSite::Ssd(Resource::Ifp)
                } else {
                    ExecutionSite::Ssd(Resource::Isp)
                }
            }
            Policy::BwOffloading => {
                let site = Resource::ALL
                    .iter()
                    .filter(|r| r.supports(inst.op))
                    .min_by(|a, b| {
                        let ua = ctx.device.utilization(**a, ctx.now);
                        let ub = ctx.device.utilization(**b, ctx.now);
                        ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .copied()
                    .unwrap_or(Resource::Isp);
                ExecutionSite::Ssd(site)
            }
            Policy::DmOffloading => {
                let choice = cost
                    .choose_min_data_movement(inst, ctx)
                    .map(|(r, _)| r)
                    .unwrap_or(Resource::Isp);
                ExecutionSite::Ssd(choice)
            }
            Policy::Conduit => {
                let choice = cost
                    .choose(inst, ctx)
                    .map(|(r, _)| r)
                    .unwrap_or(Resource::Isp);
                ExecutionSite::Ssd(choice)
            }
            Policy::Ideal => {
                let choice = cost
                    .choose_ideal(inst, ctx)
                    .map(|(r, _)| r)
                    .unwrap_or(Resource::Isp);
                ExecutionSite::Ssd(choice)
            }
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand, SsdConfig};

    fn device() -> SsdDevice {
        SsdDevice::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn ctx<'a>(device: &'a SsdDevice, locs: &'a [DataLocation]) -> PolicyContext<'a> {
        PolicyContext {
            device,
            now: SimTime::ZERO,
            operand_locations: locs,
            dependence_delay: Duration::ZERO,
        }
    }

    fn inst(op: OpType) -> VectorInst {
        VectorInst::binary(0, op, Operand::page(0), Operand::page(4))
    }

    #[test]
    fn host_policies_always_stay_on_the_host() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        assert_eq!(
            Policy::HostCpu.choose_site(&inst(OpType::Add), &c),
            ExecutionSite::HostCpu
        );
        assert_eq!(
            Policy::HostGpu.choose_site(&inst(OpType::Mul), &c),
            ExecutionSite::HostGpu
        );
    }

    #[test]
    fn single_resource_policies_fall_back_to_isp() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        // Division is unsupported everywhere except the controller cores.
        for p in [Policy::PudSsd, Policy::FlashCosmos, Policy::AresFlash] {
            assert_eq!(
                p.choose_site(&inst(OpType::Div), &c),
                ExecutionSite::Ssd(Resource::Isp),
                "{p} must fall back to ISP"
            );
        }
        assert_eq!(
            Policy::FlashCosmos.choose_site(&inst(OpType::And), &c),
            ExecutionSite::Ssd(Resource::Ifp)
        );
        // Flash-Cosmos cannot run arithmetic in flash, Ares-Flash can.
        assert_eq!(
            Policy::FlashCosmos.choose_site(&inst(OpType::Add), &c),
            ExecutionSite::Ssd(Resource::Isp)
        );
        assert_eq!(
            Policy::AresFlash.choose_site(&inst(OpType::Add), &c),
            ExecutionSite::Ssd(Resource::Ifp)
        );
    }

    #[test]
    fn dm_offloading_prefers_where_data_lives() {
        let dev = device();
        let in_flash = [DataLocation::Flash, DataLocation::Flash];
        let in_dram = [DataLocation::Dram, DataLocation::Dram];
        assert_eq!(
            Policy::DmOffloading.choose_site(&inst(OpType::And), &ctx(&dev, &in_flash)),
            ExecutionSite::Ssd(Resource::Ifp)
        );
        assert_eq!(
            Policy::DmOffloading.choose_site(&inst(OpType::And), &ctx(&dev, &in_dram)),
            ExecutionSite::Ssd(Resource::PudSsd)
        );
    }

    #[test]
    fn bw_offloading_avoids_the_busiest_resource() {
        let mut dev = device();
        // Make the flash dies very busy.
        for _ in 0..32 {
            dev.execute_ifp(OpType::Mul, 32, 4096, &[], SimTime::ZERO)
                .unwrap();
        }
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let site = Policy::BwOffloading.choose_site(&inst(OpType::And), &ctx(&dev, &locs));
        assert_ne!(site, ExecutionSite::Ssd(Resource::Ifp));
    }

    #[test]
    fn conduit_and_ideal_pick_supported_resources() {
        let dev = device();
        let locs = [DataLocation::Flash, DataLocation::Flash];
        let c = ctx(&dev, &locs);
        for op in OpType::ALL {
            let i = VectorInst::with_srcs(
                0,
                op,
                (0..op.arity())
                    .map(|k| Operand::page(k as u64 * 4))
                    .collect(),
            );
            for p in [Policy::Conduit, Policy::Ideal] {
                let site = p.choose_site(&i, &c);
                if let ExecutionSite::Ssd(r) = site {
                    assert!(r.supports(op), "{p} chose {r} for unsupported {op}");
                } else {
                    panic!("{p} must stay inside the SSD");
                }
            }
        }
    }

    #[test]
    fn policy_metadata_helpers() {
        assert!(Policy::HostCpu.is_host());
        assert!(!Policy::Conduit.is_host());
        assert!(Policy::Conduit.pays_offloader_overhead());
        assert!(!Policy::Ideal.pays_offloader_overhead());
        assert!(!Policy::HostGpu.pays_offloader_overhead());
        assert!(Policy::Ideal.is_contention_free());
        assert_eq!(Policy::ALL.len(), 11);
        assert_eq!(Policy::Conduit.to_string(), "Conduit");
    }
}
