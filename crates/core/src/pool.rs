//! A two-class work scheduler for fanning independent simulations out
//! across CPU cores.
//!
//! [`crate::Session`] owns one of these. Work arrives in two classes:
//!
//! * the **lane class** ([`ThreadPool::execute_lane`]) carries per-device
//!   FIFO lane tasks — short, latency-sensitive walks of one warm device's
//!   request stream;
//! * the **bulk class** ([`ThreadPool::execute`]) carries everything
//!   throughput-bound: fresh-request fan-out, figure sweeps, repeats.
//!
//! A fixed number of worker slots is **reserved for the lane class**
//! ([`ThreadPool::lane_slots`]): a reserved worker always dequeues lane
//! work first, so a ready lane task never waits behind the queued bulk
//! backlog (the "fresh cursor" of a big batch). The remaining workers
//! prefer bulk work, so a burst of lane tasks can never starve the bulk
//! class out of its slots. Stealing across classes is allowed in both
//! directions *when a worker's own class is idle*: a reserved worker with
//! no lane work picks up bulk jobs (bulk→lane-idle), and a bulk worker
//! with an empty bulk queue helps drain lanes — each class only donates
//! its workers' idle time, never its reserved capacity.
//!
//! The pool executes boxed `FnOnce` jobs; a panicking job is contained (the
//! worker thread survives and keeps serving later jobs). Dropping the pool
//! drains both queues before joining the workers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The scheduling class of a submitted job. See the [module
/// documentation](self) for the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-sensitive per-device lane tasks; served first by the
    /// reserved lane slots.
    Lane,
    /// Throughput-bound work (fresh fan-out, sweeps); served first by the
    /// unreserved workers.
    Bulk,
}

/// The two class queues plus the shutdown flag, guarded by one mutex.
struct Queues {
    lane: VecDeque<Job>,
    bulk: VecDeque<Job>,
    shutdown: bool,
}

impl Queues {
    /// Dequeues the next job for a worker of the given preference:
    /// own-class first, then a steal from the other class.
    fn pop_for(&mut self, prefers: JobClass) -> Option<Job> {
        match prefers {
            JobClass::Lane => self.lane.pop_front().or_else(|| self.bulk.pop_front()),
            JobClass::Bulk => self.bulk.pop_front().or_else(|| self.lane.pop_front()),
        }
    }
}

struct Shared {
    queues: Mutex<Queues>,
    available: Condvar,
}

/// A fixed-size pool of worker threads executing boxed jobs in two
/// scheduling classes (see the [module documentation](self)).
///
/// # Examples
///
/// ```
/// use conduit::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use std::sync::mpsc::channel;
///
/// let pool = ThreadPool::new(2);
/// let hits = Arc::new(AtomicUsize::new(0));
/// let (tx, rx) = channel();
/// for _ in 0..8 {
///     let hits = hits.clone();
///     let tx = tx.clone();
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///         tx.send(()).unwrap();
///     });
/// }
/// for _ in 0..8 {
///     rx.recv().unwrap();
/// }
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    lane_slots: usize,
}

impl ThreadPool {
    /// Spawns a pool with `size` worker threads (clamped to at least one)
    /// and the default lane reservation: one slot in four, at least one.
    /// A single-worker pool serves both classes lane-first.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        ThreadPool::with_lane_slots(size, Self::default_lane_slots(size))
    }

    /// The default number of reserved lane slots for a pool of `size`
    /// workers: a quarter of the pool, at least one.
    pub fn default_lane_slots(size: usize) -> usize {
        (size.max(1) / 4).max(1)
    }

    /// Spawns a pool with `size` workers of which `lane_slots` (clamped to
    /// `1..=size`) prefer the lane class; the rest prefer bulk.
    pub fn with_lane_slots(size: usize, lane_slots: usize) -> Self {
        let size = size.max(1);
        let lane_slots = lane_slots.clamp(1, size);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                lane: VecDeque::new(),
                bulk: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..size)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let prefers = if slot < lane_slots {
                    JobClass::Lane
                } else {
                    JobClass::Bulk
                };
                std::thread::spawn(move || worker_loop(&shared, prefers))
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            lane_slots,
        }
    }

    /// A pool with one worker per available CPU core.
    pub fn per_core() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(cores)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Number of worker slots reserved for the lane class.
    pub fn lane_slots(&self) -> usize {
        self.lane_slots
    }

    /// Enqueues a **bulk-class** job; some worker thread will execute it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_class(JobClass::Bulk, job);
    }

    /// Enqueues a **lane-class** job: it is dequeued ahead of any queued
    /// bulk work by the reserved lane slots (and by bulk workers whose own
    /// queue is empty).
    pub fn execute_lane(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_class(JobClass::Lane, job);
    }

    /// Enqueues a job in an explicit class.
    pub fn execute_class(&self, class: JobClass, job: impl FnOnce() + Send + 'static) {
        let mut queues = self.shared.queues.lock().expect("pool queue lock");
        debug_assert!(!queues.shutdown, "execute after ThreadPool drop began");
        match class {
            JobClass::Lane => queues.lane.push_back(Box::new(job)),
            JobClass::Bulk => queues.bulk.push_back(Box::new(job)),
        }
        drop(queues);
        self.shared.available.notify_one();
    }
}

/// One worker: dequeue by class preference, contain panics, exit once
/// shutdown is flagged *and* both queues are drained.
fn worker_loop(shared: &Shared, prefers: JobClass) {
    loop {
        let job = {
            let mut queues = shared.queues.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queues.pop_for(prefers) {
                    break Some(job);
                }
                if queues.shutdown {
                    break None;
                }
                queues = shared
                    .available
                    .wait(queues)
                    .expect("pool queue lock poisoned");
            }
        };
        match job {
            // A panicking job must not kill the worker: contain it and
            // keep serving later batches.
            Some(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            None => break,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Flag shutdown; workers drain both queues before exiting.
        self.shared.queues.lock().expect("pool queue lock").shutdown = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.workers.len())
            .field("lane_slots", &self.lane_slots)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        assert_eq!(pool.lane_slots(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for i in 0..32usize {
            let done = done.clone();
            let tx = tx.clone();
            let class = if i % 3 == 0 {
                JobClass::Lane
            } else {
                JobClass::Bulk
            };
            pool.execute_class(class, move || {
                done.fetch_add(i, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..32 {
            rx.recv().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), (0..32).sum::<usize>());
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.lane_slots(), 1);
    }

    #[test]
    fn lane_slots_are_clamped_to_pool_size() {
        let pool = ThreadPool::with_lane_slots(2, 9);
        assert_eq!(pool.lane_slots(), 2);
        let pool = ThreadPool::with_lane_slots(3, 0);
        assert_eq!(pool.lane_slots(), 1);
        assert_eq!(ThreadPool::default_lane_slots(8), 2);
        assert_eq!(ThreadPool::default_lane_slots(1), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("contained"));
        pool.execute_lane(|| panic!("also contained"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn drop_joins_workers_after_draining_both_classes() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for i in 0..8 {
                let done = done.clone();
                let run = move || {
                    done.fetch_add(1, Ordering::Relaxed);
                };
                if i % 2 == 0 {
                    pool.execute(run);
                } else {
                    pool.execute_lane(run);
                }
            }
        }
        // Drop joined the workers, so every queued job ran.
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    /// The scheduling guarantee the session relies on: with the single
    /// worker busy, queued lane jobs are dequeued ahead of bulk jobs that
    /// were enqueued *earlier* — a ready lane task never waits behind the
    /// bulk backlog. (The old single-queue pool ran these FIFO: all bulk
    /// first.)
    #[test]
    fn lane_jobs_overtake_the_queued_bulk_backlog() {
        let pool = ThreadPool::with_lane_slots(1, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Occupy the only worker so subsequent jobs queue up.
        let (gate_tx, gate_rx) = channel::<()>();
        pool.execute(move || {
            gate_rx.recv().unwrap();
        });
        let (done_tx, done_rx) = channel();
        for i in 0..4 {
            let order = order.clone();
            let done = done_tx.clone();
            pool.execute(move || {
                order.lock().unwrap().push(format!("bulk-{i}"));
                done.send(()).unwrap();
            });
        }
        for i in 0..2 {
            let order = order.clone();
            let done = done_tx.clone();
            pool.execute_lane(move || {
                order.lock().unwrap().push(format!("lane-{i}"));
                done.send(()).unwrap();
            });
        }
        gate_tx.send(()).unwrap();
        for _ in 0..6 {
            done_rx.recv().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(
            *order,
            vec!["lane-0", "lane-1", "bulk-0", "bulk-1", "bulk-2", "bulk-3"],
            "lane jobs must be dequeued ahead of the earlier-queued bulk backlog"
        );
    }

    /// The reserved slot works both ways: when both queues hold work, a
    /// lane-preferring worker picks lane work and a bulk-preferring worker
    /// picks bulk work, so neither class starves the other out of its
    /// reservation. Asserted on the dequeue policy itself — the only part
    /// of the schedule that is deterministic under OS thread scheduling.
    #[test]
    fn dequeue_prefers_own_class_and_steals_when_idle() {
        let order: Arc<Mutex<Vec<(JobClass, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let job = |class: JobClass, i: usize| -> Job {
            let order = Arc::clone(&order);
            Box::new(move || order.lock().unwrap().push((class, i)))
        };
        let mut queues = Queues {
            lane: VecDeque::new(),
            bulk: VecDeque::new(),
            shutdown: false,
        };
        for i in 0..2 {
            queues.lane.push_back(job(JobClass::Lane, i));
            queues.bulk.push_back(job(JobClass::Bulk, i));
        }
        // Both queues populated: each preference serves its own class, in
        // FIFO order within the class.
        queues.pop_for(JobClass::Lane).unwrap()();
        queues.pop_for(JobClass::Bulk).unwrap()();
        queues.pop_for(JobClass::Bulk).unwrap()();
        // Bulk queue now empty: a bulk worker steals the remaining lane job
        // (lane→bulk-idle help) rather than idling.
        queues.pop_for(JobClass::Bulk).unwrap()();
        assert!(queues.pop_for(JobClass::Lane).is_none());
        assert_eq!(
            *order.lock().unwrap(),
            vec![
                (JobClass::Lane, 0),
                (JobClass::Bulk, 0),
                (JobClass::Bulk, 1),
                (JobClass::Lane, 1),
            ]
        );
    }

    /// Bulk→lane-idle stealing: a reserved lane worker with no lane work
    /// picks up bulk jobs instead of idling.
    #[test]
    fn idle_lane_slots_steal_bulk_work() {
        let pool = ThreadPool::with_lane_slots(1, 1);
        let (tx, rx) = channel();
        for i in 0..4 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
