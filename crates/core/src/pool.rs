//! A small work-stealing thread pool for fanning independent simulations out
//! across CPU cores.
//!
//! [`crate::Session`] owns one of these: batch submissions
//! ([`crate::Session::submit_batch`]) enqueue worker loops that pull run
//! indices from a shared atomic counter, so long-running policies never
//! serialize behind short ones and the pool's threads are reused across
//! batches instead of being respawned per sweep.
//!
//! The pool executes boxed `FnOnce` jobs; a panicking job is contained (the
//! worker thread survives and keeps serving later jobs).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
///
/// # Examples
///
/// ```
/// use conduit::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use std::sync::mpsc::channel;
///
/// let pool = ThreadPool::new(2);
/// let hits = Arc::new(AtomicUsize::new(0));
/// let (tx, rx) = channel();
/// for _ in 0..8 {
///     let hits = hits.clone();
///     let tx = tx.clone();
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///         tx.send(()).unwrap();
///     });
/// }
/// for _ in 0..8 {
///     rx.recv().unwrap();
/// }
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `size` worker threads (clamped to at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    let job = {
                        let guard = receiver.lock().expect("pool receiver lock");
                        guard.recv()
                    };
                    match job {
                        // A panicking job must not kill the worker: contain
                        // it and keep serving later batches.
                        Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                        Err(_) => break,
                    }
                })
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// A pool with one worker per available CPU core.
    pub fn per_core() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(cores)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker thread will execute it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("pool workers live until drop");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail, ending its
        // loop after it drains the queue.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for i in 0..32usize {
            let done = done.clone();
            let tx = tx.clone();
            pool.execute(move || {
                done.fetch_add(i, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..32 {
            rx.recv().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), (0..32).sum::<usize>());
    }

    #[test]
    fn zero_size_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("contained"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..8 {
                let done = done.clone();
                pool.execute(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // Drop joined the workers, so every queued job ran.
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }
}
