//! Run reports: everything the benchmark harness needs to regenerate the
//! paper's figures.

use conduit_sim::{CostBreakdown, LatencyStats};
use conduit_types::{Duration, Energy, ExecutionSite, InstId, OpType, Resource, SimTime};

use crate::policy::Policy;

/// Energy totals split into data movement and computation (Figure 7(b)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergySummary {
    /// Energy spent moving data (PCIe, flash channels, DRAM bus, relocation).
    pub data_movement: Energy,
    /// Energy spent computing (on any execution site).
    pub compute: Energy,
}

impl EnergySummary {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.data_movement + self.compute
    }

    /// Fraction of the total that is data movement (0 when empty).
    pub fn data_movement_fraction(&self) -> f64 {
        let total = self.total().as_nj();
        if total == 0.0 {
            0.0
        } else {
            self.data_movement.as_nj() / total
        }
    }
}

/// How many instructions each execution site received (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadMix {
    /// Instructions executed on the SSD controller cores.
    pub isp: u64,
    /// Instructions executed in SSD DRAM.
    pub pud: u64,
    /// Instructions executed in the flash chips.
    pub ifp: u64,
    /// Instructions executed on the host (OSP baselines only).
    pub host: u64,
}

impl OffloadMix {
    /// Records one placement decision.
    pub fn record(&mut self, site: ExecutionSite) {
        match site {
            ExecutionSite::HostCpu | ExecutionSite::HostGpu => self.host += 1,
            ExecutionSite::Ssd(Resource::Isp) => self.isp += 1,
            ExecutionSite::Ssd(Resource::PudSsd) => self.pud += 1,
            ExecutionSite::Ssd(Resource::Ifp) => self.ifp += 1,
        }
    }

    /// Total placements recorded.
    pub fn total(&self) -> u64 {
        self.isp + self.pud + self.ifp + self.host
    }

    /// Fractions `(isp, pud, ifp, host)`; all zero when empty.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.isp as f64 / t,
            self.pud as f64 / t,
            self.ifp as f64 / t,
            self.host as f64 / t,
        )
    }
}

/// One entry of the instruction → resource timeline (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// The instruction.
    pub inst: InstId,
    /// Its operation type.
    pub op: OpType,
    /// Where it executed.
    pub site: ExecutionSite,
    /// When it was dispatched.
    pub dispatched: SimTime,
    /// When it completed.
    pub completed: SimTime,
}

/// Offloader overhead statistics observed during a run (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverheadReport {
    /// Instructions that paid the offloader overhead.
    pub count: u64,
    /// Total overhead time.
    pub total: Duration,
    /// Worst single-instruction overhead.
    pub max: Duration,
}

impl OverheadReport {
    /// Records one instruction's overhead.
    pub fn record(&mut self, overhead: Duration) {
        self.count += 1;
        self.total += overhead;
        self.max = self.max.max(overhead);
    }

    /// Mean per-instruction overhead (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count
        }
    }
}

/// Diagnostics of the parallel (DAG-scheduled) strip evaluator: how much
/// of a run's expensive per-strip work landed on pool workers, how often
/// the program-order committer had to wait for an in-flight worker, and how
/// the placement speculation fared.
///
/// **Equality is intentionally vacuous.** The run's *results* — times,
/// energy, placements, timelines, device state — are bit-identical across
/// the scalar, sequential-batched, and parallel paths; these counters
/// describe *how* the run was computed, and several of them
/// (`parallel_evals` vs `inline_evals`, `commit_stalls`) depend on
/// wall-clock thread timing. Deriving `PartialEq` here would make
/// `RunReport`/`RunSummary` equality — the repo's bit-identity oracle —
/// fail between modes that produce identical results. `PartialEq` therefore
/// always returns `true`; tests that care about the counters compare the
/// fields directly.
#[derive(Debug, Clone, Copy, Default, Eq)]
pub struct ParallelismStats {
    /// Strips whose expensive evaluation (estimate hoisting, overhead
    /// precomputation, speculative placement) a pool worker finished before
    /// the committer reached them.
    pub parallel_evals: u64,
    /// Strips the program-order committer evaluated itself (no worker had
    /// claimed them yet — e.g. the pool was busy, or commit outran the
    /// scan).
    pub inline_evals: u64,
    /// Times the committer arrived at a strip a worker was still
    /// evaluating and had to spin until it finished.
    pub commit_stalls: u64,
    /// Speculated placements (DAG-eligible strips) confirmed by the
    /// program-order commit. Deterministic for a given program ×
    /// configuration — only *whether* speculation ran varies by mode.
    pub speculation_hits: u64,
    /// Speculated placements the commit recomputation overturned (live
    /// residency or queueing diverged from the pure plan-time context).
    pub speculation_misses: u64,
}

impl PartialEq for ParallelismStats {
    /// Always `true` — see the type-level docs: these are execution
    /// diagnostics, not results, and must not break the bit-identity
    /// equality of [`RunReport`] across scalar/sequential/parallel modes.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl ParallelismStats {
    /// Total strips that went through the two-phase evaluator.
    pub fn evals(&self) -> u64 {
        self.parallel_evals + self.inline_evals
    }

    /// Fraction of strip evaluations that landed on pool workers (0 when
    /// the run never entered the parallel path).
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.evals();
        if total == 0 {
            0.0
        } else {
            self.parallel_evals as f64 / total as f64
        }
    }

    /// Accumulates another run's counters (repeat loops).
    pub fn accumulate(&mut self, other: &ParallelismStats) {
        self.parallel_evals += other.parallel_evals;
        self.inline_evals += other.inline_evals;
        self.commit_stalls += other.commit_stalls;
        self.speculation_hits += other.speculation_hits;
        self.speculation_misses += other.speculation_misses;
    }
}

/// The result of executing one workload under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Workload (vector program) name.
    pub workload: String,
    /// The policy that was used.
    pub policy: Policy,
    /// Number of vector instructions executed.
    pub instructions: usize,
    /// End-to-end execution time.
    pub total_time: Duration,
    /// Energy totals.
    pub energy: EnergySummary,
    /// Where the execution time went.
    pub breakdown: CostBreakdown,
    /// Instruction placement counts.
    pub offload_mix: OffloadMix,
    /// Per-instruction end-to-end latencies.
    pub latency: LatencyStats,
    /// Instruction → resource timeline (empty if not recorded).
    pub timeline: Vec<TimelineEntry>,
    /// Offloader overhead statistics.
    pub overhead: OverheadReport,
    /// Parallel strip-evaluator diagnostics (all-zero for scalar and
    /// sequential runs; excluded from equality — see [`ParallelismStats`]).
    pub parallelism: ParallelismStats,
}

impl RunReport {
    /// Speedup of this run relative to `baseline` (>1 means this run is
    /// faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        let own = self.total_time.as_ns();
        if own == 0.0 {
            return f64::INFINITY;
        }
        baseline.total_time.as_ns() / own
    }

    /// This run's energy as a fraction of `baseline`'s (<1 means this run
    /// uses less energy).
    pub fn energy_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.energy.total().as_nj();
        if base == 0.0 {
            return 0.0;
        }
        self.energy.total().as_nj() / base
    }
}

/// Geometric mean of a set of strictly positive values (used for the GMEAN
/// columns of Figures 5 and 7). Returns 0 for an empty input.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_mix_fractions() {
        let mut mix = OffloadMix::default();
        mix.record(ExecutionSite::Ssd(Resource::Ifp));
        mix.record(ExecutionSite::Ssd(Resource::Ifp));
        mix.record(ExecutionSite::Ssd(Resource::PudSsd));
        mix.record(ExecutionSite::Ssd(Resource::Isp));
        mix.record(ExecutionSite::HostCpu);
        assert_eq!(mix.total(), 5);
        let (isp, pud, ifp, host) = mix.fractions();
        assert!((ifp - 0.4).abs() < 1e-9);
        assert!((pud - 0.2).abs() < 1e-9);
        assert!((isp - 0.2).abs() < 1e-9);
        assert!((host - 0.2).abs() < 1e-9);
        assert_eq!(OffloadMix::default().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn energy_summary_fraction() {
        let s = EnergySummary {
            data_movement: Energy::from_nj(30.0),
            compute: Energy::from_nj(10.0),
        };
        assert_eq!(s.total(), Energy::from_nj(40.0));
        assert!((s.data_movement_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(EnergySummary::default().data_movement_fraction(), 0.0);
    }

    #[test]
    fn overhead_report_mean_and_max() {
        let mut o = OverheadReport::default();
        o.record(Duration::from_us(2.0));
        o.record(Duration::from_us(4.0));
        assert_eq!(o.mean(), Duration::from_us(3.0));
        assert_eq!(o.max, Duration::from_us(4.0));
        assert_eq!(OverheadReport::default().mean(), Duration::ZERO);
    }

    #[test]
    fn speedup_and_energy_ratios() {
        let fast = RunReport {
            workload: "w".into(),
            policy: Policy::Conduit,
            instructions: 1,
            total_time: Duration::from_us(10.0),
            energy: EnergySummary {
                data_movement: Energy::from_nj(5.0),
                compute: Energy::from_nj(5.0),
            },
            breakdown: CostBreakdown::zero(),
            offload_mix: OffloadMix::default(),
            latency: LatencyStats::new(),
            timeline: Vec::new(),
            overhead: OverheadReport::default(),
            parallelism: ParallelismStats::default(),
        };
        let slow = RunReport {
            policy: Policy::HostCpu,
            total_time: Duration::from_us(40.0),
            energy: EnergySummary {
                data_movement: Energy::from_nj(30.0),
                compute: Energy::from_nj(10.0),
            },
            ..fast.clone()
        };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((fast.energy_vs(&slow) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }
}
