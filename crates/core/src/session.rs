//! The service-level execution API: [`Session`], [`RunRequest`],
//! [`RunSummary`].
//!
//! The runtime engine ([`crate::RuntimeEngine`]) simulates one program on one
//! device; a *server* wants to compile (vectorize) a program once and then
//! execute it under many policies, configurations and request streams. This
//! module is that server surface:
//!
//! * a [`Session`] owns the device/host configuration, a persistent
//!   **program registry**, a lazily-started work-stealing thread pool, and a
//!   **pool of named warm devices**;
//! * programs are registered once ([`Session::register`] →
//!   [`ProgramId`]) and can be persisted across processes via the compact
//!   registry serialization ([`Session::export_registry`] /
//!   [`Session::import_registry`]), so vectorizer output is never recomputed;
//! * a [`RunRequest`] is a cheap, cloneable description of one run: policy,
//!   cost-function ablation, repeat count, *collection flags* (timeline
//!   on/off, percentile set, energy split), and the device it runs on;
//! * results are split into an always-cheap [`RunSummary`] (times, energy,
//!   offload mix, histogram-backed latency percentiles — constant memory)
//!   and opt-in [`RunArtifacts`] (the full per-instruction timeline);
//! * **fresh** runs (the default) each simulate on a pristine device, so
//!   [`Session::submit_batch`] fans them out across the pool with results
//!   **bit-identical** to running them serially;
//! * **warm** runs target a named device from the session's pool
//!   ([`Session::create_device`] → [`DeviceHandle`],
//!   [`RunRequest::on_device`]): each device's persistent
//!   [`conduit_sim::DeviceState`] (FTL mappings, coherence directory, GC
//!   debt, wear) ages across its request stream. In a batch, each device is
//!   a **FIFO lane** — serial within the device, parallel across devices
//!   and alongside the fresh fan-out — and outcomes stay bit-identical to a
//!   fully serial submission of the same batch. On the thread pool, lane
//!   tasks run in the pool's reserved **lane class**
//!   ([`crate::pool::JobClass`]), so a ready lane task never waits behind
//!   the queued fresh backlog;
//! * requests can arrive **open-loop**: [`RunRequest::arriving_at`] places
//!   a request's arrival on the batch timeline, the device's stream clock
//!   advances to `max(previous finish, arrival)`, and
//!   [`RunSummary::queueing_time`] (arrival-relative waiting behind earlier
//!   requests in the lane) is separated from [`RunSummary::service_time`]
//!   (the run's own execution). The default arrival — the instant the batch
//!   is submitted — preserves closed-loop semantics: request *i* issues at
//!   request *i−1*'s finish time;
//! * device aging is **checkpointable**: [`Session::export_device`]
//!   serializes a device (stream clock + complete
//!   [`conduit_sim::DeviceState`]) into a compact versioned byte stream and
//!   [`Session::import_device`] revives it — in the same session or another
//!   process — with bit-identical replay.
//!
//! # Examples
//!
//! ```
//! use conduit::{Policy, RunRequest, Session};
//! use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
//!
//! let mut prog = VectorProgram::new("demo");
//! let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
//! prog.push_binary(OpType::Add, Operand::result(x), Operand::page(0));
//!
//! let mut session = Session::builder(SsdConfig::small_for_tests()).build();
//! let id = session.register(prog)?;
//!
//! let outcome = session.submit(&RunRequest::new(id, Policy::Conduit))?;
//! assert_eq!(outcome.summary.instructions, 2);
//! assert!(outcome.artifacts.is_none()); // timelines are opt-in
//!
//! // A pool of named warm devices, one per tenant: each ages independently.
//! let tenant_a = session.create_device("tenant-a");
//! let tenant_b = session.create_device("tenant-b");
//! let batch = session.submit_batch(&[
//!     RunRequest::new(id, Policy::Conduit).on_device(tenant_a),
//!     RunRequest::new(id, Policy::Conduit).on_device(tenant_b),
//!     RunRequest::new(id, Policy::HostCpu).on_device(tenant_a),
//!     RunRequest::new(id, Policy::Ideal), // fresh, fans out alongside
//! ])?;
//! // Lane scheduling: tenant-a's two requests ran serially (the second
//! // queued behind the first on the stream clock); tenant-b ran in
//! // parallel on its own device.
//! assert!(batch[2].summary.queueing_time > conduit_types::Duration::ZERO);
//! assert_eq!(batch[1].summary.queueing_time, conduit_types::Duration::ZERO);
//!
//! // Device-aging checkpoints persist across processes.
//! let bytes = session.export_device(tenant_a)?;
//! let mut other = Session::builder(SsdConfig::small_for_tests()).build();
//! let revived = other.import_device("tenant-a", &bytes)?;
//! assert_eq!(
//!     other.device_snapshot(revived),
//!     session.device_snapshot(tenant_a)
//! );
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};

use conduit_sim::{
    CostBreakdown, DeviceDelta, DeviceSnapshot, DeviceState, LatencyStats, SsdDevice,
};
use conduit_types::bytes::{put_u16, put_u32, put_u64, Reader};
use conduit_types::{
    ConduitError, Duration, Energy, FaultConfig, HostConfig, Result, SimTime, SsdConfig,
    VectorProgram,
};

use crate::batch::StripPlan;
use crate::cost::CostFunction;
use crate::engine::{RunOptions, RuntimeEngine};
use crate::policy::Policy;
use crate::pool::ThreadPool;
use crate::report::{
    EnergySummary, OffloadMix, OverheadReport, ParallelismStats, RunReport, TimelineEntry,
};

/// Magic bytes identifying a serialized [`ProgramRegistry`].
pub const REGISTRY_MAGIC: [u8; 4] = *b"CPR1";

/// Current registry serialization format version.
pub const REGISTRY_FORMAT_VERSION: u16 = 1;

/// Magic bytes identifying a device checkpoint exported by
/// [`Session::export_device`] (configuration fingerprint + stream clock +
/// embedded [`conduit_sim::DeviceState`] image).
pub const DEVICE_CHECKPOINT_MAGIC: [u8; 4] = *b"CDK1";

/// Current device-checkpoint format version. Version 3 wraps the version-3
/// [`conduit_sim::DeviceState`] image (sparse resource timelines, the
/// fault-injection plan cursor, retired-block accounting and device health),
/// so a degraded device survives export/import bit-identically. Like
/// version 2 it embeds the exporting session's combined configuration
/// fingerprint ([`SsdConfig::fingerprint`] +
/// [`conduit_types::HostConfig::fingerprint`] — host rooflines shape a warm
/// stream's clocks too), so importing a checkpoint into a session with
/// *any* configuration difference — even one with the same geometry, where
/// the shape checks cannot tell — is a hard
/// [`ConduitError::CorruptCheckpoint`] instead of a silent timing mismatch.
pub const DEVICE_CHECKPOINT_FORMAT_VERSION: u16 = 3;

/// Format version of legacy fingerprinted checkpoints wrapping a version-2
/// device-state image (no fault state, dense resource timelines). Still
/// importable; no longer written.
pub const DEVICE_CHECKPOINT_FORMAT_VERSION_V2: u16 = 2;

/// Format version of legacy checkpoints without a configuration
/// fingerprint. Still importable ([`Session::import_device`] falls back to
/// the structural shape check); no longer written.
pub const DEVICE_CHECKPOINT_FORMAT_VERSION_V1: u16 = 1;

/// The percentile set collected when a request does not override it.
pub const DEFAULT_PERCENTILES: [f64; 3] = [0.50, 0.99, 0.9999];

/// Handle to a program registered in a [`Session`]'s [`ProgramRegistry`].
///
/// Ids are dense indices in registration order, so they stay valid across
/// [`Session::export_registry`] / [`Session::import_registry`] round trips
/// into a fresh session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProgramId(u32);

impl ProgramId {
    /// The dense registration-order index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProgramId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Handle to a named warm device in a [`Session`]'s device pool.
///
/// Minted by [`Session::create_device`] / [`Session::import_device`].
/// Handles are dense indices in creation order and are only meaningful
/// within the session that minted them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceHandle(u32);

impl DeviceHandle {
    /// The dense creation-order index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DeviceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// An ordered, **content-addressed** collection of validated, reusable
/// [`VectorProgram`]s.
///
/// Programs are stored behind [`Arc`] so batch fan-out shares them across
/// worker threads without copying instruction streams. Registration dedupes
/// by content: registering (or importing) a program whose serialized bytes
/// match an already-registered one returns the existing [`ProgramId`]
/// instead of storing a second copy, so a fleet of sessions importing the
/// same program store converges on one entry per distinct program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramRegistry {
    programs: Vec<Arc<VectorProgram>>,
    /// Content hash (FNV-1a over [`VectorProgram::to_bytes`]) → ids with
    /// that hash. Collisions are resolved by comparing the programs.
    by_hash: HashMap<u64, Vec<ProgramId>>,
}

/// FNV-1a over a program's compact serialization: the content address used
/// by [`ProgramRegistry`] deduplication (the shared workspace hash, also
/// behind [`SsdConfig::fingerprint`]).
fn content_hash(bytes: &[u8]) -> u64 {
    conduit_types::bytes::fnv1a(bytes)
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ProgramRegistry::default()
    }

    /// Validates and registers a program, returning its handle. If an
    /// identical program (same serialized content) is already registered,
    /// its existing handle is returned and nothing is stored.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] if the program fails
    /// [`VectorProgram::validate`].
    pub fn register(&mut self, program: VectorProgram) -> Result<ProgramId> {
        program.validate().map_err(ConduitError::invalid_program)?;
        Ok(self.insert_deduped(Arc::new(program)))
    }

    /// Stores `program` unless an identical one already exists; returns the
    /// canonical id either way.
    fn insert_deduped(&mut self, program: Arc<VectorProgram>) -> ProgramId {
        let hash = content_hash(&program.to_bytes());
        if let Some(candidates) = self.by_hash.get(&hash) {
            for &id in candidates {
                if *self.programs[id.index()] == *program {
                    return id;
                }
            }
        }
        let id = ProgramId(self.programs.len() as u32);
        self.programs.push(program);
        self.by_hash.entry(hash).or_default().push(id);
        id
    }

    /// Stores `program` unconditionally at the next id. Used when decoding
    /// a serialized registry: version-1 byte streams written before content
    /// addressing may legally contain duplicates, and callers that
    /// persisted [`ProgramId`]s alongside the bytes rely on ids staying
    /// positional — deduplication happens at the [`Session`] boundary
    /// ([`Session::import_registry`]), which returns the id mapping.
    fn insert_positional(&mut self, program: Arc<VectorProgram>) {
        let hash = content_hash(&program.to_bytes());
        let id = ProgramId(self.programs.len() as u32);
        self.programs.push(program);
        self.by_hash.entry(hash).or_default().push(id);
    }

    /// The program behind a handle, if registered.
    pub fn get(&self, id: ProgramId) -> Option<&Arc<VectorProgram>> {
        self.programs.get(id.index())
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no programs are registered.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Iterator over `(id, program)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ProgramId, &VectorProgram)> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProgramId(i as u32), p.as_ref()))
    }

    /// Serializes every registered program into one compact byte stream
    /// (magic + version + count, then each program via
    /// [`VectorProgram::to_bytes`] behind a `u32` length).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&REGISTRY_MAGIC);
        put_u16(&mut out, REGISTRY_FORMAT_VERSION);
        put_u32(&mut out, self.programs.len() as u32);
        for program in &self.programs {
            let bytes = program.to_bytes();
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Decodes a registry serialized by [`ProgramRegistry::to_bytes`].
    /// Programs keep their serialized positions (ids are stable even for
    /// pre-content-addressing streams that contain duplicates); merging
    /// with deduplication is [`Session::import_registry`]'s job.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for a bad magic/version,
    /// truncation, trailing bytes, or any embedded program that fails to
    /// decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<ProgramRegistry> {
        let corrupt =
            |reason: &str| ConduitError::invalid_program(format!("serialized registry: {reason}"));
        if bytes.len() < 4 || bytes[..4] != REGISTRY_MAGIC {
            return Err(corrupt("bad magic"));
        }
        // The shared Reader reports truncation as CorruptCheckpoint; this
        // decoder's contract is InvalidProgram for any malformed input.
        let mut r = Reader::new(&bytes[4..]);
        let mut decode = || -> Result<ProgramRegistry> {
            let version = r.u16()?;
            if version != REGISTRY_FORMAT_VERSION {
                return Err(corrupt("unsupported format version"));
            }
            let count = r.u32()? as usize;
            let mut registry = ProgramRegistry::new();
            for _ in 0..count {
                let len = r.u32()? as usize;
                let program = VectorProgram::from_bytes(r.take(len)?)?;
                registry.insert_positional(Arc::new(program));
            }
            if !r.finished() {
                return Err(corrupt("trailing bytes"));
            }
            Ok(registry)
        };
        decode().map_err(|e| match e {
            ConduitError::CorruptCheckpoint { .. } => corrupt("truncated"),
            other => other,
        })
    }
}

/// Where a [`RunRequest`]'s program comes from.
#[derive(Debug, Clone, PartialEq)]
enum ProgramSource {
    /// A program registered in the session's registry (the normal, reusable
    /// path).
    Registered(ProgramId),
    /// A one-shot program carried by the request itself (throwaway
    /// experiments that never reuse the program).
    Inline(Arc<VectorProgram>),
}

/// A declarative description of one run: which program, which policy, which
/// device, when it arrives, and what to collect. Cheap to clone; built
/// builder-style.
///
/// Subsumes the engine-level [`RunOptions`]: policy, cost-function ablation
/// and overhead charging map straight through, while the collection flags
/// control how much the result carries — summaries are always cheap,
/// timelines ([`RunArtifacts`]) are opt-in.
///
/// # Examples
///
/// ```
/// use conduit::{Policy, RunRequest, Session};
/// use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
///
/// let mut prog = VectorProgram::new("r");
/// prog.push_binary(OpType::And, Operand::page(0), Operand::page(4));
/// let mut session = Session::builder(SsdConfig::small_for_tests()).build();
/// let id = session.register(prog)?;
///
/// let request = RunRequest::new(id, Policy::Conduit)
///     .repeat(3)
///     .percentiles(&[0.5, 0.999])
///     .with_timeline();
/// let outcome = session.submit(&request)?;
/// assert_eq!(outcome.summary.repeats, 3);
/// assert_eq!(outcome.summary.percentiles.len(), 2);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    source: ProgramSource,
    policy: Policy,
    cost_function: CostFunction,
    charge_overheads: bool,
    repeats: u32,
    collect_timeline: bool,
    collect_energy_split: bool,
    percentiles: Vec<f64>,
    /// `None` runs fresh (a pristine device per run/repeat); `Some` targets
    /// a pooled warm device.
    device: Option<DeviceHandle>,
    /// The request's arrival on the batch timeline ([`SimTime::ZERO`] = the
    /// instant the batch is submitted, i.e. closed-loop).
    arrival: SimTime,
    /// Weighted-fair-queueing flow this request belongs to (see
    /// [`RunRequest::weighted`]). Requests on one device lane with the same
    /// flow id form one FIFO sub-queue of that lane's scheduler.
    flow: u32,
    /// The flow's scheduling weight. Lanes whose requests all carry the same
    /// weight serve in plain arrival/request-order FIFO; mixed weights turn
    /// the lane into a deficit-round-robin scheduler.
    weight: u32,
    /// Forces the engine's scalar (pre-batching) run loop.
    force_scalar: bool,
    /// Forces sequential strip evaluation (disables the parallel two-phase
    /// run loop).
    sequential_strips: bool,
}

impl RunRequest {
    /// A request to run a registered program under `policy` with default
    /// collection: no timeline, energy split on, the
    /// [`DEFAULT_PERCENTILES`] set.
    pub fn new(program: ProgramId, policy: Policy) -> Self {
        Self::with_source(ProgramSource::Registered(program), policy)
    }

    /// A request carrying a one-shot program that is not (and will not be)
    /// registered. Accepts an owned program or an `Arc` (so several requests
    /// can share one program without copying it). Prefer
    /// [`Session::register`] + [`RunRequest::new`] when the program runs
    /// more than once.
    pub fn inline(program: impl Into<Arc<VectorProgram>>, policy: Policy) -> Self {
        Self::with_source(ProgramSource::Inline(program.into()), policy)
    }

    fn with_source(source: ProgramSource, policy: Policy) -> Self {
        RunRequest {
            source,
            policy,
            cost_function: CostFunction::conduit(),
            charge_overheads: true,
            repeats: 1,
            collect_timeline: false,
            collect_energy_split: true,
            percentiles: DEFAULT_PERCENTILES.to_vec(),
            device: None,
            arrival: SimTime::ZERO,
            flow: 0,
            weight: 1,
            force_scalar: false,
            sequential_strips: false,
        }
    }

    /// Builder-style: forces the engine's scalar (pre-batching) run loop —
    /// the reference implementation the batched path is differentially
    /// tested against. Results are bit-identical either way; the knob
    /// exists for verification and debugging (`CONDUIT_SCALAR=1` is the
    /// process-wide equivalent).
    pub fn scalar(mut self) -> Self {
        self.force_scalar = true;
        self
    }

    /// Builder-style: forces sequential strip evaluation — the batched run
    /// loop without the parallel DAG evaluator, i.e. every strip's
    /// estimates, overheads and placement are computed inline on the
    /// committing thread. Results are bit-identical either way; the knob
    /// exists for verification and performance comparison
    /// (`CONDUIT_SEQ_STRIPS=1` is the process-wide equivalent).
    pub fn sequential_strips(mut self) -> Self {
        self.sequential_strips = true;
        self
    }

    /// Builder-style: replaces the cost function (for ablations).
    pub fn cost_function(mut self, cf: CostFunction) -> Self {
        self.cost_function = cf;
        self
    }

    /// Builder-style: disables the offloader overhead charges (§4.5).
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// Builder-style: simulates the program `repeats` times (clamped to at
    /// least one). On a fresh device every repeat gets its own pristine
    /// device, so repeats are bit-identical under the deterministic
    /// simulator — the knob exists for throughput measurement and soak-style
    /// stress. On a warm device the repeats run back to back on the
    /// device's stream clock, so each one ages it further.
    pub fn repeat(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Builder-style: runs this request on a named warm device from the
    /// session's pool ([`Session::create_device`]). Requests on the same
    /// device execute serially in request order (a FIFO lane); requests on
    /// different devices execute in parallel in a batch.
    pub fn on_device(mut self, device: DeviceHandle) -> Self {
        self.device = Some(device);
        self
    }

    /// Builder-style: the request **arrives open-loop** at `arrival` on the
    /// batch timeline — time zero is the instant the batch is submitted
    /// (for a warm lane, the device's stream clock at submission; for a
    /// fresh run, the engine's time origin).
    ///
    /// On a warm device the request issues at `max(previous finish,
    /// arrival)`: arriving while the lane is still serving earlier requests
    /// accrues arrival-relative [`RunSummary::queueing_time`], arriving
    /// after the lane drained leaves the device idle for the gap (visible
    /// in [`conduit_sim::DeviceSnapshot::lane_idle_time`]). The default —
    /// `SimTime::ZERO` — reproduces closed-loop semantics: every request is
    /// already waiting when the batch starts.
    ///
    /// On a fresh run the arrival is a pure translation of the timeline
    /// (service time, energy and placement are unchanged) and queueing
    /// stays zero: there is no lane to wait in.
    pub fn arriving_at(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Builder-style: assigns the request to weighted-fair **flow** `flow`
    /// with scheduling weight `weight` (clamped to at least one).
    ///
    /// Within a device lane in [`Session::submit_batch`], requests sharing a
    /// flow id form one FIFO sub-queue. While every request on the lane
    /// carries the *same* weight (the default is weight 1), the lane is the
    /// plain FIFO it has always been — bit-identical to pre-flow scheduling.
    /// As soon as weights differ, the lane serves its sub-queues by **deficit
    /// round robin**: each round every backlogged flow's credit grows by
    /// `quantum × weight` ([`SessionBuilder::drr_quantum`]) and a flow serves
    /// requests while its credit lasts, with the *actual* simulated service
    /// time charged against it. Over a saturated stretch each flow's lane
    /// busy-time share converges to its weight share.
    pub fn weighted(mut self, flow: u32, weight: u32) -> Self {
        self.flow = flow;
        self.weight = weight.max(1);
        self
    }

    /// Builder-style: sets whether the full instruction → resource timeline
    /// is collected into [`RunArtifacts`] (default: off).
    pub fn timeline(mut self, collect: bool) -> Self {
        self.collect_timeline = collect;
        self
    }

    /// Builder-style sugar for [`RunRequest::timeline`]`(true)`.
    pub fn with_timeline(self) -> Self {
        self.timeline(true)
    }

    /// Builder-style: sets whether the summary carries the data-movement /
    /// compute energy split in addition to the total (default: on).
    pub fn energy_split(mut self, collect: bool) -> Self {
        self.collect_energy_split = collect;
        self
    }

    /// Builder-style: replaces the percentile set materialized into
    /// [`RunSummary::percentiles`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any value is outside `[0, 1]`.
    pub fn percentiles(mut self, set: &[f64]) -> Self {
        debug_assert!(
            set.iter().all(|p| (0.0..=1.0).contains(p)),
            "percentiles must be in [0, 1]"
        );
        self.percentiles = set.to_vec();
        self
    }

    /// The policy this request runs under.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of repeats.
    pub fn repeats(&self) -> u32 {
        self.repeats
    }

    /// Whether the timeline will be collected.
    pub fn collects_timeline(&self) -> bool {
        self.collect_timeline
    }

    /// The named device this request targets; `None` means a fresh run.
    pub fn requested_device(&self) -> Option<DeviceHandle> {
        self.device
    }

    /// The request's arrival on the batch timeline (see
    /// [`RunRequest::arriving_at`]).
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// The weighted-fair flow this request belongs to (see
    /// [`RunRequest::weighted`]; default flow 0).
    pub fn flow(&self) -> u32 {
        self.flow
    }

    /// The flow's scheduling weight (see [`RunRequest::weighted`]; default
    /// 1).
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The engine-level options this request maps to.
    fn run_options(&self) -> RunOptions {
        let mut options = RunOptions::new(self.policy).cost_function(self.cost_function);
        if !self.charge_overheads {
            options = options.without_overheads();
        }
        if !self.collect_timeline {
            options = options.without_timeline();
        }
        if self.force_scalar {
            options = options.scalar();
        }
        if self.sequential_strips {
            options = options.with_sequential_strips();
        }
        options
    }
}

/// The always-collected, constant-memory result of a run: everything the
/// figure pipeline and a serving stack's metrics need, and nothing that
/// grows with program length.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Workload (vector program) name.
    pub workload: String,
    /// The policy that was used.
    pub policy: Policy,
    /// Number of vector instructions executed per repeat.
    pub instructions: usize,
    /// How many times the program was simulated (see [`RunRequest::repeat`]).
    pub repeats: u32,
    /// End-to-end time of the run as the submitter saw it:
    /// [`RunSummary::queueing_time`] + [`RunSummary::service_time`].
    pub total_time: Duration,
    /// Time the request spent waiting in its device's FIFO lane between its
    /// **arrival** ([`RunRequest::arriving_at`]; by default the instant the
    /// batch was submitted) and the issue of its first instruction, measured
    /// on the device's stream clock. Always zero for fresh-device runs and
    /// for warm requests that arrived after their lane drained.
    pub queueing_time: Duration,
    /// The run's own execution time: from the instant its first instruction
    /// issued (the device's stream clock) to its last completion.
    pub service_time: Duration,
    /// Total energy of one run.
    pub total_energy: Energy,
    /// Energy split into data movement and computation, when collected.
    pub energy_split: Option<EnergySummary>,
    /// Where the execution time went.
    pub breakdown: CostBreakdown,
    /// Instruction placement counts.
    pub offload_mix: OffloadMix,
    /// Histogram of per-instruction end-to-end latencies (constant memory;
    /// query any quantile via [`LatencyStats::percentile`]).
    pub latency: LatencyStats,
    /// The percentiles requested by the run's [`RunRequest::percentiles`]
    /// set, materialized as `(p, latency)` pairs in request order.
    pub percentiles: Vec<(f64, Duration)>,
    /// Offloader overhead statistics.
    pub overhead: OverheadReport,
    /// Parallel strip-evaluator diagnostics, accumulated across repeats
    /// (all-zero for scalar and sequential runs; excluded from equality —
    /// see [`ParallelismStats`]).
    pub parallelism: ParallelismStats,
    /// The device-side work this run performed (GC invocations, pages
    /// migrated, coherence syncs, wear spread, …): on a fresh device the
    /// run's absolute footprint, on a warm device the *additional* aging it
    /// caused on top of what earlier requests left behind. Repeats
    /// accumulate (see [`conduit_sim::DeviceDelta::accumulate`]).
    pub device_delta: DeviceDelta,
}

impl RunSummary {
    /// Speedup of this run relative to `baseline` (>1 means this run is
    /// faster).
    pub fn speedup_over(&self, baseline: &RunSummary) -> f64 {
        let own = self.total_time.as_ns();
        if own == 0.0 {
            return f64::INFINITY;
        }
        baseline.total_time.as_ns() / own
    }

    /// This run's energy as a fraction of `baseline`'s (<1 means this run
    /// uses less energy).
    pub fn energy_vs(&self, baseline: &RunSummary) -> f64 {
        let base = baseline.total_energy.as_nj();
        if base == 0.0 {
            return 0.0;
        }
        self.total_energy.as_nj() / base
    }

    /// The `p`-quantile per-instruction latency from the histogram (any
    /// quantile, not just the requested set).
    pub fn percentile(&self, p: f64) -> Duration {
        self.latency.percentile(p)
    }
}

/// Opt-in bulky outputs of a run — everything that grows with program
/// length. Requested via [`RunRequest::with_timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// The full per-instruction trace: instruction → execution site with
    /// dispatch/completion times (Figure 10).
    pub timeline: Vec<TimelineEntry>,
}

/// A run's summary plus its optional artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The cheap, always-present summary.
    pub summary: RunSummary,
    /// Bulky opt-in outputs; `None` unless the request asked for them.
    pub artifacts: Option<RunArtifacts>,
}

impl RunOutcome {
    /// Converts into the engine-level [`RunReport`] shape (for code
    /// migrating incrementally onto the session API). The timeline is empty
    /// unless the run collected artifacts; the device delta is dropped, as
    /// the engine-level report predates warm devices.
    pub fn into_run_report(self) -> RunReport {
        let energy = self.summary.energy_split.unwrap_or(EnergySummary {
            data_movement: Energy::ZERO,
            compute: self.summary.total_energy,
        });
        RunReport {
            workload: self.summary.workload,
            policy: self.summary.policy,
            instructions: self.summary.instructions,
            total_time: self.summary.total_time,
            energy,
            breakdown: self.summary.breakdown,
            offload_mix: self.summary.offload_mix,
            latency: self.summary.latency,
            timeline: self.artifacts.map(|a| a.timeline).unwrap_or_default(),
            overhead: self.summary.overhead,
            parallelism: self.summary.parallelism,
        }
    }
}

/// How a planned run executes: on a pristine device, or on one of the
/// session's pooled warm devices (by slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    Fresh,
    Device(usize),
}

/// Everything needed to execute one request with no reference back to the
/// session — the unit shipped to pool workers.
struct RunPlan {
    program: Arc<VectorProgram>,
    options: RunOptions,
    repeats: u32,
    collect_energy_split: bool,
    percentiles: Vec<f64>,
    mode: PlanMode,
    /// Arrival offset on the batch timeline ([`RunRequest::arriving_at`]).
    arrival: Duration,
    /// Weighted-fair flow and weight ([`RunRequest::weighted`]).
    flow: u32,
    weight: u32,
    /// The cached strip decomposition for registered programs (see
    /// [`StripPlan`]); inline programs plan on the fly in the engine.
    strip_plan: Option<Arc<StripPlan>>,
}

/// Shared state of one in-flight batch, shipped to pool workers.
struct BatchState {
    ssd: SsdConfig,
    host: HostConfig,
    faults: FaultConfig,
    plans: Vec<RunPlan>,
}

/// One named warm device of the pool: its lazily-built simulated device and
/// the explicit stream clock of its request lane.
#[derive(Debug)]
struct DeviceSlot {
    name: String,
    /// The fault-injection plan the device is built with on first use
    /// (imported devices carry their own plan inside the checkpoint).
    faults: FaultConfig,
    lane: Mutex<DeviceLane>,
}

impl DeviceSlot {
    fn new(name: impl Into<String>, faults: FaultConfig) -> Self {
        DeviceSlot {
            name: name.into(),
            faults,
            lane: Mutex::new(DeviceLane {
                device: None,
                clock: SimTime::ZERO,
            }),
        }
    }
}

#[derive(Debug)]
struct DeviceLane {
    /// The warm device (immutable models + persistent state), created
    /// lazily on the first run so unused pool members cost nothing.
    device: Option<SsdDevice>,
    /// The stream clock: the finish time of the last request on this
    /// device. The next request issues here.
    clock: SimTime,
}

/// Assembles the outcome from the final run report plus the device work the
/// request performed and the lane wait it observed.
fn build_outcome(
    report: RunReport,
    plan: &RunPlan,
    device_delta: DeviceDelta,
    queueing_time: Duration,
) -> RunOutcome {
    let percentiles = plan
        .percentiles
        .iter()
        .map(|&p| (p, report.latency.percentile(p)))
        .collect();
    let service_time = report.total_time;
    let summary = RunSummary {
        workload: report.workload,
        policy: report.policy,
        instructions: report.instructions,
        repeats: plan.repeats,
        total_time: queueing_time + service_time,
        queueing_time,
        service_time,
        total_energy: report.energy.total(),
        energy_split: plan.collect_energy_split.then_some(report.energy),
        breakdown: report.breakdown,
        offload_mix: report.offload_mix,
        latency: report.latency,
        percentiles,
        overhead: report.overhead,
        parallelism: report.parallelism,
        device_delta,
    };
    let artifacts = plan.options.record_timeline.then_some(RunArtifacts {
        timeline: report.timeline,
    });
    RunOutcome { summary, artifacts }
}

/// Executes a fresh-mode plan: every repeat on its own pristine device, so
/// runs are independent and parallel batches stay bit-identical to serial
/// submission.
fn execute_fresh(
    ssd: &SsdConfig,
    host: &HostConfig,
    faults: FaultConfig,
    plan: &RunPlan,
    pool: Option<&ThreadPool>,
) -> Result<RunOutcome> {
    let engine = RuntimeEngine::with_host(ssd, host);
    let pristine = DeviceSnapshot::default();
    // An open-loop arrival translates the fresh run's timeline (timestamps
    // shift, service time and energy do not); there is no lane to queue in.
    let options = plan.options.starting_at(SimTime::ZERO + plan.arrival);
    let mut report: Option<RunReport> = None;
    let mut delta = DeviceDelta::default();
    let mut parallelism = ParallelismStats::default();
    for _ in 0..plan.repeats {
        // A fresh device per repeat keeps every run independent and the
        // whole batch bit-identical to serial execution. Each repeat's
        // device restarts the session's fault plan from its seed.
        let mut device = SsdDevice::with_faults(ssd, faults)?;
        engine.prepare(&mut device, &plan.program)?;
        let run = engine.run_pooled(
            &mut device,
            &plan.program,
            &options,
            plan.strip_plan.as_ref(),
            pool,
        )?;
        delta.accumulate(device.snapshot().delta_since(&pristine));
        parallelism.accumulate(&run.parallelism);
        report = Some(run);
    }
    let mut report = report.expect("repeats is clamped to at least one");
    report.parallelism = parallelism;
    Ok(build_outcome(report, plan, delta, Duration::ZERO))
}

/// Executes a warm plan on one device lane. The request **arrives** at the
/// batch base (the lane's stream clock when the batch was submitted; the
/// current clock for a lone submit) plus its open-loop arrival offset, and
/// issues at `max(previous finish, arrival)`: the stream clock advances
/// through any idle gap, the arrival-relative wait becomes the outcome's
/// queueing time, and each repeat then issues at its predecessor's finish.
///
/// The lane mutex is what serializes a device's requests: within a device
/// runs execute strictly in the order they take the lock (request order, in
/// both [`Session::submit_batch`] paths), which keeps every per-device
/// stream deterministic and replayable while distinct devices proceed in
/// parallel.
fn execute_on_lane(
    engine: &RuntimeEngine,
    ssd: &SsdConfig,
    slot: &DeviceSlot,
    plan: &RunPlan,
    batch_base: Option<SimTime>,
    pool: Option<&ThreadPool>,
) -> Result<RunOutcome> {
    let mut lane = slot.lane.lock().expect("device-lane mutex poisoned");
    let lane = &mut *lane;
    if lane.device.is_none() {
        lane.device = Some(SsdDevice::with_faults(ssd, slot.faults)?);
    }
    let device = lane.device.as_mut().expect("device was just installed");
    // SimTime + Duration saturates, so a pathological arrival offset clamps
    // at the end of representable time instead of wrapping the clock.
    let arrival = batch_base.unwrap_or(lane.clock) + plan.arrival;
    let before = device.snapshot();
    // Queueing ends when the request's *first* repeat issues; later repeats
    // are part of its own service, not lane wait. An arrival past the
    // previous finish instead leaves the device idle for the gap.
    let queueing_time = lane.clock.saturating_since(arrival);
    let idle_gap = arrival.saturating_since(lane.clock);
    lane.clock = lane.clock.max(arrival);
    let issue = lane.clock;
    let mut report: Result<Option<RunReport>> = Ok(None);
    let mut parallelism = ParallelismStats::default();
    for _ in 0..plan.repeats {
        let start = lane.clock;
        let options = plan.options.starting_at(start);
        // Re-preparing is idempotent for pages the warm device already
        // mapped; only genuinely new pages get placed.
        report = engine
            .prepare(device, &plan.program)
            .and_then(|()| {
                engine.run_pooled(
                    device,
                    &plan.program,
                    &options,
                    plan.strip_plan.as_ref(),
                    pool,
                )
            })
            .map(Some);
        match &report {
            Ok(Some(run)) => {
                lane.clock = start + run.total_time;
                parallelism.accumulate(&run.parallelism);
            }
            // The (possibly partially advanced) device stays with the
            // session so the stream can continue or be inspected.
            _ => break,
        }
    }
    // Lane accounting happens even on a failed request: the device may have
    // partially advanced, and the idle gap was real either way.
    device.record_lane_request(idle_gap, queueing_time, lane.clock.saturating_since(issue));
    let delta = device.snapshot().delta_since(&before);
    let mut report = report?.expect("repeats is clamped to at least one");
    report.parallelism = parallelism;
    Ok(build_outcome(report, plan, delta, queueing_time))
}

/// One flow's FIFO sub-queue inside a mixed-weight lane: the request
/// indices in request order, a cursor, and the flow's deficit credit in
/// picoseconds (negative = the flow overdrew its share and sits out rounds
/// until the per-round top-ups pay the debt back).
struct LaneFlow {
    queue: Vec<usize>,
    head: usize,
    credit: i128,
}

impl LaneFlow {
    fn head_index(&self) -> Option<usize> {
        self.queue.get(self.head).copied()
    }
}

/// Serves one device lane's share of a batch, delivering each outcome to
/// `deliver(request index, outcome)`; `deliver` returns `false` to stop
/// early (the batch collector went away).
///
/// While every request on the lane carries the same weight — the default —
/// the lane is the plain FIFO it has always been: requests execute in
/// request order, bit for bit identical to pre-weight scheduling. Mixed
/// weights switch the lane to **deficit round robin** over per-flow FIFO
/// sub-queues ([`RunRequest::weighted`]):
///
/// * each round visits the flows in first-appearance order; a flow whose
///   head has *arrived* (on the lane's simulated stream clock) earns
///   `quantum × weight` of credit and serves requests while its credit
///   stays positive, with each request's **actual simulated service time**
///   charged against the credit afterwards (so no a-priori cost model is
///   needed — an expensive request just drives the flow's credit negative
///   and it sits out following rounds);
/// * a flow that drains its queue forfeits leftover credit (standard DRR:
///   credit never accumulates across backlog periods);
/// * when no flow has an arrived head, the lane has gone idle: credits
///   reset (a new busy period starts) and the earliest-arriving head is
///   served, advancing the stream clock through the idle gap — the lane
///   stays work-conserving.
///
/// Everything the scheduler consults — arrivals, the stream clock, service
/// times — is simulated time, so the dispatch order is deterministic and
/// identical across pool sizes and across the serial and parallel batch
/// paths. Over a saturated stretch each flow's lane busy-time share
/// converges to `weight / Σ weights`.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    engine: &RuntimeEngine,
    ssd: &SsdConfig,
    slot: &DeviceSlot,
    plans: &[RunPlan],
    indices: &[usize],
    base: SimTime,
    quantum: Duration,
    pool: Option<&ThreadPool>,
    mut deliver: impl FnMut(usize, Result<RunOutcome>) -> bool,
) {
    let uniform = indices
        .windows(2)
        .all(|w| plans[w[0]].weight == plans[w[1]].weight);
    if uniform {
        for &i in indices {
            let outcome = execute_on_lane(engine, ssd, slot, &plans[i], Some(base), pool);
            if !deliver(i, outcome) {
                return;
            }
        }
        return;
    }

    // Per-flow sub-queues in order of first appearance (deterministic in
    // request order).
    let mut flows: Vec<(u32, LaneFlow)> = Vec::new();
    for &i in indices {
        let key = plans[i].flow;
        match flows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, flow)) => flow.queue.push(i),
            None => flows.push((
                key,
                LaneFlow {
                    queue: vec![i],
                    head: 0,
                    credit: 0,
                },
            )),
        }
    }
    let quantum_ps = quantum.as_ps().max(1) as i128;
    let arrival = |i: usize| base + plans[i].arrival;
    let clock = || slot.lane.lock().expect("device-lane mutex poisoned").clock;
    let mut serve = |flows: &mut Vec<(u32, LaneFlow)>, fi: usize| -> Option<bool> {
        let i = flows[fi].1.head_index()?;
        let outcome = execute_on_lane(engine, ssd, slot, &plans[i], Some(base), pool);
        let service = outcome
            .as_ref()
            .map(|o| o.summary.service_time)
            .unwrap_or(Duration::ZERO);
        let flow = &mut flows[fi].1;
        flow.head += 1;
        flow.credit -= service.as_ps() as i128;
        Some(deliver(i, outcome))
    };

    let mut remaining = indices.len();
    while remaining > 0 {
        let mut served_this_round = false;
        for fi in 0..flows.len() {
            let Some(head) = flows[fi].1.head_index() else {
                continue;
            };
            if arrival(head) > clock() {
                // Not backlogged right now: no top-up, no service. The flow
                // keeps any leftover credit for when its stream resumes.
                continue;
            }
            let weight = plans[head].weight.max(1) as i128;
            flows[fi].1.credit += quantum_ps * weight;
            while flows[fi].1.credit > 0 {
                let Some(i) = flows[fi].1.head_index() else {
                    break;
                };
                if arrival(i) > clock() {
                    break;
                }
                match serve(&mut flows, fi) {
                    Some(true) => {
                        remaining -= 1;
                        served_this_round = true;
                    }
                    _ => return,
                }
            }
            if flows[fi].1.head_index().is_none() {
                // A drained flow forfeits leftover credit.
                flows[fi].1.credit = 0;
            }
        }
        if served_this_round || remaining == 0 {
            continue;
        }
        let now = clock();
        let any_eligible = flows
            .iter()
            .any(|(_, f)| f.head_index().is_some_and(|i| arrival(i) <= now));
        if any_eligible {
            // Backlogged flows exist but are all in credit debt: rounds cost
            // no simulated time, so just keep topping up until one goes
            // positive.
            continue;
        }
        // The lane went idle: every remaining head arrives in the future.
        // The busy period is over — credits reset — and the next one opens
        // with the earliest-arriving head (ties break by flow position).
        for (_, flow) in &mut flows {
            flow.credit = 0;
        }
        let next = flows
            .iter()
            .enumerate()
            .filter_map(|(fi, (_, f))| f.head_index().map(|i| (arrival(i), fi)))
            .min()
            .map(|(_, fi)| fi)
            .expect("remaining > 0 implies a nonempty flow");
        match serve(&mut flows, next) {
            Some(true) => remaining -= 1,
            _ => return,
        }
    }
}

/// Default deficit-round-robin quantum for weighted device lanes: the
/// per-round credit a weight-1 flow earns (see [`RunRequest::weighted`]).
/// Small relative to typical service times, so shares track weights
/// smoothly; the exact value only shapes interleaving granularity, not the
/// long-run weight shares.
pub const DEFAULT_DRR_QUANTUM: Duration = Duration::from_ps(10_000_000); // 10 µs

/// Configures and builds a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    ssd: SsdConfig,
    host: HostConfig,
    faults: FaultConfig,
    workers: Option<usize>,
    parallel: bool,
    drr_quantum: Duration,
}

impl SessionBuilder {
    /// Starts a builder for the given SSD configuration (default host
    /// configuration, one batch worker per CPU core, fresh devices, no
    /// fault injection).
    pub fn new(ssd: SsdConfig) -> Self {
        SessionBuilder {
            ssd,
            host: HostConfig::default(),
            faults: FaultConfig::default(),
            workers: None,
            parallel: true,
            drr_quantum: DEFAULT_DRR_QUANTUM,
        }
    }

    /// Replaces the host configuration.
    pub fn host(mut self, host: HostConfig) -> Self {
        self.host = host;
        self
    }

    /// Sets the session's default fault-injection plan: every fresh run and
    /// every device created without an explicit plan
    /// ([`Session::create_device_with_faults`]) draws its faults from this
    /// seeded, replayable configuration. The default is inert (no faults),
    /// which is bit-identical to a session without fault support.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the batch worker-thread count (default: one per available
    /// CPU core; clamped to at least one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Disables the batch fan-out: [`Session::submit_batch`] runs requests
    /// one at a time on the calling thread. Results are bit-identical either
    /// way; the serial path exists for comparison and debugging.
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Overrides the deficit-round-robin quantum of weighted device lanes
    /// (default [`DEFAULT_DRR_QUANTUM`]; clamped to at least one
    /// picosecond). Only mixed-weight lanes consult it — see
    /// [`RunRequest::weighted`].
    pub fn drr_quantum(mut self, quantum: Duration) -> Self {
        self.drr_quantum = Duration::from_ps(quantum.as_ps().max(1));
        self
    }

    /// Builds the session. The thread pool starts lazily on the first
    /// parallel batch, so summary-only sessions never spawn threads.
    pub fn build(self) -> Session {
        let workers = if self.parallel {
            self.workers.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        } else {
            1
        };
        Session {
            ssd: self.ssd,
            host: self.host,
            faults: self.faults,
            workers,
            drr_quantum: self.drr_quantum,
            registry: ProgramRegistry::new(),
            pool: OnceLock::new(),
            devices: Vec::new(),
            engine: OnceLock::new(),
            plan_cache: Mutex::new(HashMap::new()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_inline: AtomicU64::new(0),
        }
    }
}

/// A long-lived execution service: device/host configuration, the program
/// registry, a work-stealing pool for batch fan-out, and a **pool of named
/// warm devices**.
///
/// Fresh runs execute on a pristine simulated device, so they are
/// independent, deterministic, and identical whether submitted one at a
/// time or batched across threads. Warm runs target a device from the pool
/// ([`Session::create_device`], [`RunRequest::on_device`]); each device's
/// persistent [`conduit_sim::DeviceState`] ages across its request stream,
/// modelling one tenant's long-lived SSD.
///
/// # Lane scheduling and the stream clock
///
/// In [`Session::submit_batch`], every device forms a **FIFO lane**:
/// requests targeting the same device run serially in request order (they
/// share that device's mutable state), while different devices' lanes — and
/// the fresh-request fan-out — proceed in parallel on the thread pool.
/// Outcomes are bit-identical to submitting the same batch serially.
///
/// Each device carries an explicit **stream clock**. By default requests are
/// closed-loop — request *i* issues at request *i−1*'s finish time — while
/// [`RunRequest::arriving_at`] turns the stream open-loop: the clock
/// advances to `max(previous finish, arrival)`, so the device can sit idle
/// between arrivals. [`RunSummary::queueing_time`] reports how long a
/// request waited in its lane between its arrival and its first issue, and
/// [`RunSummary::service_time`] its own execution time; `total_time` is
/// their sum. Cumulative per-device state is available via
/// [`Session::device_snapshot`] and resettable via
/// [`Session::reset_device`], and whole devices can be checkpointed across
/// processes with [`Session::export_device`] /
/// [`Session::import_device`]. See the [module documentation](self) for an
/// end-to-end example.
#[derive(Debug)]
pub struct Session {
    ssd: SsdConfig,
    host: HostConfig,
    /// Default fault-injection plan for fresh runs and new devices.
    faults: FaultConfig,
    workers: usize,
    /// Per-round credit unit of mixed-weight (deficit-round-robin) lanes.
    drr_quantum: Duration,
    registry: ProgramRegistry,
    pool: OnceLock<ThreadPool>,
    /// The warm-device pool, minted by [`Session::create_device`] /
    /// [`Session::import_device`]. Behind `Arc` so batch lane tasks can
    /// run on the thread pool without borrowing the session.
    devices: Vec<Arc<DeviceSlot>>,
    /// The engine is stateless and a pure function of the configs; built
    /// once on first use.
    engine: OnceLock<RuntimeEngine>,
    /// Strip plans for registered programs, keyed by (program, policy,
    /// cost-function) so each program is planned once per configuration,
    /// not once per run. The registry is append-only and content-addressed,
    /// so cached plans never need invalidation.
    plan_cache: Mutex<HashMap<(ProgramId, Policy, CostFunction), Arc<StripPlan>>>,
    /// Plan-cache hit counter (see [`Session::plan_cache_stats`]).
    plan_cache_hits: AtomicU64,
    /// Plan-cache miss counter: cold (program, policy, cost-function) keys
    /// that had to run the strip-mining planner.
    plan_cache_misses: AtomicU64,
    /// Inline-program runs that bypass the cache entirely (one-shot
    /// [`RunRequest::inline`] programs plan on the fly in the engine).
    plan_cache_inline: AtomicU64,
}

/// A point-in-time snapshot of a session's strip-plan cache counters
/// ([`Session::plan_cache_stats`]). `hits + misses` equals the number of
/// registered-program runs planned so far; `inline` counts one-shot
/// [`RunRequest::inline`] runs that never touch the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the strip-mining planner.
    pub misses: u64,
    /// Runs of unregistered (inline) programs that bypass the cache.
    pub inline: u64,
}

impl PlanCacheStats {
    /// Fraction of cacheable lookups that hit (0 when none happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Session {
    /// Starts a [`SessionBuilder`] for the given SSD configuration.
    pub fn builder(ssd: SsdConfig) -> SessionBuilder {
        SessionBuilder::new(ssd)
    }

    /// A session with all defaults for the given SSD configuration.
    pub fn new(ssd: SsdConfig) -> Session {
        SessionBuilder::new(ssd).build()
    }

    /// The SSD configuration every run uses.
    pub fn ssd_config(&self) -> &SsdConfig {
        &self.ssd
    }

    /// The host configuration every run uses.
    pub fn host_config(&self) -> &HostConfig {
        &self.host
    }

    /// Number of worker threads batches fan out over (1 = serial).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Validates and registers a program for reuse across runs.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for structurally invalid
    /// programs.
    pub fn register(&mut self, program: VectorProgram) -> Result<ProgramId> {
        self.registry.register(program)
    }

    /// The program behind a handle, if registered.
    pub fn program(&self, id: ProgramId) -> Option<&VectorProgram> {
        self.registry.get(id).map(Arc::as_ref)
    }

    /// The program registry.
    pub fn registry(&self) -> &ProgramRegistry {
        &self.registry
    }

    /// Serializes the whole registry so another process can
    /// [`Session::import_registry`] it instead of re-running the vectorizer.
    pub fn export_registry(&self) -> Vec<u8> {
        self.registry.to_bytes()
    }

    /// Merges every program from a serialized registry into this session's
    /// registry, returning the assigned ids in the same order. Content
    /// addressing applies: a program identical to one already registered
    /// maps to the existing id instead of being stored again.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for corrupt bytes; on error
    /// the session's registry is left unchanged.
    pub fn import_registry(&mut self, bytes: &[u8]) -> Result<Vec<ProgramId>> {
        let imported = ProgramRegistry::from_bytes(bytes)?;
        Ok(imported
            .programs
            .into_iter()
            .map(|program| self.registry.insert_deduped(program))
            .collect())
    }

    // ------------------------------------------------------------------
    // The device pool
    // ------------------------------------------------------------------

    /// Creates (or finds) a named warm device in the session's pool and
    /// returns its handle. Device creation is idempotent: asking for an
    /// existing name returns the existing device's handle, so tenants can
    /// be addressed by name without extra bookkeeping. The simulated device
    /// itself is built lazily on first use.
    pub fn create_device(&mut self, name: &str) -> DeviceHandle {
        self.create_device_with_faults(name, self.faults)
    }

    /// Like [`Session::create_device`], but with an explicit per-device
    /// fault-injection plan instead of the session default
    /// ([`SessionBuilder::faults`]). For an existing name the existing
    /// device (and its original plan) is returned unchanged — a device's
    /// fault plan is fixed for its lifetime so its stream stays replayable.
    pub fn create_device_with_faults(&mut self, name: &str, faults: FaultConfig) -> DeviceHandle {
        if let Some(existing) = self.find_device(name) {
            return existing;
        }
        let handle = DeviceHandle(self.devices.len() as u32);
        self.devices.push(Arc::new(DeviceSlot::new(name, faults)));
        handle
    }

    /// The handle of the named device, if it exists.
    pub fn find_device(&self, name: &str) -> Option<DeviceHandle> {
        self.devices
            .iter()
            .position(|slot| slot.name == name)
            .map(|i| DeviceHandle(i as u32))
    }

    /// Iterator over every device in the pool, `(handle, name)`, in
    /// creation order.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceHandle, &str)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, slot)| (DeviceHandle(i as u32), slot.name.as_str()))
    }

    /// The name a device was created under.
    ///
    /// # Panics
    ///
    /// Panics on a handle minted by a different session.
    pub fn device_name(&self, device: DeviceHandle) -> &str {
        &self.slot(device).name
    }

    fn slot(&self, device: DeviceHandle) -> &Arc<DeviceSlot> {
        self.devices
            .get(device.index())
            .expect("DeviceHandle was minted by a different session")
    }

    /// Cumulative counters of a pooled device: everything its request
    /// stream has done to it so far (GC, migration, coherence traffic,
    /// wear, energy). All-zero until the device's first run.
    ///
    /// # Panics
    ///
    /// Panics on a handle minted by a different session.
    pub fn device_snapshot(&self, device: DeviceHandle) -> DeviceSnapshot {
        self.slot(device)
            .lane
            .lock()
            .expect("device-lane mutex poisoned")
            .device
            .as_ref()
            .map(SsdDevice::snapshot)
            .unwrap_or_default()
    }

    /// A device's stream clock: the finish time of the last request it
    /// served (zero while pristine).
    ///
    /// # Panics
    ///
    /// Panics on a handle minted by a different session.
    pub fn device_clock(&self, device: DeviceHandle) -> SimTime {
        self.slot(device)
            .lane
            .lock()
            .expect("device-lane mutex poisoned")
            .clock
    }

    /// Discards a pooled device's state and resets its stream clock,
    /// returning the final snapshot; the device's next run starts from a
    /// pristine device. Other devices and fresh runs are unaffected.
    ///
    /// # Panics
    ///
    /// Panics on a handle minted by a different session.
    pub fn reset_device(&self, device: DeviceHandle) -> DeviceSnapshot {
        let mut lane = self
            .slot(device)
            .lane
            .lock()
            .expect("device-lane mutex poisoned");
        let snapshot = lane
            .device
            .take()
            .map(|device| device.snapshot())
            .unwrap_or_default();
        lane.clock = SimTime::ZERO;
        snapshot
    }

    /// Serializes a pooled device — its stream clock plus the complete
    /// [`conduit_sim::DeviceState`] (FTL image, contention timelines,
    /// residency, energy) — into a compact versioned byte stream. Another
    /// session (or process) can [`Session::import_device`] it and continue
    /// the stream with bit-identical results, like a device-aging
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates device-construction errors for a never-used device (whose
    /// pristine state is built on demand so the checkpoint is well-formed).
    ///
    /// # Panics
    ///
    /// Panics on a handle minted by a different session.
    pub fn export_device(&self, device: DeviceHandle) -> Result<Vec<u8>> {
        let mut lane = self
            .slot(device)
            .lane
            .lock()
            .expect("device-lane mutex poisoned");
        if lane.device.is_none() {
            lane.device = Some(SsdDevice::with_faults(&self.ssd, self.slot(device).faults)?);
        }
        let state = lane.device.as_ref().expect("device was just installed");
        let mut out = Vec::new();
        out.extend_from_slice(&DEVICE_CHECKPOINT_MAGIC);
        put_u16(&mut out, DEVICE_CHECKPOINT_FORMAT_VERSION);
        // The configuration fingerprint pins the exact timings/energies the
        // stream was simulated under, not just the shape the state decoder
        // can check structurally.
        put_u64(&mut out, self.config_fingerprint());
        put_u64(&mut out, lane.clock.as_ps());
        out.extend_from_slice(&state.state().to_bytes());
        Ok(out)
    }

    /// The combined fingerprint device checkpoints embed: FNV-1a over the
    /// SSD and host configuration fingerprints. Both sides matter — warm
    /// stream clocks depend on host rooflines (host-policy service times)
    /// as much as on the device's own timings.
    fn config_fingerprint(&self) -> u64 {
        let mut canonical = Vec::with_capacity(16);
        put_u64(&mut canonical, self.ssd.fingerprint());
        put_u64(&mut canonical, self.host.fingerprint());
        conduit_types::bytes::fnv1a(&canonical)
    }

    /// Revives a device checkpoint produced by [`Session::export_device`]
    /// under `name`, returning its handle. If the name already exists in
    /// the pool, the imported checkpoint **replaces** that device's state
    /// (restoring a tenant in place); otherwise a new device is created.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for a bad magic/version,
    /// truncation, or a checkpoint that does not match this session's SSD
    /// configuration. Version-2 checkpoints embed the exporting session's
    /// combined SSD + host configuration fingerprint
    /// ([`SsdConfig::fingerprint`],
    /// [`conduit_types::HostConfig::fingerprint`]), so **any**
    /// configuration difference — including same-shape timing or energy
    /// changes the structural checks cannot see — is a hard error; legacy
    /// version-1 checkpoints fall back to the structural shape check. On
    /// error the pool is left unchanged.
    pub fn import_device(&mut self, name: &str, bytes: &[u8]) -> Result<DeviceHandle> {
        if bytes.len() < 6 || bytes[..4] != DEVICE_CHECKPOINT_MAGIC {
            return Err(ConduitError::corrupt_checkpoint(
                "bad device-checkpoint magic",
            ));
        }
        let tail = &bytes[4..];
        let mut r = Reader::new(tail);
        let version = r.u16()?;
        match version {
            DEVICE_CHECKPOINT_FORMAT_VERSION | DEVICE_CHECKPOINT_FORMAT_VERSION_V2 => {
                let fingerprint = r.u64()?;
                let expected = self.config_fingerprint();
                if fingerprint != expected {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "device checkpoint was exported under a different \
                         SSD/host configuration (fingerprint \
                         {fingerprint:#018x}, this session's is \
                         {expected:#018x}); replaying it here would silently \
                         change the stream's timings"
                    )));
                }
            }
            // Legacy checkpoints predate the fingerprint; the structural
            // shape check in DeviceState::from_bytes still applies.
            DEVICE_CHECKPOINT_FORMAT_VERSION_V1 => {}
            _ => {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "unsupported device-checkpoint format version {version} \
                     (expected {DEVICE_CHECKPOINT_FORMAT_VERSION}, \
                     {DEVICE_CHECKPOINT_FORMAT_VERSION_V2} or \
                     {DEVICE_CHECKPOINT_FORMAT_VERSION_V1})"
                )));
            }
        }
        let clock = SimTime::from_ps(r.counter()?);
        let consumed = tail.len() - r.remaining();
        let state = DeviceState::from_bytes(&self.ssd, &tail[consumed..])?;
        let device = SsdDevice::with_state(&self.ssd, state)?;
        let handle = self.create_device(name);
        let mut lane = self
            .slot(handle)
            .lane
            .lock()
            .expect("device-lane mutex poisoned");
        lane.device = Some(device);
        lane.clock = clock;
        drop(lane);
        Ok(handle)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn plan(&self, request: &RunRequest) -> Result<RunPlan> {
        let (program, registered) = match &request.source {
            ProgramSource::Registered(id) => {
                let program = Arc::clone(self.registry.get(*id).ok_or_else(|| {
                    ConduitError::invalid_program(format!(
                        "program {id} is not registered in this session"
                    ))
                })?);
                (program, Some(*id))
            }
            ProgramSource::Inline(program) => (Arc::clone(program), None),
        };
        // Registered programs strip-mine once per (program, policy,
        // cost-function); inline one-shots plan on the fly in the engine.
        let strip_plan = match registered {
            Some(id) => {
                let key = (id, request.policy, request.cost_function);
                let mut cache = self.plan_cache.lock().unwrap_or_else(|e| e.into_inner());
                let plan = match cache.entry(key) {
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                        Arc::clone(entry.get())
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
                        Arc::clone(entry.insert(Arc::new(StripPlan::plan(
                            &program,
                            request.policy,
                            request.cost_function,
                        ))))
                    }
                };
                Some(plan)
            }
            None => {
                self.plan_cache_inline.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        let mode = match request.device {
            None => PlanMode::Fresh,
            Some(handle) => {
                if handle.index() >= self.devices.len() {
                    return Err(ConduitError::invalid_config(format!(
                        "device {handle} is not part of this session's pool"
                    )));
                }
                PlanMode::Device(handle.index())
            }
        };
        Ok(RunPlan {
            program,
            options: request.run_options(),
            repeats: request.repeats,
            collect_energy_split: request.collect_energy_split,
            percentiles: request.percentiles.clone(),
            mode,
            arrival: request.arrival.saturating_since(SimTime::ZERO),
            flow: request.flow,
            weight: request.weight.max(1),
            strip_plan,
        })
    }

    fn engine(&self) -> &RuntimeEngine {
        self.engine
            .get_or_init(|| RuntimeEngine::with_host(&self.ssd, &self.host))
    }

    /// A point-in-time snapshot of the strip-plan cache counters: cache
    /// hits, planner runs (misses), and inline-program runs that bypass the
    /// cache. Counters only ever grow for the session's lifetime.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_cache_hits.load(Ordering::Relaxed),
            misses: self.plan_cache_misses.load(Ordering::Relaxed),
            inline: self.plan_cache_inline.load(Ordering::Relaxed),
        }
    }

    /// The thread pool used for intra-run parallel strip evaluation on
    /// calling-thread executions; `None` for serial sessions. Batch fan-out
    /// closures deliberately run without it: the fan-out itself already
    /// saturates the pool, so nested scan jobs would only queue behind the
    /// very work that is waiting for them (the engine's committer evaluates
    /// inline in that case anyway, with identical results).
    fn eval_pool(&self) -> Option<&ThreadPool> {
        (self.workers > 1).then(|| self.pool.get_or_init(|| ThreadPool::new(self.workers)))
    }

    /// Executes one request on the calling thread (fresh runs on a pristine
    /// device; warm runs continue on their pooled device's persistent
    /// state).
    ///
    /// # Errors
    ///
    /// Propagates unknown program/device handles, preparation and
    /// simulation errors.
    pub fn submit(&self, request: &RunRequest) -> Result<RunOutcome> {
        let plan = self.plan(request)?;
        match plan.mode {
            PlanMode::Fresh => {
                execute_fresh(&self.ssd, &self.host, self.faults, &plan, self.eval_pool())
            }
            PlanMode::Device(slot) => {
                // A lone submit is a batch of one: the lane window covers
                // exactly this request.
                self.reset_lane_window_of(slot);
                execute_on_lane(
                    self.engine(),
                    &self.ssd,
                    &self.devices[slot],
                    &plan,
                    None,
                    self.eval_pool(),
                )
            }
        }
    }

    /// Resets the windowed lane statistics of one device slot (no-op for a
    /// device that has never run).
    fn reset_lane_window_of(&self, slot: usize) {
        if let Some(device) = self.devices[slot]
            .lane
            .lock()
            .expect("device-lane mutex poisoned")
            .device
            .as_mut()
        {
            device.reset_lane_window();
        }
    }

    /// Executes a batch of independent requests and returns the outcomes in
    /// request order. Fresh requests fan out across the session's thread
    /// pool as bulk-class jobs; warm requests are grouped into **per-device
    /// lanes** — serial within a device (they share its state and stream
    /// clock), parallel across devices and alongside the fresh fan-out. A
    /// lane serves in plain request-order FIFO unless its requests carry
    /// mixed weights, in which case it serves by deficit round robin over
    /// per-flow sub-queues ([`RunRequest::weighted`]). Lane tasks run in
    /// the pool's reserved **lane class** (see [`crate::pool`]), so a ready
    /// lane never waits behind the queued fresh backlog on a small pool.
    ///
    /// Every fresh run simulates on a fresh device and every lane serves
    /// its device's requests in a deterministic, simulated-time-driven
    /// order, so the outcomes are **bit-identical** to running the whole
    /// batch serially — only the wall-clock time changes
    /// (`tests/integration_determinism.rs` and
    /// `tests/integration_device_pool.rs` assert this).
    ///
    /// # Errors
    ///
    /// Resolves every request's program and device up front (failing fast
    /// on unknown handles) and propagates the first simulation error by
    /// request order.
    pub fn submit_batch(&self, requests: &[RunRequest]) -> Result<Vec<RunOutcome>> {
        let plans: Vec<RunPlan> = requests
            .iter()
            .map(|r| self.plan(r))
            .collect::<Result<_>>()?;
        let fresh: Vec<usize> = (0..plans.len())
            .filter(|&i| plans[i].mode == PlanMode::Fresh)
            .collect();
        // Per-device FIFO lanes, keyed by slot, requests in request order.
        let mut lanes: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            if let PlanMode::Device(slot) = plan.mode {
                match lanes.iter_mut().find(|(s, _)| *s == slot) {
                    Some((_, indices)) => indices.push(i),
                    None => lanes.push((slot, vec![i])),
                }
            }
        }
        // Each participating device's lane window restarts with the batch —
        // done on the calling thread, before any worker runs, so the window
        // boundary is deterministic regardless of pool interleaving.
        for &(slot, _) in &lanes {
            self.reset_lane_window_of(slot);
        }
        // Every request in a batch "arrives" at its device's current stream
        // clock; later lane positions accumulate queueing time. Captured up
        // front so the serial and parallel paths agree bit-identically.
        let arrivals: Vec<SimTime> = lanes
            .iter()
            .map(|&(slot, _)| {
                self.devices[slot]
                    .lane
                    .lock()
                    .expect("device-lane mutex poisoned")
                    .clock
            })
            .collect();
        let arrival_of = |slot: usize| {
            lanes
                .iter()
                .position(|&(s, _)| s == slot)
                .map(|i| arrivals[i])
                .expect("every device slot in the batch has an arrival clock")
        };

        let parallelism = self.workers.min(fresh.len()) + lanes.len();
        if self.workers <= 1 || parallelism <= 1 {
            // Execute *every* plan before propagating the first error (by
            // request order) — the parallel path below cannot short-circuit
            // one lane on another's failure, so the serial fallback must
            // not either, or the devices would age differently depending on
            // the worker count. Fresh runs and distinct lanes never share
            // state, so walking fresh runs first and then each lane (in its
            // own scheduling order — see [`run_lane`]) produces the same
            // outcomes as any interleaving.
            let mut slots: Vec<Option<Result<RunOutcome>>> =
                (0..plans.len()).map(|_| None).collect();
            for &i in &fresh {
                slots[i] = Some(execute_fresh(
                    &self.ssd,
                    &self.host,
                    self.faults,
                    &plans[i],
                    self.eval_pool(),
                ));
            }
            for (slot, indices) in &lanes {
                run_lane(
                    self.engine(),
                    &self.ssd,
                    &self.devices[*slot],
                    &plans,
                    indices,
                    arrival_of(*slot),
                    self.drr_quantum,
                    self.eval_pool(),
                    |i, outcome| {
                        slots[i] = Some(outcome);
                        true
                    },
                );
            }
            return slots
                .into_iter()
                .map(|slot| slot.expect("every request executes exactly once"))
                .collect();
        }

        let pool = self.pool.get_or_init(|| ThreadPool::new(self.workers));
        let total = plans.len();
        let expected = fresh.len() + lanes.iter().map(|(_, idx)| idx.len()).sum::<usize>();
        let shared = Arc::new(BatchState {
            ssd: self.ssd.clone(),
            host: self.host.clone(),
            faults: self.faults,
            plans,
        });
        let (tx, rx) = channel();
        // One lane-class task per device lane, enqueued ahead of the fresh
        // fan-out: the lane serves its requests (FIFO, or deficit round
        // robin when weights differ — see [`run_lane`]) while other lanes
        // and the fresh jobs proceed in parallel, and the pool's reserved
        // lane slots dequeue these ahead of any queued bulk work. A request
        // failure does not stop the lane (matching the serial path), it is
        // reported in that request's slot.
        let quantum = self.drr_quantum;
        for (lane_pos, (slot, indices)) in lanes.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let device = Arc::clone(&self.devices[slot]);
            let engine = self.engine().clone();
            let base = arrivals[lane_pos];
            pool.execute_lane(move || {
                // No eval pool inside batch fan-out: these workers *are* the
                // pool, and the committer's inline path is bit-identical.
                run_lane(
                    &engine,
                    &shared.ssd,
                    &device,
                    &shared.plans,
                    &indices,
                    base,
                    quantum,
                    None,
                    |i, outcome| tx.send((i, outcome)).is_ok(),
                );
            });
        }
        // One bulk-class job per fresh request (rather than per-worker
        // cursor loops): fine-grained jobs let a lane-slot worker that
        // helped with fresh work return to newly-arrived lane tasks after
        // one request instead of owning the whole fresh backlog.
        for i in fresh {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            pool.execute(move || {
                let outcome = execute_fresh(
                    &shared.ssd,
                    &shared.host,
                    shared.faults,
                    &shared.plans[i],
                    None,
                );
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<RunOutcome>>> = (0..total).map(|_| None).collect();
        for _ in 0..expected {
            let (i, outcome) = rx
                .recv()
                .map_err(|_| ConduitError::simulation("batch worker terminated unexpectedly"))?;
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request index reports exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand};

    fn program(name: &str) -> VectorProgram {
        let mut prog = VectorProgram::new(name);
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        prog.push_binary(OpType::Add, Operand::result(a), Operand::page(8));
        prog
    }

    fn session() -> Session {
        Session::builder(SsdConfig::small_for_tests()).build()
    }

    #[test]
    fn register_and_submit_summary_only() {
        let mut s = session();
        let id = s.register(program("s")).unwrap();
        let outcome = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        assert_eq!(outcome.summary.instructions, 2);
        assert_eq!(outcome.summary.workload, "s");
        assert!(outcome.summary.total_time > Duration::ZERO);
        assert_eq!(outcome.summary.total_time, outcome.summary.service_time);
        assert_eq!(outcome.summary.queueing_time, Duration::ZERO);
        assert!(outcome.summary.total_energy > Energy::ZERO);
        assert!(outcome.summary.energy_split.is_some());
        assert_eq!(outcome.summary.latency.len(), 2);
        assert_eq!(outcome.summary.percentiles.len(), DEFAULT_PERCENTILES.len());
        // Timelines are opt-in.
        assert!(outcome.artifacts.is_none());
    }

    #[test]
    fn collection_flags_are_honoured() {
        let mut s = session();
        let id = s.register(program("flags")).unwrap();
        let outcome = s
            .submit(
                &RunRequest::new(id, Policy::Conduit)
                    .with_timeline()
                    .energy_split(false)
                    .percentiles(&[0.5]),
            )
            .unwrap();
        let timeline = &outcome.artifacts.as_ref().unwrap().timeline;
        assert_eq!(timeline.len(), 2);
        assert!(outcome.summary.energy_split.is_none());
        assert_eq!(outcome.summary.percentiles.len(), 1);
        assert_eq!(outcome.summary.percentiles[0].0, 0.5);
    }

    #[test]
    fn unknown_program_id_is_rejected() {
        let mut a = session();
        let mut b = session();
        let _ = a.register(program("a")).unwrap();
        let id_b = b.register(program("b")).unwrap();
        let _ = b.register(program("b2")).unwrap();
        // An id minted by another session with more programs is unknown
        // here.
        let foreign = ProgramId(7);
        assert!(a
            .submit(&RunRequest::new(foreign, Policy::Conduit))
            .is_err());
        // Unknown handles fail the whole batch up front, before anything
        // runs.
        assert!(a
            .submit_batch(&[
                RunRequest::new(id_b, Policy::Conduit),
                RunRequest::new(foreign, Policy::Conduit),
            ])
            .is_err());
    }

    #[test]
    fn foreign_device_handle_is_rejected() {
        let mut a = session();
        let mut b = session();
        let _ = b.create_device("x");
        let _ = b.create_device("y");
        let foreign = b.create_device("z");
        let id = a.register(program("d")).unwrap();
        assert!(a
            .submit(&RunRequest::new(id, Policy::Conduit).on_device(foreign))
            .is_err());
    }

    #[test]
    fn invalid_program_is_rejected_at_registration() {
        let mut s = session();
        let mut bad = VectorProgram::new("bad");
        bad.push(conduit_types::VectorInst::with_srcs(
            0,
            OpType::Add,
            vec![Operand::page(0)],
        ));
        assert!(s.register(bad).is_err());
    }

    #[test]
    fn repeats_are_deterministic() {
        let mut s = session();
        let id = s.register(program("rep")).unwrap();
        let once = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        let thrice = s
            .submit(&RunRequest::new(id, Policy::Conduit).repeat(3))
            .unwrap();
        assert_eq!(thrice.summary.repeats, 3);
        assert_eq!(once.summary.total_time, thrice.summary.total_time);
        assert_eq!(once.summary.offload_mix, thrice.summary.offload_mix);
    }

    #[test]
    fn batch_matches_serial_submission() {
        let mut s = Session::builder(SsdConfig::small_for_tests())
            .workers(4)
            .build();
        let id = s.register(program("batch")).unwrap();
        let requests: Vec<RunRequest> = [Policy::HostCpu, Policy::Conduit, Policy::Ideal]
            .into_iter()
            .map(|p| RunRequest::new(id, p))
            .collect();
        let batched = s.submit_batch(&requests).unwrap();
        let serial: Vec<RunOutcome> = requests.iter().map(|r| s.submit(r).unwrap()).collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn registry_roundtrips_through_bytes() {
        let mut s = session();
        let id = s.register(program("persist")).unwrap();
        let bytes = s.export_registry();

        let mut other = session();
        let ids = other.import_registry(&bytes).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(other.program(ids[0]), s.program(id));

        let a = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        let b = other
            .submit(&RunRequest::new(ids[0], Policy::Conduit))
            .unwrap();
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn corrupt_registry_bytes_are_rejected() {
        let mut s = session();
        let _ = s.register(program("c")).unwrap();
        let mut bytes = s.export_registry();
        assert!(ProgramRegistry::from_bytes(&bytes[..5]).is_err());
        bytes[0] = b'X';
        assert!(ProgramRegistry::from_bytes(&bytes).is_err());
        let mut t = session();
        assert!(t.import_registry(&[1, 2, 3]).is_err());
        assert!(t.registry().is_empty());
    }

    #[test]
    fn inline_requests_run_without_registration() {
        let s = session();
        let outcome = s
            .submit(&RunRequest::inline(program("inline"), Policy::HostCpu))
            .unwrap();
        assert_eq!(outcome.summary.policy, Policy::HostCpu);
        assert!(s.registry().is_empty());
    }

    #[test]
    fn registry_dedupes_identical_programs() {
        let mut s = session();
        let a = s.register(program("same")).unwrap();
        let b = s.register(program("same")).unwrap();
        assert_eq!(a, b, "identical content must map to one id");
        assert_eq!(s.registry().len(), 1);
        // A different name changes the content, so it gets its own entry.
        let c = s.register(program("other")).unwrap();
        assert_ne!(a, c);
        assert_eq!(s.registry().len(), 2);
        // Importing an already-registered program maps to the existing id.
        let bytes = s.export_registry();
        let ids = s.import_registry(&bytes).unwrap();
        assert_eq!(ids, vec![a, c]);
        assert_eq!(s.registry().len(), 2);
    }

    #[test]
    fn legacy_byte_streams_with_duplicates_keep_positional_ids() {
        // Registries serialized before content addressing could legally
        // contain duplicate programs; decoding must keep every program at
        // its serialized position so persisted ProgramIds stay valid.
        let dup = program("dup");
        let other = program("other");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&REGISTRY_MAGIC);
        bytes.extend_from_slice(&REGISTRY_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        for p in [&dup, &dup, &other] {
            let body = p.to_bytes();
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        let registry = ProgramRegistry::from_bytes(&bytes).unwrap();
        assert_eq!(registry.len(), 3);
        let decoded: Vec<&VectorProgram> = registry.iter().map(|(_, p)| p).collect();
        assert_eq!(decoded[0], &dup);
        assert_eq!(decoded[1], &dup);
        assert_eq!(decoded[2], &other);
        // Importing the same stream into a session dedupes, with the id
        // mapping making the collapse explicit.
        let mut s = session();
        let ids = s.import_registry(&bytes).unwrap();
        assert_eq!(ids[0], ids[1]);
        assert_ne!(ids[0], ids[2]);
        assert_eq!(s.registry().len(), 2);
    }

    #[test]
    fn warm_device_carries_state_across_submissions() {
        let mut s = session();
        let default = s.create_device("tenant");
        let request = RunRequest::inline(program("warm"), Policy::Conduit).on_device(default);
        let first = s.submit(&request).unwrap();
        let snap_after_first = s.device_snapshot(default);
        assert!(snap_after_first.device_ops > 0);
        assert_eq!(
            first.summary.device_delta.device_ops,
            snap_after_first.device_ops
        );
        let second = s.submit(&request).unwrap();
        let snap_after_second = s.device_snapshot(default);
        // The warm device accumulates: the second run starts where the
        // first ended.
        assert!(snap_after_second.device_ops > snap_after_first.device_ops);
        assert_eq!(
            second.summary.device_delta.device_ops,
            snap_after_second.device_ops - snap_after_first.device_ops
        );
        // The stream clock advanced past both runs.
        assert_eq!(
            s.device_clock(default).as_ps(),
            first.summary.service_time.as_ps() + second.summary.service_time.as_ps()
        );
        // Resetting discards the state; the next snapshot is pristine.
        let last = s.reset_device(default);
        assert_eq!(last, snap_after_second);
        assert_eq!(
            s.device_snapshot(default),
            conduit_sim::DeviceSnapshot::default()
        );
        assert_eq!(s.device_clock(default), SimTime::ZERO);
    }

    #[test]
    fn named_devices_age_independently() {
        let mut s = session();
        let id = s.register(program("tenants")).unwrap();
        let a = s.create_device("tenant-a");
        let b = s.create_device("tenant-b");
        assert_ne!(a, b);
        assert_eq!(s.create_device("tenant-a"), a, "creation is idempotent");
        assert_eq!(s.find_device("tenant-b"), Some(b));
        assert_eq!(s.device_name(a), "tenant-a");
        assert_eq!(s.devices().count(), 2, "two tenants");

        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(a))
            .unwrap();
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(a))
            .unwrap();
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(b))
            .unwrap();
        let snap_a = s.device_snapshot(a);
        let snap_b = s.device_snapshot(b);
        assert!(snap_a.device_ops > snap_b.device_ops);
        // Resetting one tenant leaves the other aging.
        s.reset_device(a);
        assert_eq!(s.device_snapshot(a), DeviceSnapshot::default());
        assert_eq!(s.device_snapshot(b), snap_b);
    }

    #[test]
    fn lane_requests_split_queueing_from_service() {
        let mut s = Session::builder(SsdConfig::small_for_tests())
            .workers(4)
            .build();
        let id = s.register(program("lane")).unwrap();
        let dev = s.create_device("tenant");
        let batch = s
            .submit_batch(&[
                RunRequest::new(id, Policy::Conduit).on_device(dev),
                RunRequest::new(id, Policy::Conduit).on_device(dev),
            ])
            .unwrap();
        assert_eq!(batch[0].summary.queueing_time, Duration::ZERO);
        // The second request queued behind the first's service time.
        assert_eq!(
            batch[1].summary.queueing_time,
            batch[0].summary.service_time
        );
        assert_eq!(
            batch[1].summary.total_time,
            batch[1].summary.queueing_time + batch[1].summary.service_time
        );
        // A lone submit finds the lane idle: no queueing.
        let lone = s
            .submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        assert_eq!(lone.summary.queueing_time, Duration::ZERO);
        // Repeats are the request's own service, not lane wait: a repeated
        // request on an idle lane still reports zero queueing while its
        // repeats advance the stream clock.
        let clock_before = s.device_clock(dev);
        let repeated = s
            .submit(
                &RunRequest::new(id, Policy::Conduit)
                    .on_device(dev)
                    .repeat(3),
            )
            .unwrap();
        assert_eq!(repeated.summary.queueing_time, Duration::ZERO);
        assert!(s.device_clock(dev) > clock_before);
    }

    #[test]
    fn fresh_runs_are_unaffected_by_warm_history() {
        let mut s = session();
        let id = s.register(program("iso")).unwrap();
        let dev = s.create_device("history");
        let fresh = RunRequest::new(id, Policy::Conduit);
        let before = s.submit(&fresh).unwrap();
        for _ in 0..3 {
            s.submit(&fresh.clone().on_device(dev)).unwrap();
        }
        let after = s.submit(&fresh).unwrap();
        assert_eq!(before, after, "fresh runs must not see warm-device state");
        // Fresh runs also report their own device footprint — but no lane
        // accounting, because there is no lane.
        assert!(before.summary.device_delta.device_ops > 0);
        assert_eq!(before.summary.device_delta.lane_requests, 0);
    }

    #[test]
    fn open_loop_arrivals_drive_queueing_and_idle_gaps() {
        let mut s = session();
        let id = s.register(program("arrivals")).unwrap();
        let dev = s.create_device("open-loop");

        // Probe the service time of one request on this device when fresh.
        let probe = s
            .submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let service = probe.summary.service_time;
        s.reset_device(dev);

        // Request 1 arrives at t=0; request 2 arrives mid-service of
        // request 1: its queueing is arrival-relative, not batch-relative.
        let mid = SimTime::ZERO + service / 2;
        let batch = s
            .submit_batch(&[
                RunRequest::new(id, Policy::Conduit).on_device(dev),
                RunRequest::new(id, Policy::Conduit)
                    .on_device(dev)
                    .arriving_at(mid),
            ])
            .unwrap();
        assert_eq!(batch[0].summary.queueing_time, Duration::ZERO);
        assert_eq!(
            batch[1].summary.queueing_time,
            batch[0].summary.service_time - (mid.saturating_since(SimTime::ZERO)),
            "queueing counts from the request's own arrival"
        );

        // A request arriving after the lane drained leaves the device idle
        // for the gap: zero queueing, stream clock jumps to the arrival.
        let clock = s.device_clock(dev);
        let late_by = Duration::from_us(250.0);
        let snap_before = s.device_snapshot(dev);
        let late = s
            .submit(
                &RunRequest::new(id, Policy::Conduit)
                    .on_device(dev)
                    .arriving_at(SimTime::ZERO + late_by),
            )
            .unwrap();
        assert_eq!(late.summary.queueing_time, Duration::ZERO);
        assert_eq!(
            s.device_clock(dev),
            clock + late_by + late.summary.service_time,
            "the stream clock advances to max(prev finish, arrival) + service"
        );
        let snap = s.device_snapshot(dev);
        assert_eq!(
            snap.lane_idle_time,
            snap_before.lane_idle_time + late_by,
            "the idle gap is accounted on the device"
        );
        assert_eq!(late.summary.device_delta.lane_idle_time, late_by);
        assert_eq!(late.summary.device_delta.lane_requests, 1);
        assert!(snap.lane_occupancy() < 1.0);
        assert_eq!(snap.lane_requests, 3);

        // Closed-loop lanes report full occupancy.
        let mut closed = session();
        let cid = closed.register(program("arrivals")).unwrap();
        let cdev = closed.create_device("closed-loop");
        for _ in 0..2 {
            closed
                .submit(&RunRequest::new(cid, Policy::Conduit).on_device(cdev))
                .unwrap();
        }
        assert_eq!(closed.device_snapshot(cdev).lane_occupancy(), 1.0);
    }

    #[test]
    fn fresh_arrivals_translate_without_changing_results() {
        let mut s = session();
        let id = s.register(program("shift")).unwrap();
        let base = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        let shifted = s
            .submit(
                &RunRequest::new(id, Policy::Conduit)
                    .arriving_at(SimTime::ZERO + Duration::from_us(700.0)),
            )
            .unwrap();
        assert_eq!(shifted.summary.queueing_time, Duration::ZERO);
        assert_eq!(shifted.summary, base.summary);
    }

    #[test]
    fn device_checkpoint_roundtrips_between_sessions() {
        let mut s = session();
        let id = s.register(program("ckpt")).unwrap();
        let dev = s.create_device("aging");
        for policy in [Policy::Conduit, Policy::PudSsd, Policy::HostCpu] {
            s.submit(&RunRequest::new(id, policy).on_device(dev))
                .unwrap();
        }
        let bytes = s.export_device(dev).unwrap();

        let mut other = session();
        let other_id = other.register(program("ckpt")).unwrap();
        let revived = other.import_device("aging", &bytes).unwrap();
        assert_eq!(other.device_snapshot(revived), s.device_snapshot(dev));
        assert_eq!(other.device_clock(revived), s.device_clock(dev));

        // Replay after the checkpoint is bit-identical to continuing the
        // original stream.
        let continued = s
            .submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let replayed = other
            .submit(&RunRequest::new(other_id, Policy::Conduit).on_device(revived))
            .unwrap();
        assert_eq!(continued, replayed);

        // Corrupt checkpoints are rejected.
        assert!(other.import_device("bad", &bytes[..10]).is_err());
        let mut flipped = bytes.clone();
        flipped[0] = b'X';
        assert!(other.import_device("bad", &flipped).is_err());
    }

    #[test]
    fn checkpoint_import_rejects_a_mismatched_configuration() {
        let mut s = session();
        let id = s.register(program("fp")).unwrap();
        let dev = s.create_device("tenant");
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let bytes = s.export_device(dev).unwrap();

        // Same geometry — the structural shape checks cannot tell these
        // apart — but a different flash read latency: the embedded
        // fingerprint must reject the import as corrupt.
        let mut slow_read = SsdConfig::small_for_tests();
        slow_read.flash.t_read = Duration::from_us(95.0);
        let mut other = Session::builder(slow_read).build();
        let err = other.import_device("tenant", &bytes).unwrap_err();
        assert!(
            matches!(err, ConduitError::CorruptCheckpoint { .. }),
            "got {err:?}"
        );
        assert!(other.find_device("tenant").is_none(), "pool unchanged");

        // A different *host* configuration is just as fatal: host-policy
        // service times shape the stream clock too.
        let mut fast_host = conduit_types::HostConfig::default();
        fast_host.cpu.freq_hz *= 2.0;
        let mut hosty = Session::builder(SsdConfig::small_for_tests())
            .host(fast_host)
            .build();
        assert!(matches!(
            hosty.import_device("tenant", &bytes),
            Err(ConduitError::CorruptCheckpoint { .. })
        ));

        // The exporting configuration still accepts it.
        let mut same = session();
        assert!(same.import_device("tenant", &bytes).is_ok());
    }

    #[test]
    fn pathological_arrival_offsets_saturate_instead_of_wrapping() {
        let mut s = session();
        let id = s.register(program("sat")).unwrap();
        let dev = s.create_device("edge");
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let clock = s.device_clock(dev);
        // An absurd arrival must not panic or wrap the stream clock
        // backwards; the clock clamps at the end of representable time.
        let outcome = s.submit(
            &RunRequest::new(id, Policy::Conduit)
                .on_device(dev)
                .arriving_at(SimTime::from_ps(u64::MAX - 1)),
        );
        assert!(outcome.is_ok());
        assert!(s.device_clock(dev) >= clock, "clock must never move back");
    }

    #[test]
    fn importing_over_an_existing_name_replaces_the_device() {
        let mut s = session();
        let id = s.register(program("replace")).unwrap();
        let dev = s.create_device("tenant");
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let checkpoint = s.export_device(dev).unwrap();
        // Age the device further, then restore the earlier checkpoint in
        // place.
        s.submit(&RunRequest::new(id, Policy::Conduit).on_device(dev))
            .unwrap();
        let aged = s.device_snapshot(dev);
        let restored = s.import_device("tenant", &checkpoint).unwrap();
        assert_eq!(restored, dev, "the handle is stable across restores");
        assert_ne!(s.device_snapshot(dev), aged);
    }

    #[test]
    fn exporting_a_pristine_device_roundtrips() {
        let mut s = session();
        let dev = s.create_device("unused");
        let bytes = s.export_device(dev).unwrap();
        let mut other = session();
        let revived = other.import_device("unused", &bytes).unwrap();
        assert_eq!(other.device_snapshot(revived), DeviceSnapshot::default());
        assert_eq!(other.device_clock(revived), SimTime::ZERO);
    }

    #[test]
    fn outcome_converts_to_run_report() {
        let mut s = session();
        let id = s.register(program("report")).unwrap();
        let outcome = s
            .submit(&RunRequest::new(id, Policy::Conduit).with_timeline())
            .unwrap();
        let summary = outcome.summary.clone();
        let report = outcome.into_run_report();
        assert_eq!(report.total_time, summary.total_time);
        assert_eq!(report.energy.total(), summary.total_energy);
        assert_eq!(report.timeline.len(), 2);
    }
}
