//! The service-level execution API: [`Session`], [`RunRequest`],
//! [`RunSummary`].
//!
//! The runtime engine ([`crate::RuntimeEngine`]) simulates one program on one
//! device; a *server* wants to compile (vectorize) a program once and then
//! execute it under many policies, configurations and request streams. This
//! module is that server surface:
//!
//! * a [`Session`] owns the device/host configuration, a persistent
//!   **program registry** and a lazily-started work-stealing thread pool;
//! * programs are registered once ([`Session::register`] →
//!   [`ProgramId`]) and can be persisted across processes via the compact
//!   registry serialization ([`Session::export_registry`] /
//!   [`Session::import_registry`]), so vectorizer output is never recomputed;
//! * a [`RunRequest`] is a cheap, cloneable description of one run: policy,
//!   cost-function ablation, repeat count and *collection flags* (timeline
//!   on/off, percentile set, energy split);
//! * results are split into an always-cheap [`RunSummary`] (times, energy,
//!   offload mix, histogram-backed latency percentiles — constant memory)
//!   and opt-in [`RunArtifacts`] (the full per-instruction timeline), so
//!   batch sweeps no longer carry timelines they never read;
//! * [`Session::submit_batch`] fans independent requests out across the
//!   pool with results **bit-identical** to running them serially (every run
//!   simulates on a fresh device).
//!
//! # Examples
//!
//! ```
//! use conduit::{Policy, RunRequest, Session};
//! use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
//!
//! let mut prog = VectorProgram::new("demo");
//! let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
//! prog.push_binary(OpType::Add, Operand::result(x), Operand::page(0));
//!
//! let mut session = Session::builder(SsdConfig::small_for_tests()).build();
//! let id = session.register(prog)?;
//!
//! let outcome = session.submit(&RunRequest::new(id, Policy::Conduit))?;
//! assert_eq!(outcome.summary.instructions, 2);
//! assert!(outcome.artifacts.is_none()); // timelines are opt-in
//!
//! let batch = session.submit_batch(&[
//!     RunRequest::new(id, Policy::HostCpu),
//!     RunRequest::new(id, Policy::Conduit).with_timeline(),
//! ])?;
//! assert!(batch[1].artifacts.is_some());
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, OnceLock};

use conduit_sim::{CostBreakdown, LatencyStats};
use conduit_types::{ConduitError, Duration, Energy, HostConfig, Result, SsdConfig, VectorProgram};

use crate::cost::CostFunction;
use crate::engine::{RunOptions, RuntimeEngine};
use crate::policy::Policy;
use crate::pool::ThreadPool;
use crate::report::{EnergySummary, OffloadMix, OverheadReport, RunReport, TimelineEntry};

/// Magic bytes identifying a serialized [`ProgramRegistry`].
pub const REGISTRY_MAGIC: [u8; 4] = *b"CPR1";

/// Current registry serialization format version.
pub const REGISTRY_FORMAT_VERSION: u16 = 1;

/// The percentile set collected when a request does not override it.
pub const DEFAULT_PERCENTILES: [f64; 3] = [0.50, 0.99, 0.9999];

/// Handle to a program registered in a [`Session`]'s [`ProgramRegistry`].
///
/// Ids are dense indices in registration order, so they stay valid across
/// [`Session::export_registry`] / [`Session::import_registry`] round trips
/// into a fresh session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProgramId(u32);

impl ProgramId {
    /// The dense registration-order index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProgramId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An ordered collection of validated, reusable [`VectorProgram`]s.
///
/// Programs are stored behind [`Arc`] so batch fan-out shares them across
/// worker threads without copying instruction streams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramRegistry {
    programs: Vec<Arc<VectorProgram>>,
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ProgramRegistry::default()
    }

    /// Validates and registers a program, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] if the program fails
    /// [`VectorProgram::validate`].
    pub fn register(&mut self, program: VectorProgram) -> Result<ProgramId> {
        program.validate().map_err(ConduitError::invalid_program)?;
        let id = ProgramId(self.programs.len() as u32);
        self.programs.push(Arc::new(program));
        Ok(id)
    }

    /// The program behind a handle, if registered.
    pub fn get(&self, id: ProgramId) -> Option<&Arc<VectorProgram>> {
        self.programs.get(id.index())
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no programs are registered.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Iterator over `(id, program)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ProgramId, &VectorProgram)> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProgramId(i as u32), p.as_ref()))
    }

    /// Serializes every registered program into one compact byte stream
    /// (magic + version + count, then each program via
    /// [`VectorProgram::to_bytes`] behind a `u32` length).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&REGISTRY_MAGIC);
        out.extend_from_slice(&REGISTRY_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.programs.len() as u32).to_le_bytes());
        for program in &self.programs {
            let bytes = program.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Decodes a registry serialized by [`ProgramRegistry::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for a bad magic/version,
    /// truncation, trailing bytes, or any embedded program that fails to
    /// decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<ProgramRegistry> {
        let corrupt =
            |reason: &str| ConduitError::invalid_program(format!("serialized registry: {reason}"));
        if bytes.len() < 10 || bytes[..4] != REGISTRY_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != REGISTRY_FORMAT_VERSION {
            return Err(corrupt("unsupported format version"));
        }
        let count = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        let mut pos = 10;
        let mut registry = ProgramRegistry::new();
        for _ in 0..count {
            let end = pos + 4;
            if end > bytes.len() {
                return Err(corrupt("truncated program length"));
            }
            let len = u32::from_le_bytes(bytes[pos..end].try_into().expect("len 4 slice")) as usize;
            pos = end;
            if pos + len > bytes.len() {
                return Err(corrupt("truncated program body"));
            }
            let program = VectorProgram::from_bytes(&bytes[pos..pos + len])?;
            pos += len;
            registry.programs.push(Arc::new(program));
        }
        if pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(registry)
    }
}

/// Where a [`RunRequest`]'s program comes from.
#[derive(Debug, Clone, PartialEq)]
enum ProgramSource {
    /// A program registered in the session's registry (the normal, reusable
    /// path).
    Registered(ProgramId),
    /// A one-shot program carried by the request itself (used by the
    /// deprecated [`crate::Workbench`] shim and throwaway experiments).
    Inline(Arc<VectorProgram>),
}

/// A declarative description of one run: which program, which policy, and
/// what to collect. Cheap to clone; built builder-style.
///
/// Subsumes the engine-level [`RunOptions`]: policy, cost-function ablation
/// and overhead charging map straight through, while the new collection
/// flags control how much the result carries — summaries are always cheap,
/// timelines ([`RunArtifacts`]) are opt-in.
///
/// # Examples
///
/// ```
/// use conduit::{Policy, RunRequest, Session};
/// use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
///
/// let mut prog = VectorProgram::new("r");
/// prog.push_binary(OpType::And, Operand::page(0), Operand::page(4));
/// let mut session = Session::builder(SsdConfig::small_for_tests()).build();
/// let id = session.register(prog)?;
///
/// let request = RunRequest::new(id, Policy::Conduit)
///     .repeat(3)
///     .percentiles(&[0.5, 0.999])
///     .with_timeline();
/// let outcome = session.submit(&request)?;
/// assert_eq!(outcome.summary.repeats, 3);
/// assert_eq!(outcome.summary.percentiles.len(), 2);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    source: ProgramSource,
    policy: Policy,
    cost_function: CostFunction,
    charge_overheads: bool,
    repeats: u32,
    collect_timeline: bool,
    collect_energy_split: bool,
    percentiles: Vec<f64>,
}

impl RunRequest {
    /// A request to run a registered program under `policy` with default
    /// collection: no timeline, energy split on, the
    /// [`DEFAULT_PERCENTILES`] set.
    pub fn new(program: ProgramId, policy: Policy) -> Self {
        Self::with_source(ProgramSource::Registered(program), policy)
    }

    /// A request carrying a one-shot program that is not (and will not be)
    /// registered. Accepts an owned program or an `Arc` (so several requests
    /// can share one program without copying it). Prefer
    /// [`Session::register`] + [`RunRequest::new`] when the program runs
    /// more than once.
    pub fn inline(program: impl Into<Arc<VectorProgram>>, policy: Policy) -> Self {
        Self::with_source(ProgramSource::Inline(program.into()), policy)
    }

    fn with_source(source: ProgramSource, policy: Policy) -> Self {
        RunRequest {
            source,
            policy,
            cost_function: CostFunction::conduit(),
            charge_overheads: true,
            repeats: 1,
            collect_timeline: false,
            collect_energy_split: true,
            percentiles: DEFAULT_PERCENTILES.to_vec(),
        }
    }

    /// Builder-style: replaces the cost function (for ablations).
    pub fn cost_function(mut self, cf: CostFunction) -> Self {
        self.cost_function = cf;
        self
    }

    /// Builder-style: disables the offloader overhead charges (§4.5).
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// Builder-style: simulates the program `repeats` times (clamped to at
    /// least one), each on a fresh device. Repeats are bit-identical under
    /// the deterministic simulator; the knob exists for throughput
    /// measurement and soak-style stress, where wall-clock per simulated
    /// instruction is the observable.
    pub fn repeat(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Builder-style: sets whether the full instruction → resource timeline
    /// is collected into [`RunArtifacts`] (default: off).
    pub fn timeline(mut self, collect: bool) -> Self {
        self.collect_timeline = collect;
        self
    }

    /// Builder-style sugar for [`RunRequest::timeline`]`(true)`.
    pub fn with_timeline(self) -> Self {
        self.timeline(true)
    }

    /// Builder-style: sets whether the summary carries the data-movement /
    /// compute energy split in addition to the total (default: on).
    pub fn energy_split(mut self, collect: bool) -> Self {
        self.collect_energy_split = collect;
        self
    }

    /// Builder-style: replaces the percentile set materialized into
    /// [`RunSummary::percentiles`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any value is outside `[0, 1]`.
    pub fn percentiles(mut self, set: &[f64]) -> Self {
        debug_assert!(
            set.iter().all(|p| (0.0..=1.0).contains(p)),
            "percentiles must be in [0, 1]"
        );
        self.percentiles = set.to_vec();
        self
    }

    /// The policy this request runs under.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of repeats.
    pub fn repeats(&self) -> u32 {
        self.repeats
    }

    /// Whether the timeline will be collected.
    pub fn collects_timeline(&self) -> bool {
        self.collect_timeline
    }

    /// The engine-level options this request maps to.
    fn run_options(&self) -> RunOptions {
        let mut options = RunOptions::new(self.policy).cost_function(self.cost_function);
        if !self.charge_overheads {
            options = options.without_overheads();
        }
        if !self.collect_timeline {
            options = options.without_timeline();
        }
        options
    }
}

/// The always-collected, constant-memory result of a run: everything the
/// figure pipeline and a serving stack's metrics need, and nothing that
/// grows with program length.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Workload (vector program) name.
    pub workload: String,
    /// The policy that was used.
    pub policy: Policy,
    /// Number of vector instructions executed per repeat.
    pub instructions: usize,
    /// How many times the program was simulated (see [`RunRequest::repeat`]).
    pub repeats: u32,
    /// End-to-end execution time of one run.
    pub total_time: Duration,
    /// Total energy of one run.
    pub total_energy: Energy,
    /// Energy split into data movement and computation, when collected.
    pub energy_split: Option<EnergySummary>,
    /// Where the execution time went.
    pub breakdown: CostBreakdown,
    /// Instruction placement counts.
    pub offload_mix: OffloadMix,
    /// Histogram of per-instruction end-to-end latencies (constant memory;
    /// query any quantile via [`LatencyStats::percentile`]).
    pub latency: LatencyStats,
    /// The percentiles requested by the run's [`RunRequest::percentiles`]
    /// set, materialized as `(p, latency)` pairs in request order.
    pub percentiles: Vec<(f64, Duration)>,
    /// Offloader overhead statistics.
    pub overhead: OverheadReport,
}

impl RunSummary {
    /// Speedup of this run relative to `baseline` (>1 means this run is
    /// faster).
    pub fn speedup_over(&self, baseline: &RunSummary) -> f64 {
        let own = self.total_time.as_ns();
        if own == 0.0 {
            return f64::INFINITY;
        }
        baseline.total_time.as_ns() / own
    }

    /// This run's energy as a fraction of `baseline`'s (<1 means this run
    /// uses less energy).
    pub fn energy_vs(&self, baseline: &RunSummary) -> f64 {
        let base = baseline.total_energy.as_nj();
        if base == 0.0 {
            return 0.0;
        }
        self.total_energy.as_nj() / base
    }

    /// The `p`-quantile per-instruction latency from the histogram (any
    /// quantile, not just the requested set).
    pub fn percentile(&self, p: f64) -> Duration {
        self.latency.percentile(p)
    }
}

/// Opt-in bulky outputs of a run — everything that grows with program
/// length. Requested via [`RunRequest::with_timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// The full per-instruction trace: instruction → execution site with
    /// dispatch/completion times (Figure 10).
    pub timeline: Vec<TimelineEntry>,
}

/// A run's summary plus its optional artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The cheap, always-present summary.
    pub summary: RunSummary,
    /// Bulky opt-in outputs; `None` unless the request asked for them.
    pub artifacts: Option<RunArtifacts>,
}

impl RunOutcome {
    /// Converts into the engine-level [`RunReport`] shape (used by the
    /// deprecated [`crate::Workbench`] shim and by code migrating
    /// incrementally onto the session API). The timeline is empty unless the
    /// run collected artifacts.
    pub fn into_run_report(self) -> RunReport {
        let energy = self.summary.energy_split.unwrap_or(EnergySummary {
            data_movement: Energy::ZERO,
            compute: self.summary.total_energy,
        });
        RunReport {
            workload: self.summary.workload,
            policy: self.summary.policy,
            instructions: self.summary.instructions,
            total_time: self.summary.total_time,
            energy,
            breakdown: self.summary.breakdown,
            offload_mix: self.summary.offload_mix,
            latency: self.summary.latency,
            timeline: self.artifacts.map(|a| a.timeline).unwrap_or_default(),
            overhead: self.summary.overhead,
        }
    }
}

/// Everything needed to execute one request with no reference back to the
/// session — the unit shipped to pool workers.
struct RunPlan {
    program: Arc<VectorProgram>,
    options: RunOptions,
    repeats: u32,
    collect_energy_split: bool,
    percentiles: Vec<f64>,
}

/// Shared state of one in-flight batch: the plans plus the work-stealing
/// cursor.
struct BatchState {
    ssd: SsdConfig,
    host: HostConfig,
    plans: Vec<RunPlan>,
    next: AtomicUsize,
}

fn execute_plan(ssd: &SsdConfig, host: &HostConfig, plan: &RunPlan) -> Result<RunOutcome> {
    let mut report: Option<RunReport> = None;
    for _ in 0..plan.repeats {
        // A fresh device per repeat keeps every run independent and the
        // whole batch bit-identical to serial execution.
        let mut engine = RuntimeEngine::with_host(ssd, host)?;
        engine.prepare(&plan.program)?;
        report = Some(engine.run(&plan.program, &plan.options)?);
    }
    let report = report.expect("repeats is clamped to at least one");
    let percentiles = plan
        .percentiles
        .iter()
        .map(|&p| (p, report.latency.percentile(p)))
        .collect();
    let summary = RunSummary {
        workload: report.workload,
        policy: report.policy,
        instructions: report.instructions,
        repeats: plan.repeats,
        total_time: report.total_time,
        total_energy: report.energy.total(),
        energy_split: plan.collect_energy_split.then_some(report.energy),
        breakdown: report.breakdown,
        offload_mix: report.offload_mix,
        latency: report.latency,
        percentiles,
        overhead: report.overhead,
    };
    let artifacts = plan.options.record_timeline.then_some(RunArtifacts {
        timeline: report.timeline,
    });
    Ok(RunOutcome { summary, artifacts })
}

/// Configures and builds a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    ssd: SsdConfig,
    host: HostConfig,
    workers: Option<usize>,
    parallel: bool,
}

impl SessionBuilder {
    /// Starts a builder for the given SSD configuration (default host
    /// configuration, one batch worker per CPU core).
    pub fn new(ssd: SsdConfig) -> Self {
        SessionBuilder {
            ssd,
            host: HostConfig::default(),
            workers: None,
            parallel: true,
        }
    }

    /// Replaces the host configuration.
    pub fn host(mut self, host: HostConfig) -> Self {
        self.host = host;
        self
    }

    /// Overrides the batch worker-thread count (default: one per available
    /// CPU core; clamped to at least one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Disables the batch fan-out: [`Session::submit_batch`] runs requests
    /// one at a time on the calling thread. Results are bit-identical either
    /// way; the serial path exists for comparison and debugging.
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Builds the session. The thread pool starts lazily on the first
    /// parallel batch, so summary-only sessions never spawn threads.
    pub fn build(self) -> Session {
        let workers = if self.parallel {
            self.workers.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        } else {
            1
        };
        Session {
            ssd: self.ssd,
            host: self.host,
            workers,
            registry: ProgramRegistry::new(),
            pool: OnceLock::new(),
        }
    }
}

/// A long-lived execution service: device/host configuration, the program
/// registry, and a work-stealing pool for batch fan-out.
///
/// Every submitted run executes on a **fresh simulated device**, so runs are
/// independent, deterministic, and identical whether submitted one at a time
/// or batched across threads. See the [module documentation](self) for an
/// end-to-end example.
#[derive(Debug)]
pub struct Session {
    ssd: SsdConfig,
    host: HostConfig,
    workers: usize,
    registry: ProgramRegistry,
    pool: OnceLock<ThreadPool>,
}

impl Session {
    /// Starts a [`SessionBuilder`] for the given SSD configuration.
    pub fn builder(ssd: SsdConfig) -> SessionBuilder {
        SessionBuilder::new(ssd)
    }

    /// A session with all defaults for the given SSD configuration.
    pub fn new(ssd: SsdConfig) -> Session {
        SessionBuilder::new(ssd).build()
    }

    /// The SSD configuration every run uses.
    pub fn ssd_config(&self) -> &SsdConfig {
        &self.ssd
    }

    /// The host configuration every run uses.
    pub fn host_config(&self) -> &HostConfig {
        &self.host
    }

    /// Number of worker threads batches fan out over (1 = serial).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Validates and registers a program for reuse across runs.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for structurally invalid
    /// programs.
    pub fn register(&mut self, program: VectorProgram) -> Result<ProgramId> {
        self.registry.register(program)
    }

    /// The program behind a handle, if registered.
    pub fn program(&self, id: ProgramId) -> Option<&VectorProgram> {
        self.registry.get(id).map(Arc::as_ref)
    }

    /// The program registry.
    pub fn registry(&self) -> &ProgramRegistry {
        &self.registry
    }

    /// Serializes the whole registry so another process can
    /// [`Session::import_registry`] it instead of re-running the vectorizer.
    pub fn export_registry(&self) -> Vec<u8> {
        self.registry.to_bytes()
    }

    /// Appends every program from a serialized registry, returning the newly
    /// assigned ids in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for corrupt bytes; on error
    /// the session's registry is left unchanged.
    pub fn import_registry(&mut self, bytes: &[u8]) -> Result<Vec<ProgramId>> {
        let imported = ProgramRegistry::from_bytes(bytes)?;
        let mut ids = Vec::with_capacity(imported.programs.len());
        for program in imported.programs {
            let id = ProgramId(self.registry.programs.len() as u32);
            self.registry.programs.push(program);
            ids.push(id);
        }
        Ok(ids)
    }

    fn plan(&self, request: &RunRequest) -> Result<RunPlan> {
        let program = match &request.source {
            ProgramSource::Registered(id) => {
                Arc::clone(self.registry.get(*id).ok_or_else(|| {
                    ConduitError::invalid_program(format!(
                        "program {id} is not registered in this session"
                    ))
                })?)
            }
            ProgramSource::Inline(program) => Arc::clone(program),
        };
        Ok(RunPlan {
            program,
            options: request.run_options(),
            repeats: request.repeats,
            collect_energy_split: request.collect_energy_split,
            percentiles: request.percentiles.clone(),
        })
    }

    /// Executes one request on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates unknown program handles, preparation and simulation
    /// errors.
    pub fn submit(&self, request: &RunRequest) -> Result<RunOutcome> {
        let plan = self.plan(request)?;
        execute_plan(&self.ssd, &self.host, &plan)
    }

    /// Executes a batch of independent requests, fanning them out across
    /// the session's thread pool, and returns the outcomes in request order.
    ///
    /// Each run simulates on a fresh device, so the outcomes are
    /// **bit-identical** to calling [`Session::submit`] on each request in
    /// order — only the wall-clock time changes
    /// (`tests/integration_determinism.rs` asserts this).
    ///
    /// # Errors
    ///
    /// Resolves every request's program up front (failing fast on unknown
    /// handles) and propagates the first simulation error by request order.
    pub fn submit_batch(&self, requests: &[RunRequest]) -> Result<Vec<RunOutcome>> {
        let plans: Vec<RunPlan> = requests
            .iter()
            .map(|r| self.plan(r))
            .collect::<Result<_>>()?;
        let fan_out = self.workers.min(plans.len());
        if fan_out <= 1 {
            return plans
                .iter()
                .map(|p| execute_plan(&self.ssd, &self.host, p))
                .collect();
        }

        let pool = self.pool.get_or_init(|| ThreadPool::new(self.workers));
        let total = plans.len();
        let shared = Arc::new(BatchState {
            ssd: self.ssd.clone(),
            host: self.host.clone(),
            plans,
            next: AtomicUsize::new(0),
        });
        let (tx, rx) = channel();
        for _ in 0..fan_out {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            pool.execute(move || loop {
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= shared.plans.len() {
                    break;
                }
                let outcome = execute_plan(&shared.ssd, &shared.host, &shared.plans[i]);
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<Result<RunOutcome>>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (i, outcome) = rx
                .recv()
                .map_err(|_| ConduitError::simulation("batch worker terminated unexpectedly"))?;
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request index reports exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand};

    fn program(name: &str) -> VectorProgram {
        let mut prog = VectorProgram::new(name);
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        prog.push_binary(OpType::Add, Operand::result(a), Operand::page(8));
        prog
    }

    fn session() -> Session {
        Session::builder(SsdConfig::small_for_tests()).build()
    }

    #[test]
    fn register_and_submit_summary_only() {
        let mut s = session();
        let id = s.register(program("s")).unwrap();
        let outcome = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        assert_eq!(outcome.summary.instructions, 2);
        assert_eq!(outcome.summary.workload, "s");
        assert!(outcome.summary.total_time > Duration::ZERO);
        assert!(outcome.summary.total_energy > Energy::ZERO);
        assert!(outcome.summary.energy_split.is_some());
        assert_eq!(outcome.summary.latency.len(), 2);
        assert_eq!(outcome.summary.percentiles.len(), DEFAULT_PERCENTILES.len());
        // Timelines are opt-in.
        assert!(outcome.artifacts.is_none());
    }

    #[test]
    fn collection_flags_are_honoured() {
        let mut s = session();
        let id = s.register(program("flags")).unwrap();
        let outcome = s
            .submit(
                &RunRequest::new(id, Policy::Conduit)
                    .with_timeline()
                    .energy_split(false)
                    .percentiles(&[0.5]),
            )
            .unwrap();
        let timeline = &outcome.artifacts.as_ref().unwrap().timeline;
        assert_eq!(timeline.len(), 2);
        assert!(outcome.summary.energy_split.is_none());
        assert_eq!(outcome.summary.percentiles.len(), 1);
        assert_eq!(outcome.summary.percentiles[0].0, 0.5);
    }

    #[test]
    fn unknown_program_id_is_rejected() {
        let mut a = session();
        let mut b = session();
        let _ = a.register(program("a")).unwrap();
        let id_b = b.register(program("b")).unwrap();
        let _ = b.register(program("b2")).unwrap();
        // An id minted by another session with more programs is unknown
        // here.
        let foreign = ProgramId(7);
        assert!(a
            .submit(&RunRequest::new(foreign, Policy::Conduit))
            .is_err());
        // Unknown handles fail the whole batch up front, before anything
        // runs.
        assert!(a
            .submit_batch(&[
                RunRequest::new(id_b, Policy::Conduit),
                RunRequest::new(foreign, Policy::Conduit),
            ])
            .is_err());
    }

    #[test]
    fn invalid_program_is_rejected_at_registration() {
        let mut s = session();
        let mut bad = VectorProgram::new("bad");
        bad.push(conduit_types::VectorInst::with_srcs(
            0,
            OpType::Add,
            vec![Operand::page(0)],
        ));
        assert!(s.register(bad).is_err());
    }

    #[test]
    fn repeats_are_deterministic() {
        let mut s = session();
        let id = s.register(program("rep")).unwrap();
        let once = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        let thrice = s
            .submit(&RunRequest::new(id, Policy::Conduit).repeat(3))
            .unwrap();
        assert_eq!(thrice.summary.repeats, 3);
        assert_eq!(once.summary.total_time, thrice.summary.total_time);
        assert_eq!(once.summary.offload_mix, thrice.summary.offload_mix);
    }

    #[test]
    fn batch_matches_serial_submission() {
        let mut s = Session::builder(SsdConfig::small_for_tests())
            .workers(4)
            .build();
        let id = s.register(program("batch")).unwrap();
        let requests: Vec<RunRequest> = [Policy::HostCpu, Policy::Conduit, Policy::Ideal]
            .into_iter()
            .map(|p| RunRequest::new(id, p))
            .collect();
        let batched = s.submit_batch(&requests).unwrap();
        let serial: Vec<RunOutcome> = requests.iter().map(|r| s.submit(r).unwrap()).collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn registry_roundtrips_through_bytes() {
        let mut s = session();
        let id = s.register(program("persist")).unwrap();
        let bytes = s.export_registry();

        let mut other = session();
        let ids = other.import_registry(&bytes).unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(other.program(ids[0]), s.program(id));

        let a = s.submit(&RunRequest::new(id, Policy::Conduit)).unwrap();
        let b = other
            .submit(&RunRequest::new(ids[0], Policy::Conduit))
            .unwrap();
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn corrupt_registry_bytes_are_rejected() {
        let mut s = session();
        let _ = s.register(program("c")).unwrap();
        let mut bytes = s.export_registry();
        assert!(ProgramRegistry::from_bytes(&bytes[..5]).is_err());
        bytes[0] = b'X';
        assert!(ProgramRegistry::from_bytes(&bytes).is_err());
        let mut t = session();
        assert!(t.import_registry(&[1, 2, 3]).is_err());
        assert!(t.registry().is_empty());
    }

    #[test]
    fn inline_requests_run_without_registration() {
        let s = session();
        let outcome = s
            .submit(&RunRequest::inline(program("inline"), Policy::HostCpu))
            .unwrap();
        assert_eq!(outcome.summary.policy, Policy::HostCpu);
        assert!(s.registry().is_empty());
    }

    #[test]
    fn outcome_converts_to_run_report() {
        let mut s = session();
        let id = s.register(program("report")).unwrap();
        let outcome = s
            .submit(&RunRequest::new(id, Policy::Conduit).with_timeline())
            .unwrap();
        let summary = outcome.summary.clone();
        let report = outcome.into_run_report();
        assert_eq!(report.total_time, summary.total_time);
        assert_eq!(report.energy.total(), summary.total_energy);
        assert_eq!(report.timeline.len(), 2);
    }
}
