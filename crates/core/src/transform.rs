//! Instruction transformation: from Conduit's vectorized instructions to the
//! native primitives of each SSD compute resource.
//!
//! The transformation unit (§4.3.2) keeps a translation table in SSD DRAM
//! that maps every operation type to the native instruction of each
//! resource:
//!
//! * **ISP** — ARM M-Profile Vector Extension (MVE/Helium) instructions,
//! * **PuD-SSD** — `bbop_*` ISA extensions from SIMDRAM / MIMDRAM / Proteus,
//! * **IFP** — Flash-Cosmos multi-wordline-sensing (MWS) primitives and
//!   Ares-Flash `shift_and_add`.
//!
//! It also handles the vector-width mismatch between the 4096-lane
//! page-aligned vectors the compiler emits and the narrower widths the other
//! resources support (2048-element DRAM rows, 8-lane MVE registers).

use conduit_types::{Duration, OpType, Resource, SsdConfig};

/// The native instruction-set family of a compute resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeIsa {
    /// ARM M-Profile Vector Extension (Helium) on the controller cores.
    ArmMve,
    /// SIMDRAM/MIMDRAM/Proteus bulk-bitwise operation extensions.
    PudBbop,
    /// Flash-Cosmos multi-wordline sensing + Ares-Flash latch arithmetic.
    FlashMws,
}

impl NativeIsa {
    /// The ISA used by a resource.
    pub fn of(resource: Resource) -> NativeIsa {
        match resource {
            Resource::Isp => NativeIsa::ArmMve,
            Resource::PudSsd => NativeIsa::PudBbop,
            Resource::Ifp => NativeIsa::FlashMws,
        }
    }
}

/// One entry of the translation table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TranslationEntry {
    /// The vector operation being translated.
    pub op: OpType,
    /// The target resource.
    pub resource: Resource,
    /// The native ISA family.
    pub isa: NativeIsa,
    /// The native mnemonic.
    pub native: &'static str,
}

/// The instruction transformation unit.
///
/// # Examples
///
/// ```
/// use conduit::InstructionTransformer;
/// use conduit_types::{OpType, Resource, SsdConfig};
///
/// let tx = InstructionTransformer::new(&SsdConfig::default());
/// let entry = tx.lookup(OpType::And, Resource::Ifp).unwrap();
/// assert_eq!(entry.native, "mws_and");
/// assert!(tx.lookup(OpType::Div, Resource::Ifp).is_none());
/// assert_eq!(tx.sub_ops(Resource::Isp, 4096, 32), 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionTransformer {
    entries: Vec<TranslationEntry>,
    lookup_latency: Duration,
    mve_bytes: u32,
    dram_row_bytes: u64,
    flash_page_bytes: u64,
}

impl InstructionTransformer {
    /// Builds the translation table for the configured device.
    pub fn new(cfg: &SsdConfig) -> Self {
        let mut entries = Vec::new();
        for op in OpType::ALL {
            for resource in Resource::ALL {
                if resource.supports(op) {
                    entries.push(TranslationEntry {
                        op,
                        resource,
                        isa: NativeIsa::of(resource),
                        native: Self::mnemonic(op, resource),
                    });
                }
            }
        }
        InstructionTransformer {
            entries,
            lookup_latency: cfg.overheads.transform_lookup,
            mve_bytes: cfg.ctrl.mve_bytes,
            dram_row_bytes: cfg.dram.row_bytes,
            flash_page_bytes: cfg.flash.page_bytes,
        }
    }

    fn mnemonic(op: OpType, resource: Resource) -> &'static str {
        match (resource, op) {
            (Resource::Ifp, OpType::And) => "mws_and",
            (Resource::Ifp, OpType::Or) => "mws_or",
            (Resource::Ifp, OpType::Nand) => "mws_nand",
            (Resource::Ifp, OpType::Nor) => "mws_nor",
            (Resource::Ifp, OpType::Not) => "latch_not",
            (Resource::Ifp, OpType::Xor) => "latch_xor",
            (Resource::Ifp, OpType::Add) => "shift_and_add",
            (Resource::Ifp, OpType::Sub) => "shift_and_sub",
            (Resource::Ifp, OpType::Mul) => "shift_and_add_mul",
            (Resource::Ifp, OpType::Copy) => "page_copy",
            (Resource::Ifp, _) => "mws_unknown",
            (Resource::PudSsd, OpType::And) => "bbop_and",
            (Resource::PudSsd, OpType::Or) => "bbop_or",
            (Resource::PudSsd, OpType::Xor) => "bbop_xor",
            (Resource::PudSsd, OpType::Not) => "bbop_not",
            (Resource::PudSsd, OpType::Nand) => "bbop_nand",
            (Resource::PudSsd, OpType::Nor) => "bbop_nor",
            (Resource::PudSsd, OpType::Shl) => "bbop_shl",
            (Resource::PudSsd, OpType::Shr) => "bbop_shr",
            (Resource::PudSsd, OpType::Add) => "bbop_add",
            (Resource::PudSsd, OpType::Sub) => "bbop_sub",
            (Resource::PudSsd, OpType::Mul) => "bbop_mul",
            (Resource::PudSsd, OpType::Min) => "bbop_min",
            (Resource::PudSsd, OpType::Max) => "bbop_max",
            (Resource::PudSsd, OpType::CmpEq) => "bbop_cmpeq",
            (Resource::PudSsd, OpType::CmpLt) => "bbop_cmplt",
            (Resource::PudSsd, OpType::CmpGt) => "bbop_cmpgt",
            (Resource::PudSsd, OpType::Copy) => "rowclone_copy",
            (Resource::PudSsd, _) => "bbop_unknown",
            (Resource::Isp, OpType::And) => "vand",
            (Resource::Isp, OpType::Or) => "vorr",
            (Resource::Isp, OpType::Xor) => "veor",
            (Resource::Isp, OpType::Not) => "vmvn",
            (Resource::Isp, OpType::Nand) => "vand_vmvn",
            (Resource::Isp, OpType::Nor) => "vorr_vmvn",
            (Resource::Isp, OpType::Shl) => "vshl",
            (Resource::Isp, OpType::Shr) => "vshr",
            (Resource::Isp, OpType::Add) => "vadd",
            (Resource::Isp, OpType::Sub) => "vsub",
            (Resource::Isp, OpType::Mul) => "vmul",
            (Resource::Isp, OpType::Div) => "sdiv_loop",
            (Resource::Isp, OpType::Min) => "vmin",
            (Resource::Isp, OpType::Max) => "vmax",
            (Resource::Isp, OpType::CmpEq) => "vcmp_eq",
            (Resource::Isp, OpType::CmpLt) => "vcmp_lt",
            (Resource::Isp, OpType::CmpGt) => "vcmp_gt",
            (Resource::Isp, OpType::Select) => "vsel",
            (Resource::Isp, OpType::Copy) => "vldr_vstr",
            (Resource::Isp, OpType::Shuffle) => "vtbl",
            (Resource::Isp, OpType::Lookup) => "vldr_gather",
            (Resource::Isp, OpType::ReduceAdd) => "vaddv",
            (Resource::Isp, OpType::ReduceMax) => "vmaxv",
            (Resource::Isp, OpType::Scalar) => "scalar_region",
        }
    }

    /// Looks up the translation entry for `(op, resource)`, or `None` if the
    /// resource does not support the operation.
    pub fn lookup(&self, op: OpType, resource: Resource) -> Option<&TranslationEntry> {
        self.entries
            .iter()
            .find(|e| e.op == op && e.resource == resource)
    }

    /// The latency of one translation-table lookup (≈300 ns, §4.5).
    pub fn lookup_latency(&self) -> Duration {
        self.lookup_latency
    }

    /// All translation entries (one per supported `(op, resource)` pair).
    pub fn entries(&self) -> &[TranslationEntry] {
        &self.entries
    }

    /// The storage footprint of the translation table in SSD DRAM: four
    /// bytes per entry (§4.5 reports ≈1.5 KiB in total for the ~300-entry
    /// ISP-inclusive table; this table stores the vector-op subset).
    pub fn table_bytes(&self) -> u64 {
        self.entries.len() as u64 * 4
    }

    /// Number of native sub-operations a `lanes`-lane vector of
    /// `elem_bits`-bit elements splits into on `resource` (the vector-width
    /// mismatch handling of §4.3.2).
    pub fn sub_ops(&self, resource: Resource, lanes: u32, elem_bits: u32) -> u32 {
        let vector_bytes = (lanes as u64) * (elem_bits as u64) / 8;
        let unit_bytes = match resource {
            Resource::Isp => self.mve_bytes as u64,
            Resource::PudSsd => self.dram_row_bytes,
            Resource::Ifp => self.flash_page_bytes * conduit_types::addr::PAGES_PER_VECTOR,
        };
        vector_bytes.div_ceil(unit_bytes).max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx() -> InstructionTransformer {
        InstructionTransformer::new(&SsdConfig::default())
    }

    #[test]
    fn table_covers_exactly_the_supported_pairs() {
        let t = tx();
        let expected: usize = Resource::ALL.iter().map(|r| r.supported_op_count()).sum();
        assert_eq!(t.entries().len(), expected);
        for e in t.entries() {
            assert!(e.resource.supports(e.op));
            assert_eq!(e.isa, NativeIsa::of(e.resource));
            assert!(!e.native.is_empty());
            assert!(
                !e.native.contains("unknown"),
                "{:?} has no real mnemonic",
                e
            );
        }
    }

    #[test]
    fn lookups_match_the_paper_mnemonics() {
        let t = tx();
        assert_eq!(
            t.lookup(OpType::And, Resource::Ifp).unwrap().native,
            "mws_and"
        );
        assert_eq!(
            t.lookup(OpType::Mul, Resource::Ifp).unwrap().native,
            "shift_and_add_mul"
        );
        assert_eq!(
            t.lookup(OpType::Add, Resource::PudSsd).unwrap().native,
            "bbop_add"
        );
        assert_eq!(t.lookup(OpType::Add, Resource::Isp).unwrap().native, "vadd");
        assert!(t.lookup(OpType::Scalar, Resource::Ifp).is_none());
    }

    #[test]
    fn width_splitting_matches_resource_granularity() {
        let t = tx();
        // 16 KiB vector: one flash-page group, two 8 KiB DRAM rows, 512 MVE ops.
        assert_eq!(t.sub_ops(Resource::Ifp, 4096, 32), 1);
        assert_eq!(t.sub_ops(Resource::PudSsd, 4096, 32), 2);
        assert_eq!(t.sub_ops(Resource::Isp, 4096, 32), 512);
        // Narrow vectors still need at least one sub-op.
        assert_eq!(t.sub_ops(Resource::PudSsd, 16, 8), 1);
    }

    #[test]
    fn storage_overhead_is_about_a_kibibyte() {
        let t = tx();
        assert!(t.table_bytes() >= 150);
        assert!(t.table_bytes() <= 2048);
        assert_eq!(t.lookup_latency(), Duration::from_ns(300.0));
    }
}
