//! A convenience facade for running programs under different policies.

use conduit_types::{HostConfig, Result, SsdConfig, VectorProgram};

use crate::engine::{RunOptions, RuntimeEngine};
use crate::policy::Policy;
use crate::report::RunReport;

/// Runs vector programs on freshly-instantiated devices, one per run, so
/// that policies can be compared on identical initial conditions.
///
/// # Examples
///
/// ```
/// use conduit::{Policy, Workbench};
/// use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
///
/// let mut prog = VectorProgram::new("cmp");
/// prog.push_binary(OpType::And, Operand::page(0), Operand::page(4));
///
/// let mut bench = Workbench::new(SsdConfig::small_for_tests());
/// let reports = bench.compare(&prog, &[Policy::HostCpu, Policy::Conduit])?;
/// assert_eq!(reports.len(), 2);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Workbench {
    ssd: SsdConfig,
    host: HostConfig,
}

impl Workbench {
    /// Creates a workbench for the given SSD configuration and the default
    /// host configuration.
    pub fn new(ssd: SsdConfig) -> Self {
        Workbench {
            ssd,
            host: HostConfig::default(),
        }
    }

    /// Builder-style: replaces the host configuration.
    pub fn with_host(mut self, host: HostConfig) -> Self {
        self.host = host;
        self
    }

    /// The SSD configuration used for every run.
    pub fn ssd_config(&self) -> &SsdConfig {
        &self.ssd
    }

    /// Runs `program` under `policy` with default options on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn run(&mut self, program: &VectorProgram, policy: Policy) -> Result<RunReport> {
        self.run_with(program, &RunOptions::new(policy))
    }

    /// Runs `program` with explicit options on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn run_with(&mut self, program: &VectorProgram, options: &RunOptions) -> Result<RunReport> {
        let mut engine = RuntimeEngine::with_host(&self.ssd, &self.host)?;
        engine.prepare(program)?;
        engine.run(program, options)
    }

    /// Runs `program` under each policy (each on a fresh device) and returns
    /// the reports in the same order.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn compare(
        &mut self,
        program: &VectorProgram,
        policies: &[Policy],
    ) -> Result<Vec<RunReport>> {
        policies.iter().map(|p| self.run(program, *p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand};

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("wb");
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        prog.push_binary(OpType::Add, Operand::result(a), Operand::page(8));
        prog
    }

    #[test]
    fn compare_runs_each_policy_fresh() {
        let mut bench = Workbench::new(SsdConfig::small_for_tests());
        let reports = bench
            .compare(
                &program(),
                &[Policy::HostCpu, Policy::Conduit, Policy::Ideal],
            )
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].policy, Policy::HostCpu);
        assert_eq!(reports[2].policy, Policy::Ideal);
        // Fresh devices: repeated runs of the same policy are identical.
        let again = bench.run(&program(), Policy::Conduit).unwrap();
        assert_eq!(again.total_time, reports[1].total_time);
    }

    #[test]
    fn custom_options_are_honoured() {
        let mut bench = Workbench::new(SsdConfig::small_for_tests());
        let report = bench
            .run_with(
                &program(),
                &RunOptions::new(Policy::Conduit).without_timeline(),
            )
            .unwrap();
        assert!(report.timeline.is_empty());
    }
}
