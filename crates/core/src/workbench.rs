//! A deprecated convenience facade, kept as a thin shim over the session
//! API during the `Workbench` → [`Session`] migration.
#![allow(deprecated)]

use std::sync::Arc;

use conduit_types::{HostConfig, Result, SsdConfig, VectorProgram};

use crate::engine::RunOptions;
use crate::policy::Policy;
use crate::report::RunReport;
use crate::session::{RunRequest, Session};

/// Runs vector programs on freshly-instantiated devices, one per run, so
/// that policies can be compared on identical initial conditions.
///
/// Deprecated: this is now a thin shim over [`Session`], which adds a
/// program registry (register once, run many times, persist across
/// processes), cheap summary-only reports and parallel batch submission.
/// Migrate as:
///
/// ```
/// use conduit::{Policy, RunRequest, Session};
/// use conduit_types::{OpType, Operand, SsdConfig, VectorProgram};
///
/// let mut prog = VectorProgram::new("cmp");
/// prog.push_binary(OpType::And, Operand::page(0), Operand::page(4));
///
/// // Workbench::new(cfg).run(&prog, policy)?  becomes:
/// let mut session = Session::builder(SsdConfig::small_for_tests()).build();
/// let id = session.register(prog)?;
/// let outcome = session.submit(&RunRequest::new(id, Policy::Conduit))?;
/// assert_eq!(outcome.summary.instructions, 1);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use conduit::Session with RunRequest/RunSummary instead"
)]
#[derive(Debug)]
pub struct Workbench {
    session: Session,
}

impl Workbench {
    /// Creates a workbench for the given SSD configuration and the default
    /// host configuration.
    pub fn new(ssd: SsdConfig) -> Self {
        Workbench {
            session: Session::builder(ssd).serial().build(),
        }
    }

    /// Builder-style: replaces the host configuration.
    pub fn with_host(self, host: HostConfig) -> Self {
        let ssd = self.session.ssd_config().clone();
        Workbench {
            session: Session::builder(ssd).host(host).serial().build(),
        }
    }

    /// The SSD configuration used for every run.
    pub fn ssd_config(&self) -> &SsdConfig {
        self.session.ssd_config()
    }

    /// Runs `program` under `policy` with default options on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn run(&mut self, program: &VectorProgram, policy: Policy) -> Result<RunReport> {
        self.run_with(program, &RunOptions::new(policy))
    }

    /// Runs `program` with explicit options on a fresh device.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn run_with(&mut self, program: &VectorProgram, options: &RunOptions) -> Result<RunReport> {
        self.run_shared(Arc::new(program.clone()), options)
    }

    fn run_shared(
        &mut self,
        program: Arc<VectorProgram>,
        options: &RunOptions,
    ) -> Result<RunReport> {
        let mut request = RunRequest::inline(program, options.policy)
            .cost_function(options.cost_function)
            .timeline(options.record_timeline);
        if !options.charge_overheads {
            request = request.without_overheads();
        }
        Ok(self.session.submit(&request)?.into_run_report())
    }

    /// Runs `program` under each policy (each on a fresh device) and returns
    /// the reports in the same order.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation errors.
    pub fn compare(
        &mut self,
        program: &VectorProgram,
        policies: &[Policy],
    ) -> Result<Vec<RunReport>> {
        // One copy shared by every policy's request.
        let shared = Arc::new(program.clone());
        policies
            .iter()
            .map(|&p| self.run_shared(Arc::clone(&shared), &RunOptions::new(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{OpType, Operand};

    fn program() -> VectorProgram {
        let mut prog = VectorProgram::new("wb");
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        prog.push_binary(OpType::Add, Operand::result(a), Operand::page(8));
        prog
    }

    #[test]
    fn compare_runs_each_policy_fresh() {
        let mut bench = Workbench::new(SsdConfig::small_for_tests());
        let reports = bench
            .compare(
                &program(),
                &[Policy::HostCpu, Policy::Conduit, Policy::Ideal],
            )
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].policy, Policy::HostCpu);
        assert_eq!(reports[2].policy, Policy::Ideal);
        // Fresh devices: repeated runs of the same policy are identical.
        let again = bench.run(&program(), Policy::Conduit).unwrap();
        assert_eq!(again.total_time, reports[1].total_time);
    }

    #[test]
    fn custom_options_are_honoured() {
        let mut bench = Workbench::new(SsdConfig::small_for_tests());
        let report = bench
            .run_with(
                &program(),
                &RunOptions::new(Policy::Conduit).without_timeline(),
            )
            .unwrap();
        assert!(report.timeline.is_empty());
    }

    #[test]
    fn shim_matches_direct_session_use() {
        let mut bench = Workbench::new(SsdConfig::small_for_tests());
        let via_shim = bench.run(&program(), Policy::Conduit).unwrap();

        let mut session = Session::builder(SsdConfig::small_for_tests()).build();
        let id = session.register(program()).unwrap();
        let direct = session
            .submit(&RunRequest::new(id, Policy::Conduit).with_timeline())
            .unwrap();
        assert_eq!(via_shim.total_time, direct.summary.total_time);
        assert_eq!(via_shim.timeline, direct.artifacts.unwrap().timeline);
    }
}
