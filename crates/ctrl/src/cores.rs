//! Partitioning of the controller's embedded cores between firmware duties
//! and offloaded computation.

use conduit_types::{ConduitError, CtrlConfig, Result};

/// The duty assigned to one embedded core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreRole {
    /// Runs the flash translation layer (address translation, GC,
    /// wear-leveling) and background maintenance.
    Ftl,
    /// Handles host-interface (NVMe) communication.
    HostInterface,
    /// Runs Conduit's runtime offloader and instruction transformation.
    Offloader,
    /// Executes offloaded vector instructions (the ISP compute core).
    Compute,
}

/// How the controller's cores are allocated to roles.
///
/// The paper (footnote 3) dedicates one core to offloaded computation and
/// keeps the remaining cores on latency-critical firmware tasks.
///
/// # Examples
///
/// ```
/// use conduit_ctrl::{CoreAllocation, CoreRole};
/// use conduit_types::CtrlConfig;
///
/// let alloc = CoreAllocation::standard(&CtrlConfig::default())?;
/// assert_eq!(alloc.count(CoreRole::Compute), 1);
/// assert_eq!(alloc.total(), 5);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAllocation {
    roles: Vec<CoreRole>,
}

impl CoreAllocation {
    /// The paper's default allocation: one compute core, one offloader core,
    /// one host-interface core, and the rest on FTL duties.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if the configuration has
    /// fewer than three cores or requests more compute cores than exist.
    pub fn standard(cfg: &CtrlConfig) -> Result<Self> {
        if cfg.cores < 3 {
            return Err(ConduitError::invalid_config(
                "controller needs at least 3 cores (FTL, host, compute)",
            ));
        }
        if cfg.compute_cores >= cfg.cores {
            return Err(ConduitError::invalid_config(
                "compute cores must leave at least two cores for firmware",
            ));
        }
        let mut roles = Vec::with_capacity(cfg.cores as usize);
        for _ in 0..cfg.compute_cores {
            roles.push(CoreRole::Compute);
        }
        roles.push(CoreRole::Offloader);
        roles.push(CoreRole::HostInterface);
        while roles.len() < cfg.cores as usize {
            roles.push(CoreRole::Ftl);
        }
        roles.truncate(cfg.cores as usize);
        Ok(CoreAllocation { roles })
    }

    /// Total number of cores.
    pub fn total(&self) -> usize {
        self.roles.len()
    }

    /// Number of cores assigned to `role`.
    pub fn count(&self, role: CoreRole) -> usize {
        self.roles.iter().filter(|&&r| r == role).count()
    }

    /// The roles of all cores, in core-index order.
    pub fn roles(&self) -> &[CoreRole] {
        &self.roles
    }

    /// Indices of the cores assigned to `role`.
    pub fn cores_with(&self, role: CoreRole) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| (r == role).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_allocation_matches_paper() {
        let alloc = CoreAllocation::standard(&CtrlConfig::default()).unwrap();
        assert_eq!(alloc.total(), 5);
        assert_eq!(alloc.count(CoreRole::Compute), 1);
        assert_eq!(alloc.count(CoreRole::Offloader), 1);
        assert_eq!(alloc.count(CoreRole::HostInterface), 1);
        assert_eq!(alloc.count(CoreRole::Ftl), 2);
        assert_eq!(alloc.cores_with(CoreRole::Compute), vec![0]);
    }

    #[test]
    fn too_few_cores_is_rejected() {
        let cfg = CtrlConfig {
            cores: 2,
            ..CtrlConfig::default()
        };
        assert!(CoreAllocation::standard(&cfg).is_err());
    }

    #[test]
    fn compute_cannot_starve_firmware() {
        let cfg = CtrlConfig {
            cores: 4,
            compute_cores: 4,
            ..CtrlConfig::default()
        };
        assert!(CoreAllocation::standard(&cfg).is_err());
    }

    #[test]
    fn more_compute_cores_when_configured() {
        let cfg = CtrlConfig {
            cores: 6,
            compute_cores: 2,
            ..CtrlConfig::default()
        };
        let alloc = CoreAllocation::standard(&cfg).unwrap();
        assert_eq!(alloc.count(CoreRole::Compute), 2);
        assert_eq!(alloc.total(), 6);
    }
}
