//! In-storage processing (ISP) compute model.
//!
//! Models one ARM Cortex-R8-class embedded core at 1.5 GHz executing
//! vectorized instructions with the 32-byte MVE datapath. A 4096-lane
//! 32-bit vector therefore decomposes into 512 MVE micro-ops, each of which
//! also needs load/store micro-ops to stream operands through the vector
//! register file — this narrow datapath is exactly the "limited SIMD
//! parallelism" that constrains ISP throughput in the paper's case study.

use conduit_types::{CtrlConfig, Duration, Energy, OpType};

/// The latency and energy of one vector instruction executed on an embedded
/// controller core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspCost {
    /// End-to-end service latency on one core (excluding queueing and
    /// operand staging into controller SRAM).
    pub latency: Duration,
    /// Energy consumed by the core while executing the instruction.
    pub energy: Energy,
    /// Number of MVE micro-ops issued.
    pub uops: u64,
}

/// In-storage processing cost model for one embedded core.
///
/// # Examples
///
/// ```
/// use conduit_ctrl::IspModel;
/// use conduit_types::{CtrlConfig, OpType};
///
/// let isp = IspModel::new(&CtrlConfig::default());
/// // Everything is supported, but throughput is bounded by the 32 B datapath.
/// let c = isp.op_cost(OpType::Xor, 32, 4096);
/// assert_eq!(c.uops, 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IspModel {
    cfg: CtrlConfig,
}

impl IspModel {
    /// Builds an ISP model from the controller configuration.
    pub fn new(cfg: &CtrlConfig) -> Self {
        IspModel { cfg: cfg.clone() }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Compute cycles per MVE micro-op for the given operation, including
    /// the load/store micro-ops needed to stream operands through the
    /// vector register file and the loop-control overhead.
    pub fn cycles_per_uop(&self, op: OpType) -> u64 {
        let c = &self.cfg;
        let alu: u64 = match op {
            OpType::Mul => c.cycles_mul as u64,
            OpType::Div => c.cycles_div as u64,
            OpType::ReduceAdd | OpType::ReduceMax => c.cycles_mul as u64,
            OpType::Lookup | OpType::Shuffle => (c.cycles_simple * 2) as u64,
            OpType::Scalar => (c.cycles_simple * 4) as u64,
            _ => c.cycles_simple as u64,
        };
        // Two operand loads + one result store per micro-op, plus one cycle
        // of loop overhead.
        alu + 3 * c.cycles_mem as u64 + 1
    }

    /// Number of MVE micro-ops needed to cover `lanes` lanes of
    /// `elem_bits`-bit elements.
    pub fn uops(&self, elem_bits: u32, lanes: u32) -> u64 {
        let lanes_per_uop = self.cfg.lanes_per_uop(elem_bits) as u64;
        (lanes as u64).div_ceil(lanes_per_uop)
    }

    /// Latency and energy of executing one vector instruction on one core.
    ///
    /// ISP supports every operation; scalar/control regions are modelled as
    /// one micro-op per lane-equivalent of scalar work.
    pub fn op_cost(&self, op: OpType, elem_bits: u32, lanes: u32) -> IspCost {
        let uops = if op == OpType::Scalar {
            // Scalar regions execute one lane per iteration on the scalar
            // pipeline rather than the MVE datapath.
            lanes as u64
        } else {
            self.uops(elem_bits, lanes)
        };
        let cycles = uops * self.cycles_per_uop(op);
        let latency = self.cfg.cycles(cycles);
        let energy = Energy::from_power(self.cfg.core_power_w, latency);
        IspCost {
            latency,
            energy,
            uops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IspModel {
        IspModel::new(&CtrlConfig::default())
    }

    #[test]
    fn uop_counts_follow_datapath_width() {
        let m = model();
        assert_eq!(m.uops(32, 4096), 512);
        assert_eq!(m.uops(8, 4096), 128);
        assert_eq!(m.uops(32, 100), 13);
    }

    #[test]
    fn div_and_mul_cost_more_than_add() {
        let m = model();
        let add = m.op_cost(OpType::Add, 32, 4096);
        let mul = m.op_cost(OpType::Mul, 32, 4096);
        let div = m.op_cost(OpType::Div, 32, 4096);
        assert!(mul.latency > add.latency);
        assert!(div.latency > mul.latency);
    }

    #[test]
    fn full_vector_add_is_a_few_microseconds() {
        let m = model();
        let add = m.op_cost(OpType::Add, 32, 4096);
        // 512 uops * 8 cycles / 1.5 GHz ≈ 2.7 us
        assert!(add.latency > Duration::from_us(1.0));
        assert!(add.latency < Duration::from_us(10.0));
    }

    #[test]
    fn scalar_regions_pay_per_lane() {
        let m = model();
        let vec_add = m.op_cost(OpType::Add, 32, 4096);
        let scalar = m.op_cost(OpType::Scalar, 32, 4096);
        assert!(scalar.latency > vec_add.latency * 4);
        assert_eq!(scalar.uops, 4096);
    }

    #[test]
    fn narrow_elements_increase_throughput() {
        let m = model();
        let wide = m.op_cost(OpType::Add, 32, 4096);
        let narrow = m.op_cost(OpType::Add, 8, 4096);
        assert!(narrow.latency < wide.latency);
    }

    #[test]
    fn energy_tracks_latency() {
        let m = model();
        let a = m.op_cost(OpType::Add, 32, 4096);
        let b = m.op_cost(OpType::Mul, 32, 4096);
        assert!(b.energy > a.energy);
        assert!(a.energy > Energy::ZERO);
    }
}
