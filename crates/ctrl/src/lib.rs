//! # conduit-ctrl
//!
//! SSD controller embedded-core model (in-storage processing, ISP) for the
//! Conduit NDP framework.
//!
//! Modern SSD controllers contain several general-purpose embedded cores
//! (ARM Cortex-R8 class in Table 2 of the paper) that normally run the flash
//! translation layer and host-interface firmware. ISP repurposes one of them
//! to execute offloaded computation using the M-Profile Vector Extension
//! (MVE) SIMD datapath; the remaining cores keep running the FTL, host
//! communication, and Conduit's own offloader (paper footnote 3).
//!
//! The crate provides:
//!
//! * [`IspModel`] — per-vector-instruction latency and energy of MVE
//!   execution on one embedded core, including the loop and load/store
//!   micro-op overheads that make the controller's narrow (32 B) SIMD
//!   datapath the throughput bottleneck the paper describes,
//! * [`CoreAllocation`] / [`CoreRole`] — how the controller's cores are
//!   partitioned between firmware duties and offloaded compute.
//!
//! ## Example
//!
//! ```
//! use conduit_ctrl::IspModel;
//! use conduit_types::{CtrlConfig, OpType};
//!
//! let isp = IspModel::new(&CtrlConfig::default());
//! let add = isp.op_cost(OpType::Add, 32, 4096);
//! let div = isp.op_cost(OpType::Div, 32, 4096);
//! assert!(div.latency > add.latency);
//! ```

mod cores;
mod isp;

pub use cores::{CoreAllocation, CoreRole};
pub use isp::{IspCost, IspModel};
