//! Per-bank open-row bookkeeping.
//!
//! The event-driven simulator uses this to decide whether an access to a
//! cached page hits the open row (saving the activate/precharge) and to
//! track which rows are being used as PuD compute rows.

use conduit_types::DramConfig;

/// Open-row state of the SSD DRAM's banks.
///
/// # Examples
///
/// ```
/// use conduit_dram::BankState;
/// use conduit_types::DramConfig;
///
/// let mut banks = BankState::new(&DramConfig::default());
/// assert!(!banks.access(0, 17));  // first touch: row miss
/// assert!(banks.access(0, 17));   // same row: row hit
/// assert!(!banks.access(0, 18));  // row conflict
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankState {
    open_rows: Vec<Option<u64>>,
    hits: u64,
    misses: u64,
}

impl BankState {
    /// Creates the bank state for the configured number of banks, all
    /// initially precharged (no open row).
    pub fn new(cfg: &DramConfig) -> Self {
        BankState {
            open_rows: vec![None; cfg.total_banks() as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.open_rows.len()
    }

    /// Records an access to `row` in `bank` and returns whether it was a row
    /// hit. The bank index wraps modulo the bank count so callers can hash
    /// addresses directly.
    pub fn access(&mut self, bank: usize, row: u64) -> bool {
        let idx = bank % self.open_rows.len();
        let hit = self.open_rows[idx] == Some(row);
        self.open_rows[idx] = Some(row);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Precharges every bank (e.g. before a PuD compute burst that needs
    /// exclusive use of the compute rows).
    pub fn precharge_all(&mut self) {
        for r in &mut self.open_rows {
            *r = None;
        }
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        self.open_rows[bank % self.open_rows.len()]
    }

    /// Row-hit and row-miss counts since creation.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Row-hit rate since creation (0.0 if no accesses were recorded).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banks() -> BankState {
        BankState::new(&DramConfig::default())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut b = banks();
        assert!(!b.access(0, 1));
        assert!(b.access(0, 1));
        assert!(!b.access(0, 2));
        assert!(!b.access(1, 2));
        let (hits, misses) = b.hit_miss_counts();
        assert_eq!((hits, misses), (1, 3));
        assert!((b.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn precharge_clears_open_rows() {
        let mut b = banks();
        b.access(3, 9);
        assert_eq!(b.open_row(3), Some(9));
        b.precharge_all();
        assert_eq!(b.open_row(3), None);
        assert!(!b.access(3, 9));
    }

    #[test]
    fn bank_index_wraps() {
        let mut b = banks();
        let n = b.banks();
        b.access(n, 5); // same as bank 0
        assert_eq!(b.open_row(0), Some(5));
    }

    #[test]
    fn empty_state_has_zero_hit_rate() {
        let b = banks();
        assert_eq!(b.hit_rate(), 0.0);
    }
}
