//! # conduit-dram
//!
//! SSD-internal DRAM model with processing-using-DRAM (PuD-SSD) support for
//! the Conduit NDP framework.
//!
//! Modern SSDs ship a few gigabytes of low-power DRAM for FTL metadata and
//! page caching; PuD-SSD repurposes that DRAM as a compute substrate by
//! orchestrating ACT/PRE command sequences (Ambit/SIMDRAM-style bulk bitwise
//! operations, RowClone copies, and MIMDRAM/Proteus-style arithmetic).
//!
//! The crate provides:
//!
//! * [`DramTiming`] — un-contended latencies and energies of ordinary DRAM
//!   accesses (row activation, read/write of cached pages, bus transfers),
//! * [`PudModel`] — the compute model: how many bulk-bitwise operation
//!   primitives (bbops) each vector operation needs, and the resulting
//!   latency/energy for row-granular sub-operations spread across banks,
//! * [`BankState`] — open-row bookkeeping used by the event-driven simulator
//!   for row-hit/row-miss accounting.
//!
//! ## Example
//!
//! ```
//! use conduit_dram::PudModel;
//! use conduit_types::{DramConfig, OpType};
//!
//! let pud = PudModel::new(&DramConfig::default());
//! let and = pud.op_cost(OpType::And, 32, 4096, 8)?;
//! let mul = pud.op_cost(OpType::Mul, 32, 4096, 8)?;
//! assert!(mul.latency > and.latency * 10);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod bank;
mod pud;
mod timing;

pub use bank::BankState;
pub use pud::{PudCost, PudModel};
pub use timing::DramTiming;
