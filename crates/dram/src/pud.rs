//! Processing-using-DRAM (PuD-SSD) compute model.
//!
//! Follows the SIMDRAM/MIMDRAM/Proteus lineage the paper builds on: data is
//! laid out so that one *sub-operation* processes a full DRAM row per bank
//! (2048 32-bit elements for the 8 KiB rows of Table 2), and every vector
//! operation is decomposed into a sequence of **bulk-bitwise operation
//! primitives (bbops)** — activate-activate-precharge command triplets whose
//! latency and energy come from Table 2 (49 ns, 0.864 nJ).
//!
//! Bitwise operations need a handful of bbops; bit-serial arithmetic needs
//! a number of bbops proportional to the element width (addition) or to a
//! multiple of it (multiplication), which is what makes multiplication
//! comparatively expensive in DRAM and shifts the offloader's choices for
//! multiply-heavy phases (§6.5 of the paper).

use conduit_types::{ConduitError, DramConfig, Duration, Energy, OpType, Resource, Result};

/// The latency and energy of one PuD-SSD vector operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PudCost {
    /// End-to-end service latency (excluding queueing and operand staging).
    pub latency: Duration,
    /// Total energy across all row-granular sub-operations.
    pub energy: Energy,
    /// Number of row-granular sub-operations the vector was split into.
    pub sub_ops: u32,
    /// Number of bbop primitives per sub-operation.
    pub bbops_per_sub_op: u64,
}

/// Processing-using-DRAM cost model.
///
/// # Examples
///
/// ```
/// use conduit_dram::PudModel;
/// use conduit_types::{DramConfig, OpType};
///
/// let pud = PudModel::new(&DramConfig::default());
/// // A full-width vector is split into 2048-element sub-operations.
/// let cost = pud.op_cost(OpType::Add, 32, 4096, 8)?;
/// assert_eq!(cost.sub_ops, 2);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PudModel {
    cfg: DramConfig,
}

impl PudModel {
    /// Builds a PuD model from the DRAM configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        PudModel { cfg: cfg.clone() }
    }

    /// Whether the DRAM substrate can execute `op` at all.
    pub fn supports(&self, op: OpType) -> bool {
        Resource::PudSsd.supports(op)
    }

    /// Number of elements one sub-operation (one row per bank) processes.
    pub fn elems_per_sub_op(&self, elem_bits: u32) -> u32 {
        self.cfg.elems_per_row(elem_bits)
    }

    /// Number of row-granular sub-operations a vector of `lanes` lanes needs.
    pub fn sub_ops(&self, elem_bits: u32, lanes: u32) -> u32 {
        lanes.div_ceil(self.elems_per_sub_op(elem_bits)).max(1)
    }

    /// Number of bbop primitives needed for one sub-operation of `op` on
    /// `elem_bits`-wide elements.
    pub fn bbop_count(&self, op: OpType, elem_bits: u32) -> u64 {
        let n = elem_bits as u64;
        match op {
            // Majority-based AND/OR: copy operands into compute rows + one
            // triple-row activation.
            OpType::And | OpType::Or => 3,
            OpType::Nand | OpType::Nor => 4,
            OpType::Not => 2,
            OpType::Xor => 6,
            // In-DRAM shifts via the inter-mat interconnect.
            OpType::Shl | OpType::Shr => 4,
            // RowClone copy of the rows that make up the sub-operation.
            OpType::Copy => 2,
            // Bit-serial arithmetic: ~3 bbops per bit for the optimized
            // (Proteus-style) MAJ-based adder chain.
            OpType::Add => 3 * n,
            OpType::Sub => 3 * n + 2,
            // Comparison = subtraction + sign extraction.
            OpType::CmpEq | OpType::CmpLt | OpType::CmpGt => 3 * n + 4,
            OpType::Min | OpType::Max => 4 * n + 4,
            // Proteus-style multiplication with dynamic bit-precision:
            // ~3 bbops per partial-product bit over n*n/8 partial products.
            OpType::Mul => 3 * n * n / 8,
            // Unsupported operations never reach here (op_cost rejects them),
            // but return a defensive upper bound.
            _ => 16 * n,
        }
    }

    /// Latency and energy of one PuD vector operation, given `banks_free`
    /// banks available to run sub-operations concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnsupportedOperation`] if `op` is outside the
    /// PuD operation set.
    pub fn op_cost(
        &self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        banks_free: u32,
    ) -> Result<PudCost> {
        if !self.supports(op) {
            return Err(ConduitError::UnsupportedOperation {
                op,
                resource: Resource::PudSsd,
            });
        }
        let sub_ops = self.sub_ops(elem_bits, lanes);
        let bbops = self.bbop_count(op, elem_bits);
        let banks = banks_free.clamp(1, self.cfg.compute_units());
        // Sub-operations run concurrently across banks; if there are more
        // sub-operations than free banks they serialize in waves.
        let waves = sub_ops.div_ceil(banks) as u64;
        let latency = self.cfg.t_bbop * (bbops * waves);
        let energy = self.cfg.e_bbop * (bbops * sub_ops as u64);
        Ok(PudCost {
            latency,
            energy,
            sub_ops,
            bbops_per_sub_op: bbops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PudModel {
        PudModel::new(&DramConfig::default())
    }

    #[test]
    fn unsupported_ops_are_rejected() {
        let m = model();
        for op in [
            OpType::Div,
            OpType::Select,
            OpType::ReduceAdd,
            OpType::Scalar,
        ] {
            let err = m.op_cost(op, 32, 4096, 8).unwrap_err();
            assert!(matches!(err, ConduitError::UnsupportedOperation { .. }));
        }
    }

    #[test]
    fn full_vector_splits_into_two_sub_ops() {
        let m = model();
        assert_eq!(m.elems_per_sub_op(32), 2048);
        assert_eq!(m.sub_ops(32, 4096), 2);
        assert_eq!(m.sub_ops(32, 2048), 1);
        assert_eq!(m.sub_ops(8, 4096), 1);
    }

    #[test]
    fn bitwise_is_cheap_arithmetic_scales_with_width() {
        let m = model();
        assert!(m.bbop_count(OpType::And, 32) <= 4);
        assert_eq!(m.bbop_count(OpType::Add, 32), 96);
        assert_eq!(m.bbop_count(OpType::Add, 8), 24);
        assert!(m.bbop_count(OpType::Mul, 32) >= m.bbop_count(OpType::Add, 32) * 4);
    }

    #[test]
    fn latency_ordering_matches_op_complexity() {
        let m = model();
        let and = m.op_cost(OpType::And, 32, 4096, 8).unwrap();
        let add = m.op_cost(OpType::Add, 32, 4096, 8).unwrap();
        let mul = m.op_cost(OpType::Mul, 32, 4096, 8).unwrap();
        assert!(and.latency < add.latency);
        assert!(add.latency < mul.latency);
        // AND on a full vector takes well under a microsecond.
        assert!(and.latency < Duration::from_us(1.0));
    }

    #[test]
    fn bank_parallelism_hides_sub_ops() {
        let m = model();
        let parallel = m.op_cost(OpType::Add, 32, 4096, 8).unwrap();
        let serial = m.op_cost(OpType::Add, 32, 4096, 1).unwrap();
        assert_eq!(serial.latency, parallel.latency * 2);
        // Energy is identical: the same work is done either way.
        assert_eq!(serial.energy, parallel.energy);
    }

    #[test]
    fn energy_scales_with_sub_ops() {
        let m = model();
        let half = m.op_cost(OpType::Add, 32, 2048, 8).unwrap();
        let full = m.op_cost(OpType::Add, 32, 4096, 8).unwrap();
        assert!((full.energy.as_nj() - 2.0 * half.energy.as_nj()).abs() < 1e-9);
    }

    #[test]
    fn cost_matches_table2_bbop_numbers() {
        let m = model();
        let and = m.op_cost(OpType::And, 32, 2048, 8).unwrap();
        // 3 bbops at 49 ns / 0.864 nJ each.
        assert_eq!(and.latency, Duration::from_ns(147.0));
        assert!((and.energy.as_nj() - 2.592).abs() < 1e-9);
    }
}
