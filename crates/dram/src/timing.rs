//! Un-contended DRAM access timing and energy.

use conduit_types::{DramConfig, Duration, Energy};

/// Latency/energy model for ordinary (non-compute) accesses to the SSD's
/// internal DRAM: activating rows, streaming cached pages over the internal
/// bus, and RowClone-style in-DRAM copies.
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    cfg: DramConfig,
}

impl DramTiming {
    /// Builds a timing model from the DRAM configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        DramTiming { cfg: cfg.clone() }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Row activation latency (ACT → data available in the row buffer).
    pub fn row_activate(&self) -> Duration {
        self.cfg.t_rcd
    }

    /// Full row cycle (ACT + restore + PRE), the spacing between operations
    /// on different rows of the same bank.
    pub fn row_cycle(&self) -> Duration {
        self.cfg.t_ras + self.cfg.t_rp
    }

    /// Latency of reading `bytes` that currently sit in DRAM and shipping
    /// them over the internal DRAM bus (row activation + CAS + transfer).
    /// `row_hit` skips the activation when the row is already open.
    pub fn read(&self, bytes: u64, row_hit: bool) -> Duration {
        let act = if row_hit {
            Duration::ZERO
        } else {
            self.cfg.t_rcd + self.cfg.t_rp
        };
        act + self.cfg.t_cl + self.bus_transfer(bytes)
    }

    /// Latency of writing `bytes` into DRAM over the internal bus.
    pub fn write(&self, bytes: u64, row_hit: bool) -> Duration {
        // Writes hide CAS behind the transfer; the precharge/activate cost is
        // the same as for reads.
        self.read(bytes, row_hit)
    }

    /// Pure bus-transfer time for `bytes`.
    pub fn bus_transfer(&self, bytes: u64) -> Duration {
        Duration::for_transfer(bytes, self.cfg.bus_bytes_per_sec)
    }

    /// Latency of a RowClone copy of `bytes` (performed row-by-row entirely
    /// inside the DRAM array, two back-to-back activations per row).
    pub fn rowclone_copy(&self, bytes: u64) -> Duration {
        let rows = bytes.div_ceil(self.cfg.row_bytes);
        (self.cfg.t_ras * 2 + self.cfg.t_rp) * rows
    }

    /// Energy of moving `bytes` over the DRAM bus (including the row
    /// activations needed to stream them).
    pub fn transfer_energy(&self, bytes: u64) -> Energy {
        let rows = bytes.div_ceil(self.cfg.row_bytes);
        self.cfg.e_act_pre * rows + self.cfg.e_bus_per_byte * bytes
    }

    /// Energy of a RowClone copy of `bytes`.
    pub fn rowclone_energy(&self, bytes: u64) -> Energy {
        let rows = bytes.div_ceil(self.cfg.row_bytes);
        self.cfg.e_act_pre * (rows * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::new(&DramConfig::default())
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let t = timing();
        assert!(t.read(4096, true) < t.read(4096, false));
        assert!(t.write(4096, true) < t.write(4096, false));
    }

    #[test]
    fn rowclone_is_faster_than_bus_copy_for_big_buffers() {
        let t = timing();
        let bytes = 64 * 1024;
        // Copying over the bus requires a read and a write.
        let bus_copy = t.read(bytes, false) + t.write(bytes, false);
        assert!(t.rowclone_copy(bytes) < bus_copy);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let t = timing();
        let small = t.bus_transfer(4 * 1024);
        let large = t.bus_transfer(16 * 1024);
        assert!(large > small * 3 && large < small * 5);
    }

    #[test]
    fn energies_are_positive_and_scale() {
        let t = timing();
        assert!(t.transfer_energy(16 * 1024) > t.transfer_energy(4 * 1024));
        assert!(t.rowclone_energy(16 * 1024) > Energy::ZERO);
    }

    #[test]
    fn row_cycle_exceeds_activation() {
        let t = timing();
        assert!(t.row_cycle() > t.row_activate());
    }
}
