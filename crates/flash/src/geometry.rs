//! Flash geometry and physical address arithmetic.

use conduit_types::{FlashConfig, PhysicalPageAddr};

/// Describes the structural hierarchy of the flash subsystem and converts
/// between flat page indices and structured [`PhysicalPageAddr`]s.
///
/// The flat index orders pages page-major within a block, block-major within
/// a plane, and so on up the hierarchy, which makes striding across channels
/// and dies (for parallel allocation) a simple modular computation.
///
/// # Examples
///
/// ```
/// use conduit_flash::FlashGeometry;
/// use conduit_types::FlashConfig;
///
/// let geo = FlashGeometry::new(&FlashConfig::default());
/// let addr = geo.addr_of(12345);
/// assert_eq!(geo.index_of(addr), 12345);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashGeometry {
    channels: u32,
    dies_per_channel: u32,
    planes_per_die: u32,
    blocks_per_plane: u32,
    pages_per_block: u32,
    page_bytes: u64,
}

impl FlashGeometry {
    /// Builds the geometry from a flash configuration.
    pub fn new(cfg: &FlashConfig) -> Self {
        FlashGeometry {
            channels: cfg.channels,
            dies_per_channel: cfg.dies_per_channel,
            planes_per_die: cfg.planes_per_die,
            blocks_per_plane: cfg.blocks_per_plane,
            pages_per_block: cfg.pages_per_block,
            page_bytes: cfg.page_bytes,
        }
    }

    /// Number of flash channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Number of dies per channel.
    pub fn dies_per_channel(&self) -> u32 {
        self.dies_per_channel
    }

    /// Number of planes per die.
    pub fn planes_per_die(&self) -> u32 {
        self.planes_per_die
    }

    /// Number of blocks per plane.
    pub fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }

    /// Number of pages per block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total number of dies.
    pub fn total_dies(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64
    }

    /// Total number of planes.
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * self.planes_per_die as u64
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() * self.blocks_per_plane as u64
    }

    /// Total number of physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> u64 {
        self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> u64 {
        self.pages_per_plane() * self.planes_per_die as u64
    }

    /// Pages per channel.
    pub fn pages_per_channel(&self) -> u64 {
        self.pages_per_die() * self.dies_per_channel as u64
    }

    /// Converts a flat physical page index into a structured address.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn addr_of(&self, index: u64) -> PhysicalPageAddr {
        assert!(
            index < self.total_pages(),
            "physical page index out of range"
        );
        let channel = index / self.pages_per_channel();
        let rem = index % self.pages_per_channel();
        let die = rem / self.pages_per_die();
        let rem = rem % self.pages_per_die();
        let plane = rem / self.pages_per_plane();
        let rem = rem % self.pages_per_plane();
        let block = rem / self.pages_per_block as u64;
        let page = rem % self.pages_per_block as u64;
        PhysicalPageAddr::new(
            channel as u8,
            0,
            die as u8,
            plane as u8,
            block as u32,
            page as u16,
        )
    }

    /// Converts a structured address back into a flat physical page index.
    pub fn index_of(&self, addr: PhysicalPageAddr) -> u64 {
        let die = addr.die as u64;
        addr.channel as u64 * self.pages_per_channel()
            + die * self.pages_per_die()
            + addr.plane as u64 * self.pages_per_plane()
            + addr.block as u64 * self.pages_per_block as u64
            + addr.page as u64
    }

    /// Flat index of a block (ignoring the page coordinate), useful for
    /// per-block bookkeeping.
    pub fn block_index_of(&self, addr: PhysicalPageAddr) -> u64 {
        self.index_of(PhysicalPageAddr { page: 0, ..addr }) / self.pages_per_block as u64
    }

    /// The global plane index (0 .. [`FlashGeometry::total_planes`]) of an
    /// address, used to reason about multi-plane parallelism.
    pub fn plane_index_of(&self, addr: PhysicalPageAddr) -> u64 {
        (addr.channel as u64 * self.dies_per_channel as u64 + addr.die as u64)
            * self.planes_per_die as u64
            + addr.plane as u64
    }

    /// The global die index (0 .. [`FlashGeometry::total_dies`]) of an
    /// address.
    pub fn die_index_of(&self, addr: PhysicalPageAddr) -> u64 {
        addr.channel as u64 * self.dies_per_channel as u64 + addr.die as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn geo() -> FlashGeometry {
        FlashGeometry::new(&SsdConfig::small_for_tests().flash)
    }

    #[test]
    fn counts_are_consistent() {
        let g = geo();
        assert_eq!(
            g.total_pages(),
            g.channels() as u64
                * g.dies_per_channel() as u64
                * g.planes_per_die() as u64
                * g.blocks_per_plane() as u64
                * g.pages_per_block() as u64
        );
        assert_eq!(g.pages_per_channel() * g.channels() as u64, g.total_pages());
    }

    #[test]
    fn addr_index_roundtrip() {
        let g = geo();
        for index in [0, 1, 63, 64, 1000, g.total_pages() - 1] {
            let addr = g.addr_of(index);
            assert_eq!(g.index_of(addr), index, "roundtrip failed for {index}");
        }
    }

    #[test]
    fn roundtrip_full_default_geometry_sampled() {
        let g = FlashGeometry::new(&FlashConfig::default());
        let step = g.total_pages() / 997;
        let mut index = 0;
        while index < g.total_pages() {
            assert_eq!(g.index_of(g.addr_of(index)), index);
            index += step.max(1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_of_out_of_range_panics() {
        let g = geo();
        let _ = g.addr_of(g.total_pages());
    }

    #[test]
    fn plane_and_die_indices_cover_all_units() {
        let g = geo();
        let last = g.addr_of(g.total_pages() - 1);
        assert_eq!(g.die_index_of(last), g.total_dies() - 1);
        assert_eq!(g.plane_index_of(last), g.total_planes() - 1);
        let first = g.addr_of(0);
        assert_eq!(g.die_index_of(first), 0);
        assert_eq!(g.plane_index_of(first), 0);
    }

    #[test]
    fn block_index_ignores_page() {
        let g = geo();
        let a = g.addr_of(5);
        let b = PhysicalPageAddr { page: 0, ..a };
        assert_eq!(g.block_index_of(a), g.block_index_of(b));
    }
}
