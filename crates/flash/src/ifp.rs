//! In-flash processing (IFP) compute model.
//!
//! Combines the two IFP substrates the paper builds on:
//!
//! * **Flash-Cosmos** multi-wordline sensing (MWS): bitwise AND across up to
//!   48 operand pages located in the *same block*, bitwise OR across up to 4
//!   operand pages located in *different blocks of the same plane*, with NOT
//!   and the remaining bitwise ops derived via the page-buffer latches.
//! * **Ares-Flash** latch-based arithmetic: bit-serial addition and
//!   shift-and-add multiplication using the sensing (S) and data (D) latches
//!   in the die's peripheral circuitry, with periodic operand transfers
//!   through the flash controller for multiplication.
//!
//! A full-width vector (16 KiB) spans several 4 KiB page *slices*; the FTL's
//! NDP-aware allocation stripes the slices of one vector across planes, so
//! slices execute concurrently (multi-plane operation) and the latency of a
//! vector op equals the latency of one slice while the energy scales with the
//! number of slices.

use conduit_types::{ConduitError, Duration, Energy, FlashConfig, OpType, Resource, Result};

/// How the operands of an in-flash operation are physically placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IfpPlacement {
    /// All operand slices live in pages of the same block (required for
    /// multi-wordline AND; also the best case for arithmetic).
    SameBlock {
        /// Number of source operands.
        operands: u32,
    },
    /// Operand slices live in different blocks of the same plane (the
    /// inter-block OR case).
    SamePlane {
        /// Number of source operands.
        operands: u32,
    },
    /// Operand slices are scattered across planes or dies; they must first
    /// be relocated (read + program) into a common block before the in-flash
    /// operation can run.
    Scattered {
        /// Number of source operands.
        operands: u32,
    },
}

impl IfpPlacement {
    /// Number of source operands described by this placement.
    pub fn operands(self) -> u32 {
        match self {
            IfpPlacement::SameBlock { operands }
            | IfpPlacement::SamePlane { operands }
            | IfpPlacement::Scattered { operands } => operands,
        }
    }

    /// Number of operand slices that must be relocated before computing.
    fn relocations(self) -> u32 {
        match self {
            IfpPlacement::SameBlock { .. } => 0,
            // OR tolerates same-plane placement; everything else needs one
            // operand moved next to the other.
            IfpPlacement::SamePlane { .. } => 0,
            IfpPlacement::Scattered { operands } => operands.saturating_sub(1),
        }
    }
}

/// The latency and energy of one in-flash vector operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IfpCost {
    /// End-to-end service latency (excluding queueing).
    pub latency: Duration,
    /// Total energy across all page slices.
    pub energy: Energy,
    /// Number of 4 KiB page slices processed in parallel.
    pub parallel_slices: u32,
}

/// In-flash processing cost model.
///
/// # Examples
///
/// ```
/// use conduit_flash::{IfpModel, IfpPlacement};
/// use conduit_types::{FlashConfig, OpType};
///
/// let ifp = IfpModel::new(&FlashConfig::default());
/// let and = ifp.op_cost(OpType::And, 32, 4096, IfpPlacement::SameBlock { operands: 2 })?;
/// let mul = ifp.op_cost(OpType::Mul, 32, 4096, IfpPlacement::SameBlock { operands: 2 })?;
/// assert!(mul.latency > and.latency * 4);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IfpModel {
    cfg: FlashConfig,
}

impl IfpModel {
    /// Builds an IFP model from the flash configuration.
    pub fn new(cfg: &FlashConfig) -> Self {
        IfpModel { cfg: cfg.clone() }
    }

    /// Whether the flash substrate can execute `op` at all.
    pub fn supports(&self, op: OpType) -> bool {
        Resource::Ifp.supports(op)
    }

    /// Maximum number of operands a single in-flash `op` can combine given
    /// its placement requirements (Flash-Cosmos limits).
    pub fn max_operands(&self, op: OpType) -> u32 {
        match op {
            OpType::And | OpType::Nand => self.cfg.max_and_operands,
            OpType::Or | OpType::Nor => self.cfg.max_or_operands,
            _ => 2,
        }
    }

    /// Number of 4 KiB page slices one operand of the given shape occupies.
    pub fn slices(&self, elem_bits: u32, lanes: u32) -> u32 {
        let bytes = (lanes as u64) * (elem_bits as u64) / 8;
        bytes.div_ceil(self.cfg.page_bytes).max(1) as u32
    }

    /// Latency and energy of one in-flash vector operation.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnsupportedOperation`] if `op` is not in the
    /// IFP operation set (six bitwise ops, add/sub/mul, copy).
    pub fn op_cost(
        &self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        placement: IfpPlacement,
    ) -> Result<IfpCost> {
        if !self.supports(op) {
            return Err(ConduitError::UnsupportedOperation {
                op,
                resource: Resource::Ifp,
            });
        }
        let slices = self.slices(elem_bits, lanes);
        let kib_per_slice = self.cfg.page_bytes as f64 / 1024.0;

        // Relocation of scattered operands: read + DMA out + DMA in + program
        // per relocated slice, serialized on the channel.
        let relocations = placement.relocations() as u64 * slices as u64;
        let reloc_latency =
            (self.cfg.t_read + self.cfg.t_dma * 2 + self.cfg.t_program) * relocations;
        let reloc_energy =
            (self.cfg.e_read + self.cfg.e_dma * 2.0 + self.cfg.e_program) * relocations;

        let (slice_latency, slice_energy) = self.slice_cost(op, elem_bits, kib_per_slice);

        Ok(IfpCost {
            latency: reloc_latency + slice_latency,
            energy: reloc_energy + slice_energy * (slices as f64),
            parallel_slices: slices,
        })
    }

    /// Cost of processing a single 4 KiB page slice.
    fn slice_cost(&self, op: OpType, elem_bits: u32, kib: f64) -> (Duration, Energy) {
        let c = &self.cfg;
        let sense = c.t_read;
        let e_sense = c.e_read;
        match op {
            // Multi-wordline sensing computes AND/OR during a single sensing
            // operation; NAND/NOR add one latch inversion.
            OpType::And | OpType::Or => (sense + c.t_and_or, e_sense + c.e_and_or_per_kib * kib),
            OpType::Nand | OpType::Nor => (
                sense + c.t_and_or + c.t_latch_transfer,
                e_sense + (c.e_and_or_per_kib + c.e_latch_per_kib) * kib,
            ),
            OpType::Not => (
                sense + c.t_latch_transfer,
                e_sense + c.e_latch_per_kib * kib,
            ),
            // XOR needs both operands sensed into separate latches.
            OpType::Xor => (sense * 2 + c.t_xor, e_sense * 2.0 + c.e_xor_per_kib * kib),
            // Copy = read into the page buffer + program at the destination.
            OpType::Copy => (sense + c.t_program, e_sense + c.e_program),
            // Ares-Flash bit-serial addition: sense both operands, then one
            // carry-propagate step per bit (three latch transfers + one
            // AND/OR-equivalent sensing of the latches).
            OpType::Add | OpType::Sub => {
                let per_bit = c.t_latch_transfer * 3 + c.t_and_or;
                let lat = sense * 2 + per_bit * elem_bits as u64;
                let e = e_sense * 2.0
                    + (c.e_latch_per_kib * 3.0 + c.e_and_or_per_kib) * kib * elem_bits as f64;
                (lat, e)
            }
            // Shift-and-add multiplication: `elem_bits` partial-product
            // add/shift rounds, with an operand round-trip through the flash
            // controller every few rounds (the behaviour that makes IFP
            // unattractive for multiply-heavy phases, §6.4).
            OpType::Mul => {
                let per_bit = c.t_latch_transfer * 4 + c.t_and_or;
                let rounds = elem_bits as u64;
                let dma_roundtrips = (rounds / 4).max(1);
                let lat = sense * 2 + per_bit * rounds * rounds / 4 + c.t_dma * dma_roundtrips * 2;
                let e = e_sense * 2.0
                    + (c.e_latch_per_kib * 4.0 + c.e_and_or_per_kib)
                        * kib
                        * (rounds * rounds / 4) as f64
                    + c.e_dma * (dma_roundtrips * 2) as f64;
                (lat, e)
            }
            _ => unreachable!("unsupported ops are rejected before slice_cost"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> IfpModel {
        IfpModel::new(&FlashConfig::default())
    }

    #[test]
    fn unsupported_ops_are_rejected() {
        let m = model();
        for op in [OpType::Div, OpType::CmpEq, OpType::Shuffle, OpType::Scalar] {
            let err = m
                .op_cost(op, 32, 4096, IfpPlacement::SameBlock { operands: 2 })
                .unwrap_err();
            assert!(matches!(err, ConduitError::UnsupportedOperation { .. }));
        }
    }

    #[test]
    fn bitwise_and_costs_roughly_one_sensing() {
        let m = model();
        let cost = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 8 },
            )
            .unwrap();
        // One sensing (22.5 us) + 20 ns compute.
        assert!((cost.latency.as_us() - 22.52).abs() < 0.05);
        assert_eq!(cost.parallel_slices, 4);
    }

    #[test]
    fn xor_needs_two_sensings() {
        let m = model();
        let and = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let xor = m
            .op_cost(
                OpType::Xor,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        assert!(xor.latency > and.latency * 1.8);
        assert!(xor.latency < and.latency * 2.3);
    }

    #[test]
    fn arithmetic_ordering_add_lt_mul() {
        let m = model();
        let add = m
            .op_cost(
                OpType::Add,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let mul = m
            .op_cost(
                OpType::Mul,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let and = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        assert!(add.latency > and.latency);
        assert!(mul.latency > add.latency * 2);
    }

    #[test]
    fn narrower_elements_speed_up_arithmetic() {
        let m = model();
        let add32 = m
            .op_cost(
                OpType::Add,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let add8 = m
            .op_cost(
                OpType::Add,
                8,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        assert!(add8.latency < add32.latency);
    }

    #[test]
    fn scattered_placement_adds_relocation_cost() {
        let m = model();
        let local = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let scattered = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::Scattered { operands: 2 },
            )
            .unwrap();
        assert!(scattered.latency > local.latency + Duration::from_us(400.0));
        assert!(scattered.energy > local.energy);
    }

    #[test]
    fn energy_scales_with_slices_latency_does_not() {
        let m = model();
        let one_page = m
            .op_cost(
                OpType::And,
                32,
                1024,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        let four_pages = m
            .op_cost(
                OpType::And,
                32,
                4096,
                IfpPlacement::SameBlock { operands: 2 },
            )
            .unwrap();
        assert_eq!(one_page.latency, four_pages.latency);
        assert!(four_pages.energy > one_page.energy * 3.5);
    }

    #[test]
    fn max_operand_limits_follow_flash_cosmos() {
        let m = model();
        assert_eq!(m.max_operands(OpType::And), 48);
        assert_eq!(m.max_operands(OpType::Or), 4);
        assert_eq!(m.max_operands(OpType::Add), 2);
    }

    #[test]
    fn placement_accessors() {
        assert_eq!(IfpPlacement::SameBlock { operands: 3 }.operands(), 3);
        assert_eq!(IfpPlacement::Scattered { operands: 3 }.relocations(), 2);
        assert_eq!(IfpPlacement::SamePlane { operands: 4 }.relocations(), 0);
    }
}
