//! # conduit-flash
//!
//! NAND flash substrate model for the Conduit NDP-SSD framework.
//!
//! This crate models the parts of a modern 3D NAND flash subsystem that
//! matter for near-data processing studies:
//!
//! * the **geometry** (channel → die → plane → block → page) and address
//!   arithmetic ([`FlashGeometry`]),
//! * the **timing and energy** of basic flash operations — page read
//!   (sensing), program, erase, and channel DMA ([`FlashTiming`]),
//! * the **in-flash processing (IFP)** compute model: Flash-Cosmos style
//!   multi-wordline-sensing bulk bitwise operations and Ares-Flash style
//!   latch-based shift-and-add arithmetic ([`IfpModel`], [`IfpPlacement`]),
//! * the **physical page state** needed by the flash translation layer:
//!   free/valid/invalid pages, per-block erase counts, bad blocks
//!   ([`FlashState`]).
//!
//! Contention (channel and die busy times, queueing) is modelled by the
//! event-driven simulator in `conduit-sim`; this crate provides the
//! un-contended service times and the structural constraints.
//!
//! ## Example
//!
//! ```
//! use conduit_flash::{FlashTiming, IfpModel, IfpPlacement};
//! use conduit_types::{FlashConfig, OpType};
//!
//! let cfg = FlashConfig::default();
//! let timing = FlashTiming::new(&cfg);
//! let ifp = IfpModel::new(&cfg);
//!
//! // A bulk bitwise AND over one 16 KiB vector placed in a single block:
//! let cost = ifp.op_cost(OpType::And, 32, 4096, IfpPlacement::SameBlock { operands: 2 })?;
//! assert!(cost.latency < timing.read_page() * 2);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod geometry;
mod ifp;
mod state;
mod timing;

pub use geometry::FlashGeometry;
pub use ifp::{IfpCost, IfpModel, IfpPlacement};
pub use state::{BlockInfo, FlashState, PageState};
pub use timing::FlashTiming;
