//! Physical page state tracking.
//!
//! The flash translation layer needs to know, for every physical page,
//! whether it is free (erased), holds valid data, or holds stale (invalid)
//! data awaiting garbage collection; and, for every block, how many times it
//! has been erased (for wear-leveling) and whether it has been retired as a
//! bad block.

use crate::geometry::FlashGeometry;
use conduit_types::bytes::{put_u32, put_u64, Reader};
use conduit_types::{ConduitError, FlashConfig, PhysicalPageAddr, Result};

/// The lifecycle state of one physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Erased and available for programming.
    #[default]
    Free,
    /// Programmed and mapped by the FTL.
    Valid,
    /// Programmed but superseded; reclaimable by garbage collection.
    Invalid,
}

/// Per-block bookkeeping: page states, erase count, and bad-block flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pages: Vec<PageState>,
    erase_count: u64,
    bad: bool,
    /// Index of the next page that has never been written since the last
    /// erase (flash blocks must be programmed sequentially).
    write_pointer: u32,
}

impl BlockInfo {
    fn new(pages_per_block: u32) -> Self {
        BlockInfo {
            pages: vec![PageState::Free; pages_per_block as usize],
            erase_count: 0,
            bad: false,
            write_pointer: 0,
        }
    }

    /// Number of times this block has been erased.
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Whether the block has been retired.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Number of pages in each state: `(free, valid, invalid)`.
    pub fn page_counts(&self) -> (u32, u32, u32) {
        let mut free = 0;
        let mut valid = 0;
        let mut invalid = 0;
        for p in &self.pages {
            match p {
                PageState::Free => free += 1,
                PageState::Valid => valid += 1,
                PageState::Invalid => invalid += 1,
            }
        }
        (free, valid, invalid)
    }

    /// The next programmable page index, if the block is not full.
    pub fn next_free_page(&self) -> Option<u32> {
        if self.bad || self.write_pointer as usize >= self.pages.len() {
            None
        } else {
            Some(self.write_pointer)
        }
    }
}

/// State of every physical page and block in the flash array.
///
/// # Examples
///
/// ```
/// use conduit_flash::{FlashState, PageState};
/// use conduit_types::SsdConfig;
///
/// let cfg = SsdConfig::small_for_tests();
/// let mut state = FlashState::new(&cfg.flash);
/// let addr = state.geometry().addr_of(0);
/// state.program(addr)?;
/// assert_eq!(state.page_state(addr), PageState::Valid);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashState {
    geometry: FlashGeometry,
    blocks: Vec<BlockInfo>,
}

impl FlashState {
    /// Creates a fully-erased flash array.
    pub fn new(cfg: &FlashConfig) -> Self {
        let geometry = FlashGeometry::new(cfg);
        let blocks = (0..geometry.total_blocks())
            .map(|_| BlockInfo::new(cfg.pages_per_block))
            .collect();
        FlashState { geometry, blocks }
    }

    /// The flash geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Block bookkeeping for the block containing `addr`.
    pub fn block(&self, addr: PhysicalPageAddr) -> &BlockInfo {
        &self.blocks[self.geometry.block_index_of(addr) as usize]
    }

    /// Block bookkeeping by flat block index.
    pub fn block_by_index(&self, block_index: u64) -> &BlockInfo {
        &self.blocks[block_index as usize]
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The state of a single physical page.
    pub fn page_state(&self, addr: PhysicalPageAddr) -> PageState {
        let block = self.block(addr);
        block.pages[addr.page as usize]
    }

    /// Marks a page as programmed with valid data.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the page is not free, is not
    /// the block's next sequential page, or the block is bad — all of which
    /// indicate an FTL bug.
    pub fn program(&mut self, addr: PhysicalPageAddr) -> Result<()> {
        let idx = self.geometry.block_index_of(addr) as usize;
        let block = &mut self.blocks[idx];
        if block.bad {
            return Err(ConduitError::simulation(format!(
                "program to bad block at {addr}"
            )));
        }
        if block.pages[addr.page as usize] != PageState::Free {
            return Err(ConduitError::simulation(format!(
                "program to non-free page at {addr}"
            )));
        }
        if block.write_pointer != addr.page as u32 {
            return Err(ConduitError::simulation(format!(
                "out-of-order program at {addr} (write pointer {})",
                block.write_pointer
            )));
        }
        block.pages[addr.page as usize] = PageState::Valid;
        block.write_pointer += 1;
        Ok(())
    }

    /// Marks a valid page as invalid (its logical page was remapped).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the page is not valid.
    pub fn invalidate(&mut self, addr: PhysicalPageAddr) -> Result<()> {
        let idx = self.geometry.block_index_of(addr) as usize;
        let block = &mut self.blocks[idx];
        if block.pages[addr.page as usize] != PageState::Valid {
            return Err(ConduitError::simulation(format!(
                "invalidate of non-valid page at {addr}"
            )));
        }
        block.pages[addr.page as usize] = PageState::Invalid;
        Ok(())
    }

    /// Erases a block, freeing all its pages and bumping its erase count.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the block still contains
    /// valid pages (the FTL must relocate them first) or is bad.
    pub fn erase_block(&mut self, block_index: u64) -> Result<()> {
        let block = &mut self.blocks[block_index as usize];
        if block.bad {
            return Err(ConduitError::simulation("erase of bad block"));
        }
        if block.pages.contains(&PageState::Valid) {
            return Err(ConduitError::simulation(
                "erase of block that still holds valid pages",
            ));
        }
        for p in &mut block.pages {
            *p = PageState::Free;
        }
        block.erase_count += 1;
        block.write_pointer = 0;
        Ok(())
    }

    /// Retires a block as bad. Its pages become unusable.
    pub fn mark_bad(&mut self, block_index: u64) {
        self.blocks[block_index as usize].bad = true;
    }

    /// Totals across the whole array: `(free, valid, invalid)` pages.
    pub fn page_totals(&self) -> (u64, u64, u64) {
        let mut totals = (0u64, 0u64, 0u64);
        for b in &self.blocks {
            let (f, v, i) = b.page_counts();
            totals.0 += f as u64;
            totals.1 += v as u64;
            totals.2 += i as u64;
        }
        totals
    }

    /// Appends this array's mutable state (per-block erase counts, bad
    /// flags, write pointers and 2-bit page states) to `out` in the compact
    /// little-endian checkpoint layout. The geometry is *not* stored — it is
    /// a pure function of the [`FlashConfig`] the decoder is given.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.blocks.len() as u64);
        for block in &self.blocks {
            put_u64(out, block.erase_count);
            out.push(u8::from(block.bad));
            put_u32(out, block.write_pointer);
            // Page states packed four to a byte (Free=0, Valid=1, Invalid=2).
            let mut acc = 0u8;
            let mut filled = 0u8;
            for page in &block.pages {
                let code = match page {
                    PageState::Free => 0u8,
                    PageState::Valid => 1,
                    PageState::Invalid => 2,
                };
                acc |= code << (2 * filled);
                filled += 1;
                if filled == 4 {
                    out.push(acc);
                    acc = 0;
                    filled = 0;
                }
            }
            if filled > 0 {
                out.push(acc);
            }
        }
    }

    /// Whether a block is indistinguishable from a factory-fresh one:
    /// never programmed, never erased, not retired. Such blocks carry no
    /// information and are skipped by the sparse encoding.
    fn block_is_pristine(block: &BlockInfo) -> bool {
        block.erase_count == 0 && !block.bad && block.write_pointer == 0
    }

    /// Appends a **delta-against-pristine** image of the array: only
    /// touched blocks (programmed, erased or retired at least once) are
    /// stored, keyed by block index, and within each block only the first
    /// `write_pointer` page states are packed — pages at or beyond the
    /// write pointer are `Free` by the sequential-programming invariant. A
    /// cold device therefore encodes to a handful of bytes regardless of
    /// array size, while a fully-written device costs the same as the dense
    /// [`FlashState::encode_into`] layout plus one index per block.
    pub fn encode_sparse_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.blocks.len() as u64);
        let touched = self
            .blocks
            .iter()
            .filter(|b| !Self::block_is_pristine(b))
            .count();
        put_u64(out, touched as u64);
        for (index, block) in self.blocks.iter().enumerate() {
            if Self::block_is_pristine(block) {
                continue;
            }
            put_u64(out, index as u64);
            put_u64(out, block.erase_count);
            out.push(u8::from(block.bad));
            put_u32(out, block.write_pointer);
            let written = block.write_pointer as usize;
            debug_assert!(
                block.pages[written..].iter().all(|p| *p == PageState::Free),
                "pages beyond the write pointer must be Free"
            );
            let mut acc = 0u8;
            let mut filled = 0u8;
            for page in &block.pages[..written] {
                let code = match page {
                    PageState::Free => 0u8,
                    PageState::Valid => 1,
                    PageState::Invalid => 2,
                };
                acc |= code << (2 * filled);
                filled += 1;
                if filled == 4 {
                    out.push(acc);
                    acc = 0;
                    filled = 0;
                }
            }
            if filled > 0 {
                out.push(acc);
            }
        }
    }

    /// Decodes a state serialized by [`FlashState::encode_sparse_into`] for
    /// the given configuration. Blocks absent from the stream restore as
    /// pristine.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on truncation, an
    /// unknown page-state code, a block count that does not match the
    /// geometry, out-of-range or non-increasing block indices, or a write
    /// pointer beyond the block size.
    pub fn decode_sparse_from(cfg: &FlashConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut state = FlashState::new(cfg);
        let total = r.u64()? as usize;
        if total != state.blocks.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint has {total} blocks but the configuration describes {}",
                state.blocks.len()
            )));
        }
        let touched = r.u64()? as usize;
        if touched > total {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint stores {touched} touched blocks of only {total}"
            )));
        }
        let pages_per_block = cfg.pages_per_block as usize;
        let mut prev_index: Option<u64> = None;
        for _ in 0..touched {
            let index = r.u64()?;
            if index as usize >= total {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "touched block index {index} outside the {total}-block array"
                )));
            }
            if prev_index.is_some_and(|prev| index <= prev) {
                return Err(ConduitError::corrupt_checkpoint(
                    "touched block indices must be strictly increasing",
                ));
            }
            prev_index = Some(index);
            let block = &mut state.blocks[index as usize];
            block.erase_count = r.counter()?;
            block.bad = match r.u8()? {
                0 => false,
                1 => true,
                v => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown bad-block flag {v}"
                    )))
                }
            };
            block.write_pointer = r.u32()?;
            let written = block.write_pointer as usize;
            if written > pages_per_block {
                return Err(ConduitError::corrupt_checkpoint(
                    "write pointer beyond block size",
                ));
            }
            let packed = r.take(written.div_ceil(4))?;
            for (i, page) in block.pages[..written].iter_mut().enumerate() {
                *page = match (packed[i / 4] >> (2 * (i % 4))) & 0b11 {
                    0 => PageState::Free,
                    1 => PageState::Valid,
                    2 => PageState::Invalid,
                    code => {
                        return Err(ConduitError::corrupt_checkpoint(format!(
                            "unknown page-state code {code}"
                        )))
                    }
                };
            }
        }
        Ok(state)
    }

    /// Decodes a state serialized by [`FlashState::encode_into`] for the
    /// given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on truncation, an unknown
    /// page-state code, a block count that does not match the geometry
    /// `cfg` describes, or a non-`Free` page at or beyond a block's write
    /// pointer (flash programs sequentially, so such a state is impossible
    /// on a real device — and the sparse encoding relies on the invariant
    /// to omit those pages, so accepting it here would silently drop the
    /// page on the next re-export).
    pub fn decode_from(cfg: &FlashConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut state = FlashState::new(cfg);
        let count = r.u64()? as usize;
        if count != state.blocks.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint has {count} blocks but the configuration describes {}",
                state.blocks.len()
            )));
        }
        let pages_per_block = cfg.pages_per_block as usize;
        let packed_len = pages_per_block.div_ceil(4);
        for block in &mut state.blocks {
            block.erase_count = r.counter()?;
            block.bad = match r.u8()? {
                0 => false,
                1 => true,
                v => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown bad-block flag {v}"
                    )))
                }
            };
            block.write_pointer = r.u32()?;
            if block.write_pointer as usize > pages_per_block {
                return Err(ConduitError::corrupt_checkpoint(
                    "write pointer beyond block size",
                ));
            }
            let packed = r.take(packed_len)?;
            for (i, page) in block.pages.iter_mut().enumerate() {
                *page = match (packed[i / 4] >> (2 * (i % 4))) & 0b11 {
                    0 => PageState::Free,
                    1 => PageState::Valid,
                    2 => PageState::Invalid,
                    code => {
                        return Err(ConduitError::corrupt_checkpoint(format!(
                            "unknown page-state code {code}"
                        )))
                    }
                };
                if i >= block.write_pointer as usize && *page != PageState::Free {
                    return Err(ConduitError::corrupt_checkpoint(
                        "programmed page at or beyond the block's write pointer",
                    ));
                }
            }
        }
        Ok(state)
    }

    /// Wear statistics across blocks: `(min, max, mean)` erase counts.
    pub fn wear_stats(&self) -> (u64, u64, f64) {
        let counts: Vec<u64> = self.blocks.iter().map(|b| b.erase_count).collect();
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<u64>() as f64 / counts.len() as f64
        };
        (min, max, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn state() -> FlashState {
        FlashState::new(&SsdConfig::small_for_tests().flash)
    }

    #[test]
    fn new_array_is_fully_free() {
        let s = state();
        let (free, valid, invalid) = s.page_totals();
        assert_eq!(valid, 0);
        assert_eq!(invalid, 0);
        assert_eq!(free, s.geometry().total_pages());
    }

    #[test]
    fn program_invalidate_erase_cycle() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        assert_eq!(s.page_state(a0), PageState::Valid);

        s.invalidate(a0).unwrap();
        s.invalidate(a1).unwrap();
        assert_eq!(s.page_state(a0), PageState::Invalid);

        let block = s.geometry().block_index_of(a0);
        s.erase_block(block).unwrap();
        assert_eq!(s.page_state(a0), PageState::Free);
        assert_eq!(s.block_by_index(block).erase_count(), 1);
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut s = state();
        let a5 = PhysicalPageAddr {
            page: 5,
            ..s.geometry().addr_of(0)
        };
        assert!(s.program(a5).is_err());
    }

    #[test]
    fn double_program_is_rejected() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        assert!(s.program(a0).is_err());
    }

    #[test]
    fn erase_with_valid_pages_is_rejected() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        let block = s.geometry().block_index_of(a0);
        assert!(s.erase_block(block).is_err());
    }

    #[test]
    fn bad_blocks_are_unusable() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        let block = s.geometry().block_index_of(a0);
        s.mark_bad(block);
        assert!(s.block_by_index(block).is_bad());
        assert!(s.program(a0).is_err());
        assert!(s.erase_block(block).is_err());
        assert_eq!(s.block_by_index(block).next_free_page(), None);
    }

    #[test]
    fn wear_stats_track_erases() {
        let mut s = state();
        s.erase_block(0).unwrap();
        s.erase_block(0).unwrap();
        s.erase_block(1).unwrap();
        let (min, max, mean) = s.wear_stats();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!(mean > 0.0);
    }

    #[test]
    fn checkpoint_roundtrips_an_aged_array() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        s.invalidate(a0).unwrap();
        s.erase_block(s.geometry().total_blocks() - 1).unwrap();
        s.mark_bad(s.geometry().total_blocks() - 2);

        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = FlashState::decode_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, s);

        // A mismatched geometry is rejected rather than silently truncated.
        let mut small = cfg.clone();
        small.blocks_per_plane /= 2;
        assert!(FlashState::decode_from(&small, &mut Reader::new(&buf)).is_err());
        // Truncation is rejected.
        assert!(FlashState::decode_from(&cfg, &mut Reader::new(&buf[..buf.len() - 1])).is_err());
    }

    #[test]
    fn dense_decode_rejects_programmed_pages_beyond_the_write_pointer() {
        let cfg = SsdConfig::small_for_tests().flash;
        let s = FlashState::new(&cfg);
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        // Dense layout: u64 block count, then per block
        // [u64 erases][u8 bad][u32 write_pointer][packed pages]. Mark block
        // 0's first page Valid while its write pointer stays 0 — a state a
        // sequentially-programmed device can never reach. Accepting it
        // would silently drop the page on the next sparse re-export.
        buf[8 + 8 + 1 + 4] = 0b01;
        assert!(FlashState::decode_from(&cfg, &mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn sparse_checkpoint_roundtrips_and_skips_pristine_blocks() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        // A pristine array encodes to just the two headers.
        let mut cold = Vec::new();
        s.encode_sparse_into(&mut cold);
        assert_eq!(cold.len(), 16, "a cold array stores no blocks");
        let back = FlashState::decode_sparse_from(&cfg, &mut Reader::new(&cold)).unwrap();
        assert_eq!(back, s);

        // Touch a handful of blocks; everything round-trips and the sparse
        // image stays much smaller than the dense one.
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        s.invalidate(a0).unwrap();
        s.erase_block(s.geometry().total_blocks() - 1).unwrap();
        s.mark_bad(s.geometry().total_blocks() - 2);

        let mut sparse = Vec::new();
        s.encode_sparse_into(&mut sparse);
        let mut dense = Vec::new();
        s.encode_into(&mut dense);
        assert!(
            sparse.len() * 4 < dense.len(),
            "sparse image ({} B) should be far below dense ({} B) on a mostly-cold array",
            sparse.len(),
            dense.len()
        );
        let mut r = Reader::new(&sparse);
        let back = FlashState::decode_sparse_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, s);
        // Re-encoding the decoded state is deterministic.
        let mut again = Vec::new();
        back.encode_sparse_into(&mut again);
        assert_eq!(again, sparse);

        // Corruption is rejected: truncation, geometry mismatch, an
        // out-of-range block index, and unsorted indices.
        assert!(FlashState::decode_sparse_from(
            &cfg,
            &mut Reader::new(&sparse[..sparse.len() - 1])
        )
        .is_err());
        let mut small = cfg.clone();
        small.blocks_per_plane /= 2;
        assert!(FlashState::decode_sparse_from(&small, &mut Reader::new(&sparse)).is_err());
        let mut bad_index = sparse.clone();
        // First touched-block index sits right after the two u64 headers.
        bad_index[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(FlashState::decode_sparse_from(&cfg, &mut Reader::new(&bad_index)).is_err());
    }

    #[test]
    fn block_page_counts() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        let (free, valid, invalid) = s.block(a0).page_counts();
        assert_eq!(valid, 1);
        assert_eq!(invalid, 0);
        assert_eq!(free, s.geometry().pages_per_block() - 1);
        assert_eq!(s.block(a0).next_free_page(), Some(1));
    }
}
