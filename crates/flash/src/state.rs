//! Physical page state tracking.
//!
//! The flash translation layer needs to know, for every physical page,
//! whether it is free (erased), holds valid data, or holds stale (invalid)
//! data awaiting garbage collection; and, for every block, how many times it
//! has been erased (for wear-leveling) and whether it has been retired as a
//! bad block.
//!
//! The array is stored **struct-of-arrays**: one flat byte per page state
//! and one flat column per block attribute (erase count, write pointer,
//! bad flag, invalid-page count). A pristine array is all zeroes, so
//! construction is a handful of zeroed allocations the OS can serve from
//! untouched virtual pages — building a paper-scale device (hundreds of
//! thousands of blocks) costs microseconds instead of milliseconds, which
//! matters because fresh-run benchmarks construct one device per repeat.
//! Aggregates the hot paths ask for on every operation (`page_totals`,
//! per-block page counts, wear statistics) are maintained incrementally and
//! answered in O(1) instead of rescanning the array.

use crate::geometry::FlashGeometry;
use conduit_types::bytes::{put_u32, put_u64, Reader};
use conduit_types::{ConduitError, FlashConfig, PhysicalPageAddr, Result};

/// The lifecycle state of one physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Erased and available for programming.
    #[default]
    Free,
    /// Programmed and mapped by the FTL.
    Valid,
    /// Programmed but superseded; reclaimable by garbage collection.
    Invalid,
}

const PAGE_FREE: u8 = 0;
const PAGE_VALID: u8 = 1;
const PAGE_INVALID: u8 = 2;

fn decode_page(code: u8) -> PageState {
    match code {
        PAGE_VALID => PageState::Valid,
        PAGE_INVALID => PageState::Invalid,
        _ => PageState::Free,
    }
}

/// A by-value view of one block's bookkeeping: erase count, bad flag, write
/// pointer and page counts. Cheap to copy; reading one costs four array
/// loads from the struct-of-arrays columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    erase_count: u64,
    bad: bool,
    write_pointer: u32,
    pages_per_block: u32,
    invalid: u32,
}

impl BlockInfo {
    /// Number of times this block has been erased.
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Whether the block has been retired.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Number of pages in each state: `(free, valid, invalid)`.
    ///
    /// Flash programs sequentially, so every page below the write pointer is
    /// `Valid` or `Invalid` and every page at or above it is `Free`; the
    /// counts fall out of the write pointer and the maintained invalid
    /// count without touching the page array.
    pub fn page_counts(&self) -> (u32, u32, u32) {
        let free = self.pages_per_block - self.write_pointer;
        let valid = self.write_pointer - self.invalid;
        (free, valid, self.invalid)
    }

    /// The next programmable page index, if the block is not full.
    pub fn next_free_page(&self) -> Option<u32> {
        if self.bad || self.write_pointer >= self.pages_per_block {
            None
        } else {
            Some(self.write_pointer)
        }
    }
}

/// State of every physical page and block in the flash array.
///
/// # Examples
///
/// ```
/// use conduit_flash::{FlashState, PageState};
/// use conduit_types::SsdConfig;
///
/// let cfg = SsdConfig::small_for_tests();
/// let mut state = FlashState::new(&cfg.flash);
/// let addr = state.geometry().addr_of(0);
/// state.program(addr)?;
/// assert_eq!(state.page_state(addr), PageState::Valid);
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashState {
    geometry: FlashGeometry,
    pages_per_block: u32,
    /// One code per physical page (`PAGE_FREE`/`PAGE_VALID`/`PAGE_INVALID`),
    /// indexed `block * pages_per_block + page`.
    page_states: Vec<u8>,
    /// Per-block erase counts.
    erase_counts: Vec<u64>,
    /// Per-block next sequential program target.
    write_pointers: Vec<u32>,
    /// Per-block bad flag (0/1).
    bad: Vec<u8>,
    /// Per-block count of invalid pages (GC victim selection).
    invalid_counts: Vec<u32>,
    /// Array-wide running totals, maintained on every transition.
    valid_pages: u64,
    invalid_pages: u64,
    total_erases: u64,
    max_erases: u64,
    /// Number of blocks with a non-zero erase count (the wear minimum is
    /// zero until every block has been erased at least once).
    erased_blocks: u64,
}

impl FlashState {
    /// Creates a fully-erased flash array. All columns start zeroed, so
    /// this performs no per-block work.
    pub fn new(cfg: &FlashConfig) -> Self {
        let geometry = FlashGeometry::new(cfg);
        let blocks = geometry.total_blocks() as usize;
        let pages = blocks * cfg.pages_per_block as usize;
        FlashState {
            geometry,
            pages_per_block: cfg.pages_per_block,
            page_states: vec![0u8; pages],
            erase_counts: vec![0u64; blocks],
            write_pointers: vec![0u32; blocks],
            bad: vec![0u8; blocks],
            invalid_counts: vec![0u32; blocks],
            valid_pages: 0,
            invalid_pages: 0,
            total_erases: 0,
            max_erases: 0,
            erased_blocks: 0,
        }
    }

    /// The flash geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Block bookkeeping for the block containing `addr`.
    pub fn block(&self, addr: PhysicalPageAddr) -> BlockInfo {
        self.block_by_index(self.geometry.block_index_of(addr))
    }

    /// Block bookkeeping by flat block index.
    pub fn block_by_index(&self, block_index: u64) -> BlockInfo {
        let b = block_index as usize;
        BlockInfo {
            erase_count: self.erase_counts[b],
            bad: self.bad[b] != 0,
            write_pointer: self.write_pointers[b],
            pages_per_block: self.pages_per_block,
            invalid: self.invalid_counts[b],
        }
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u64 {
        self.erase_counts.len() as u64
    }

    fn page_index(&self, addr: PhysicalPageAddr) -> usize {
        self.geometry.block_index_of(addr) as usize * self.pages_per_block as usize
            + addr.page as usize
    }

    /// The state of a single physical page.
    pub fn page_state(&self, addr: PhysicalPageAddr) -> PageState {
        decode_page(self.page_states[self.page_index(addr)])
    }

    /// Marks a page as programmed with valid data.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the page is not free, is not
    /// the block's next sequential page, or the block is bad — all of which
    /// indicate an FTL bug.
    pub fn program(&mut self, addr: PhysicalPageAddr) -> Result<()> {
        let b = self.geometry.block_index_of(addr) as usize;
        if self.bad[b] != 0 {
            return Err(ConduitError::simulation(format!(
                "program to bad block at {addr}"
            )));
        }
        let idx = b * self.pages_per_block as usize + addr.page as usize;
        if self.page_states[idx] != PAGE_FREE {
            return Err(ConduitError::simulation(format!(
                "program to non-free page at {addr}"
            )));
        }
        if self.write_pointers[b] != addr.page as u32 {
            return Err(ConduitError::simulation(format!(
                "out-of-order program at {addr} (write pointer {})",
                self.write_pointers[b]
            )));
        }
        self.page_states[idx] = PAGE_VALID;
        self.write_pointers[b] += 1;
        self.valid_pages += 1;
        Ok(())
    }

    /// Marks a valid page as invalid (its logical page was remapped).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the page is not valid.
    pub fn invalidate(&mut self, addr: PhysicalPageAddr) -> Result<()> {
        let b = self.geometry.block_index_of(addr) as usize;
        let idx = b * self.pages_per_block as usize + addr.page as usize;
        if self.page_states[idx] != PAGE_VALID {
            return Err(ConduitError::simulation(format!(
                "invalidate of non-valid page at {addr}"
            )));
        }
        self.page_states[idx] = PAGE_INVALID;
        self.valid_pages -= 1;
        self.invalid_pages += 1;
        self.invalid_counts[b] += 1;
        Ok(())
    }

    /// Erases a block, freeing all its pages and bumping its erase count.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::Simulation`] if the block still contains
    /// valid pages (the FTL must relocate them first) or is bad.
    pub fn erase_block(&mut self, block_index: u64) -> Result<()> {
        let b = block_index as usize;
        if self.bad[b] != 0 {
            return Err(ConduitError::simulation("erase of bad block"));
        }
        let written = self.write_pointers[b];
        // Every page below the write pointer is Valid or Invalid; pages at
        // or beyond it are Free. A block still holding valid pages must be
        // collected first.
        if written > self.invalid_counts[b] {
            return Err(ConduitError::simulation(
                "erase of block that still holds valid pages",
            ));
        }
        let base = b * self.pages_per_block as usize;
        self.page_states[base..base + written as usize].fill(PAGE_FREE);
        self.invalid_pages -= self.invalid_counts[b] as u64;
        self.invalid_counts[b] = 0;
        self.write_pointers[b] = 0;
        if self.erase_counts[b] == 0 {
            self.erased_blocks += 1;
        }
        self.erase_counts[b] += 1;
        self.total_erases += 1;
        self.max_erases = self.max_erases.max(self.erase_counts[b]);
        Ok(())
    }

    /// Retires a block as bad. Its pages become unusable.
    pub fn mark_bad(&mut self, block_index: u64) {
        self.bad[block_index as usize] = 1;
    }

    /// Totals across the whole array: `(free, valid, invalid)` pages.
    /// Maintained incrementally, so this is O(1) — it sits on the garbage
    /// collector's should-run check, which runs on every rewrite.
    pub fn page_totals(&self) -> (u64, u64, u64) {
        let total = self.page_states.len() as u64;
        let free = total - self.valid_pages - self.invalid_pages;
        (free, self.valid_pages, self.invalid_pages)
    }

    /// The block (if any) with the most invalid pages, ties broken by the
    /// lowest index — the garbage collector's victim-selection rule,
    /// answered from the per-block invalid column without touching page
    /// states.
    pub fn most_invalid_block(&self) -> Option<u64> {
        let mut best: Option<(u64, u32)> = None;
        for (b, &invalid) in self.invalid_counts.iter().enumerate() {
            if invalid == 0 || self.bad[b] != 0 {
                continue;
            }
            match best {
                Some((_, best_invalid)) if invalid <= best_invalid => {}
                _ => best = Some((b as u64, invalid)),
            }
        }
        best.map(|(b, _)| b)
    }

    /// Appends this array's mutable state (per-block erase counts, bad
    /// flags, write pointers and 2-bit page states) to `out` in the compact
    /// little-endian checkpoint layout. The geometry is *not* stored — it is
    /// a pure function of the [`FlashConfig`] the decoder is given.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let blocks = self.erase_counts.len();
        put_u64(out, blocks as u64);
        let ppb = self.pages_per_block as usize;
        for b in 0..blocks {
            put_u64(out, self.erase_counts[b]);
            out.push(self.bad[b]);
            put_u32(out, self.write_pointers[b]);
            // Page states packed four to a byte (Free=0, Valid=1, Invalid=2).
            Self::pack_pages(&self.page_states[b * ppb..(b + 1) * ppb], out);
        }
    }

    fn pack_pages(codes: &[u8], out: &mut Vec<u8>) {
        let mut acc = 0u8;
        let mut filled = 0u8;
        for &code in codes {
            acc |= code << (2 * filled);
            filled += 1;
            if filled == 4 {
                out.push(acc);
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            out.push(acc);
        }
    }

    /// Whether a block is indistinguishable from a factory-fresh one:
    /// never programmed, never erased, not retired. Such blocks carry no
    /// information and are skipped by the sparse encoding.
    fn block_is_pristine(&self, b: usize) -> bool {
        self.erase_counts[b] == 0 && self.bad[b] == 0 && self.write_pointers[b] == 0
    }

    /// Appends a **delta-against-pristine** image of the array: only
    /// touched blocks (programmed, erased or retired at least once) are
    /// stored, keyed by block index, and within each block only the first
    /// `write_pointer` page states are packed — pages at or beyond the
    /// write pointer are `Free` by the sequential-programming invariant. A
    /// cold device therefore encodes to a handful of bytes regardless of
    /// array size, while a fully-written device costs the same as the dense
    /// [`FlashState::encode_into`] layout plus one index per block.
    pub fn encode_sparse_into(&self, out: &mut Vec<u8>) {
        let blocks = self.erase_counts.len();
        put_u64(out, blocks as u64);
        let touched = (0..blocks).filter(|&b| !self.block_is_pristine(b)).count();
        put_u64(out, touched as u64);
        let ppb = self.pages_per_block as usize;
        for b in 0..blocks {
            if self.block_is_pristine(b) {
                continue;
            }
            put_u64(out, b as u64);
            put_u64(out, self.erase_counts[b]);
            out.push(self.bad[b]);
            put_u32(out, self.write_pointers[b]);
            let written = self.write_pointers[b] as usize;
            debug_assert!(
                self.page_states[b * ppb + written..(b + 1) * ppb]
                    .iter()
                    .all(|&p| p == PAGE_FREE),
                "pages beyond the write pointer must be Free"
            );
            Self::pack_pages(&self.page_states[b * ppb..b * ppb + written], out);
        }
    }

    /// Rebuilds the O(1) aggregate columns (page totals, per-block invalid
    /// counts, wear totals) from the freshly decoded raw columns.
    fn rebuild_aggregates(&mut self) {
        let ppb = self.pages_per_block as usize;
        self.valid_pages = 0;
        self.invalid_pages = 0;
        self.total_erases = 0;
        self.max_erases = 0;
        self.erased_blocks = 0;
        for b in 0..self.erase_counts.len() {
            let written = self.write_pointers[b] as usize;
            let mut invalid = 0u32;
            let mut valid = 0u32;
            for &code in &self.page_states[b * ppb..b * ppb + written] {
                match code {
                    PAGE_VALID => valid += 1,
                    PAGE_INVALID => invalid += 1,
                    _ => {}
                }
            }
            self.invalid_counts[b] = invalid;
            self.valid_pages += valid as u64;
            self.invalid_pages += invalid as u64;
            let erases = self.erase_counts[b];
            self.total_erases += erases;
            self.max_erases = self.max_erases.max(erases);
            if erases > 0 {
                self.erased_blocks += 1;
            }
        }
    }

    /// Decodes a state serialized by [`FlashState::encode_sparse_into`] for
    /// the given configuration. Blocks absent from the stream restore as
    /// pristine.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on truncation, an
    /// unknown page-state code, a block count that does not match the
    /// geometry, out-of-range or non-increasing block indices, or a write
    /// pointer beyond the block size.
    pub fn decode_sparse_from(cfg: &FlashConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut state = FlashState::new(cfg);
        let total = r.u64()? as usize;
        if total != state.erase_counts.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint has {total} blocks but the configuration describes {}",
                state.erase_counts.len()
            )));
        }
        let touched = r.u64()? as usize;
        if touched > total {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint stores {touched} touched blocks of only {total}"
            )));
        }
        let pages_per_block = cfg.pages_per_block as usize;
        let mut prev_index: Option<u64> = None;
        for _ in 0..touched {
            let index = r.u64()?;
            if index as usize >= total {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "touched block index {index} outside the {total}-block array"
                )));
            }
            if prev_index.is_some_and(|prev| index <= prev) {
                return Err(ConduitError::corrupt_checkpoint(
                    "touched block indices must be strictly increasing",
                ));
            }
            prev_index = Some(index);
            let b = index as usize;
            state.erase_counts[b] = r.counter()?;
            state.bad[b] = match r.u8()? {
                0 => 0,
                1 => 1,
                v => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown bad-block flag {v}"
                    )))
                }
            };
            state.write_pointers[b] = r.u32()?;
            let written = state.write_pointers[b] as usize;
            if written > pages_per_block {
                return Err(ConduitError::corrupt_checkpoint(
                    "write pointer beyond block size",
                ));
            }
            let packed = r.take(written.div_ceil(4))?;
            let base = b * pages_per_block;
            for i in 0..written {
                let code = (packed[i / 4] >> (2 * (i % 4))) & 0b11;
                if code > PAGE_INVALID {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown page-state code {code}"
                    )));
                }
                state.page_states[base + i] = code;
            }
        }
        state.rebuild_aggregates();
        Ok(state)
    }

    /// Decodes a state serialized by [`FlashState::encode_into`] for the
    /// given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on truncation, an unknown
    /// page-state code, a block count that does not match the geometry
    /// `cfg` describes, or a non-`Free` page at or beyond a block's write
    /// pointer (flash programs sequentially, so such a state is impossible
    /// on a real device — and the sparse encoding relies on the invariant
    /// to omit those pages, so accepting it here would silently drop the
    /// page on the next re-export).
    pub fn decode_from(cfg: &FlashConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut state = FlashState::new(cfg);
        let count = r.u64()? as usize;
        if count != state.erase_counts.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "flash checkpoint has {count} blocks but the configuration describes {}",
                state.erase_counts.len()
            )));
        }
        let pages_per_block = cfg.pages_per_block as usize;
        let packed_len = pages_per_block.div_ceil(4);
        for b in 0..count {
            state.erase_counts[b] = r.counter()?;
            state.bad[b] = match r.u8()? {
                0 => 0,
                1 => 1,
                v => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown bad-block flag {v}"
                    )))
                }
            };
            state.write_pointers[b] = r.u32()?;
            if state.write_pointers[b] as usize > pages_per_block {
                return Err(ConduitError::corrupt_checkpoint(
                    "write pointer beyond block size",
                ));
            }
            let packed = r.take(packed_len)?;
            let base = b * pages_per_block;
            for i in 0..pages_per_block {
                let code = (packed[i / 4] >> (2 * (i % 4))) & 0b11;
                if code > PAGE_INVALID {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown page-state code {code}"
                    )));
                }
                if i >= state.write_pointers[b] as usize && code != PAGE_FREE {
                    return Err(ConduitError::corrupt_checkpoint(
                        "programmed page at or beyond the block's write pointer",
                    ));
                }
                state.page_states[base + i] = code;
            }
        }
        state.rebuild_aggregates();
        Ok(state)
    }

    /// Wear statistics across blocks: `(min, max, mean)` erase counts.
    /// Answered from the maintained totals — the minimum is zero until
    /// every block has been erased at least once, which only a pathological
    /// workload reaches (and then it pays one scan).
    pub fn wear_stats(&self) -> (u64, u64, f64) {
        let blocks = self.erase_counts.len() as u64;
        let min = if self.erased_blocks < blocks {
            0
        } else {
            self.erase_counts.iter().copied().min().unwrap_or(0)
        };
        let mean = if blocks == 0 {
            0.0
        } else {
            self.total_erases as f64 / blocks as f64
        };
        (min, self.max_erases, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn state() -> FlashState {
        FlashState::new(&SsdConfig::small_for_tests().flash)
    }

    #[test]
    fn new_array_is_fully_free() {
        let s = state();
        let (free, valid, invalid) = s.page_totals();
        assert_eq!(valid, 0);
        assert_eq!(invalid, 0);
        assert_eq!(free, s.geometry().total_pages());
    }

    #[test]
    fn program_invalidate_erase_cycle() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        assert_eq!(s.page_state(a0), PageState::Valid);

        s.invalidate(a0).unwrap();
        s.invalidate(a1).unwrap();
        assert_eq!(s.page_state(a0), PageState::Invalid);

        let block = s.geometry().block_index_of(a0);
        s.erase_block(block).unwrap();
        assert_eq!(s.page_state(a0), PageState::Free);
        assert_eq!(s.block_by_index(block).erase_count(), 1);
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut s = state();
        let a5 = PhysicalPageAddr {
            page: 5,
            ..s.geometry().addr_of(0)
        };
        assert!(s.program(a5).is_err());
    }

    #[test]
    fn double_program_is_rejected() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        assert!(s.program(a0).is_err());
    }

    #[test]
    fn erase_with_valid_pages_is_rejected() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        let block = s.geometry().block_index_of(a0);
        assert!(s.erase_block(block).is_err());
    }

    #[test]
    fn bad_blocks_are_unusable() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        let block = s.geometry().block_index_of(a0);
        s.mark_bad(block);
        assert!(s.block_by_index(block).is_bad());
        assert!(s.program(a0).is_err());
        assert!(s.erase_block(block).is_err());
        assert_eq!(s.block_by_index(block).next_free_page(), None);
    }

    #[test]
    fn wear_stats_track_erases() {
        let mut s = state();
        s.erase_block(0).unwrap();
        s.erase_block(0).unwrap();
        s.erase_block(1).unwrap();
        let (min, max, mean) = s.wear_stats();
        assert_eq!(min, 0);
        assert_eq!(max, 2);
        assert!(mean > 0.0);
    }

    #[test]
    fn wear_minimum_appears_once_every_block_has_been_erased() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        for b in 0..s.total_blocks() {
            s.erase_block(b).unwrap();
        }
        s.erase_block(0).unwrap();
        let (min, max, mean) = s.wear_stats();
        assert_eq!(min, 1);
        assert_eq!(max, 2);
        assert!(mean > 1.0);
    }

    #[test]
    fn aggregates_match_a_page_scan() {
        // The O(1) totals must agree with brute-force recounting after a
        // mixed program/invalidate/erase history.
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        for i in 0..12 {
            s.program(s.geometry().addr_of(i)).unwrap();
        }
        for i in [0u64, 2, 4, 5] {
            s.invalidate(s.geometry().addr_of(i)).unwrap();
        }
        let mut free = 0u64;
        let mut valid = 0u64;
        let mut invalid = 0u64;
        for p in 0..s.geometry().total_pages() {
            match s.page_state(s.geometry().addr_of(p)) {
                PageState::Free => free += 1,
                PageState::Valid => valid += 1,
                PageState::Invalid => invalid += 1,
            }
        }
        assert_eq!(s.page_totals(), (free, valid, invalid));
        let b0 = s.block_by_index(0);
        let (bf, bv, bi) = b0.page_counts();
        assert_eq!(bf + bv + bi, cfg.pages_per_block);
    }

    #[test]
    fn most_invalid_block_follows_the_invalid_column() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        assert_eq!(s.most_invalid_block(), None);
        let ppb = cfg.pages_per_block as u64;
        // Block 0: one invalid page; block 1: two invalid pages.
        for i in 0..3 {
            s.program(s.geometry().addr_of(i)).unwrap();
        }
        for i in ppb..ppb + 2 {
            s.program(s.geometry().addr_of(i)).unwrap();
        }
        s.invalidate(s.geometry().addr_of(0)).unwrap();
        s.invalidate(s.geometry().addr_of(ppb)).unwrap();
        s.invalidate(s.geometry().addr_of(ppb + 1)).unwrap();
        assert_eq!(s.most_invalid_block(), Some(1));
        // Bad blocks are never victims.
        s.mark_bad(1);
        assert_eq!(s.most_invalid_block(), Some(0));
    }

    #[test]
    fn checkpoint_roundtrips_an_aged_array() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        s.invalidate(a0).unwrap();
        s.erase_block(s.geometry().total_blocks() - 1).unwrap();
        s.mark_bad(s.geometry().total_blocks() - 2);

        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = FlashState::decode_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, s);

        // A mismatched geometry is rejected rather than silently truncated.
        let mut small = cfg.clone();
        small.blocks_per_plane /= 2;
        assert!(FlashState::decode_from(&small, &mut Reader::new(&buf)).is_err());
        // Truncation is rejected.
        assert!(FlashState::decode_from(&cfg, &mut Reader::new(&buf[..buf.len() - 1])).is_err());
    }

    #[test]
    fn dense_decode_rejects_programmed_pages_beyond_the_write_pointer() {
        let cfg = SsdConfig::small_for_tests().flash;
        let s = FlashState::new(&cfg);
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        // Dense layout: u64 block count, then per block
        // [u64 erases][u8 bad][u32 write_pointer][packed pages]. Mark block
        // 0's first page Valid while its write pointer stays 0 — a state a
        // sequentially-programmed device can never reach. Accepting it
        // would silently drop the page on the next sparse re-export.
        buf[8 + 8 + 1 + 4] = 0b01;
        assert!(FlashState::decode_from(&cfg, &mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn sparse_checkpoint_roundtrips_and_skips_pristine_blocks() {
        let cfg = SsdConfig::small_for_tests().flash;
        let mut s = FlashState::new(&cfg);
        // A pristine array encodes to just the two headers.
        let mut cold = Vec::new();
        s.encode_sparse_into(&mut cold);
        assert_eq!(cold.len(), 16, "a cold array stores no blocks");
        let back = FlashState::decode_sparse_from(&cfg, &mut Reader::new(&cold)).unwrap();
        assert_eq!(back, s);

        // Touch a handful of blocks; everything round-trips and the sparse
        // image stays much smaller than the dense one.
        let a0 = s.geometry().addr_of(0);
        let a1 = s.geometry().addr_of(1);
        s.program(a0).unwrap();
        s.program(a1).unwrap();
        s.invalidate(a0).unwrap();
        s.erase_block(s.geometry().total_blocks() - 1).unwrap();
        s.mark_bad(s.geometry().total_blocks() - 2);

        let mut sparse = Vec::new();
        s.encode_sparse_into(&mut sparse);
        let mut dense = Vec::new();
        s.encode_into(&mut dense);
        assert!(
            sparse.len() * 4 < dense.len(),
            "sparse image ({} B) should be far below dense ({} B) on a mostly-cold array",
            sparse.len(),
            dense.len()
        );
        let mut r = Reader::new(&sparse);
        let back = FlashState::decode_sparse_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, s);
        // Re-encoding the decoded state is deterministic.
        let mut again = Vec::new();
        back.encode_sparse_into(&mut again);
        assert_eq!(again, sparse);

        // Corruption is rejected: truncation, geometry mismatch, an
        // out-of-range block index, and unsorted indices.
        assert!(FlashState::decode_sparse_from(
            &cfg,
            &mut Reader::new(&sparse[..sparse.len() - 1])
        )
        .is_err());
        let mut small = cfg.clone();
        small.blocks_per_plane /= 2;
        assert!(FlashState::decode_sparse_from(&small, &mut Reader::new(&sparse)).is_err());
        let mut bad_index = sparse.clone();
        // First touched-block index sits right after the two u64 headers.
        bad_index[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(FlashState::decode_sparse_from(&cfg, &mut Reader::new(&bad_index)).is_err());
    }

    #[test]
    fn block_page_counts() {
        let mut s = state();
        let a0 = s.geometry().addr_of(0);
        s.program(a0).unwrap();
        let (free, valid, invalid) = s.block(a0).page_counts();
        assert_eq!(valid, 1);
        assert_eq!(invalid, 0);
        assert_eq!(free, s.geometry().pages_per_block() - 1);
        assert_eq!(s.block(a0).next_free_page(), Some(1));
    }
}
