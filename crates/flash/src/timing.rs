//! Un-contended timing and energy of basic flash operations.

use conduit_types::{Duration, Energy, FlashConfig};

/// Latency and energy model for plain flash operations (read, program,
/// erase, channel DMA). Values come straight from the [`FlashConfig`]
/// (Table 2 of the paper, SLC-mode operation).
///
/// The model intentionally excludes queueing/contention: the event-driven
/// simulator composes these service times with per-channel and per-die busy
/// tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashTiming {
    cfg: FlashConfig,
}

impl FlashTiming {
    /// Builds a timing model from a flash configuration.
    pub fn new(cfg: &FlashConfig) -> Self {
        FlashTiming { cfg: cfg.clone() }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// SLC-mode page sensing latency (`tR`).
    pub fn read_page(&self) -> Duration {
        self.cfg.t_read
    }

    /// SLC-mode page program latency (`tPROG`).
    pub fn program_page(&self) -> Duration {
        self.cfg.t_program
    }

    /// Block erase latency (`tBERS`).
    pub fn erase_block(&self) -> Duration {
        self.cfg.t_erase
    }

    /// Time to move one full page between the page buffer and the flash
    /// controller over the channel.
    pub fn page_dma(&self) -> Duration {
        self.cfg.t_dma
    }

    /// Time to move `bytes` over a flash channel (partial-page DMA).
    pub fn channel_transfer(&self, bytes: u64) -> Duration {
        Duration::for_transfer(bytes, self.cfg.channel_bytes_per_sec)
    }

    /// Latency of transferring a page from the flash array to the SSD DRAM:
    /// sensing + channel DMA. This is the dominant cost PuD-SSD pays for
    /// flash-resident operands.
    pub fn page_to_dram(&self) -> Duration {
        self.cfg.t_read + self.cfg.t_dma
    }

    /// Energy of sensing one page.
    pub fn read_energy(&self) -> Energy {
        self.cfg.e_read
    }

    /// Energy of programming one page.
    pub fn program_energy(&self) -> Energy {
        self.cfg.e_program
    }

    /// Energy of one page DMA over the channel.
    pub fn dma_energy(&self) -> Energy {
        self.cfg.e_dma
    }

    /// Energy of moving `bytes` over a flash channel, scaled from the
    /// per-page DMA energy.
    pub fn transfer_energy(&self, bytes: u64) -> Energy {
        self.cfg.e_dma * (bytes as f64 / self.cfg.page_bytes as f64)
    }

    /// Number of pages needed to hold `bytes`.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.cfg.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> FlashTiming {
        FlashTiming::new(&FlashConfig::default())
    }

    #[test]
    fn service_times_match_config() {
        let t = timing();
        assert_eq!(t.read_page(), Duration::from_us(22.5));
        assert_eq!(t.program_page(), Duration::from_us(400.0));
        assert_eq!(t.erase_block(), Duration::from_us(3500.0));
        assert_eq!(t.page_dma(), Duration::from_us(3.3));
        assert_eq!(t.page_to_dram(), Duration::from_us(25.8));
    }

    #[test]
    fn channel_transfer_scales_with_bytes() {
        let t = timing();
        let one = t.channel_transfer(4096);
        let four = t.channel_transfer(4 * 4096);
        assert!((four.as_ns() - (one * 4).as_ns()).abs() < 0.01);
    }

    #[test]
    fn transfer_energy_scales_with_bytes() {
        let t = timing();
        let half = t.transfer_energy(2048);
        assert!((half.as_uj() - 7.656 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn pages_for_rounds_up() {
        let t = timing();
        assert_eq!(t.pages_for(1), 1);
        assert_eq!(t.pages_for(4096), 1);
        assert_eq!(t.pages_for(4097), 2);
        assert_eq!(t.pages_for(16 * 1024), 4);
    }
}
