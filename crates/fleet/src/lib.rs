//! # conduit-fleet
//!
//! A fleet front-end over N independent [`Session`] shards: one logical
//! serving surface for many tenants, with deterministic tenant routing,
//! SLO-aware admission control and checkpoint-based work migration.
//!
//! * **Sharded sessions** — a [`Fleet`] owns `shards` fully independent
//!   [`Session`]s (same SSD/host/fault configuration, same worker-pool
//!   shape). Tenants are placed on shards by **rendezvous (HRW) hashing**
//!   over the tenant name, seeded by the fleet seed: the same tenant set
//!   and seed always produce the same assignment, and adding shards only
//!   moves the tenants that hash to the new shard.
//! * **Health-aware placement** — new tenants are steered away from shards
//!   holding a [`DeviceHealth::Degraded`] device: the HRW ranking is
//!   walked in score order and the first healthy shard wins (falling back
//!   to the raw HRW winner only when every shard is degraded). Tenants
//!   that name an already-placed device colocate with it regardless of
//!   health, because sharing a device's FIFO lane is the point of naming
//!   it.
//! * **Admission control** — [`Fleet::run_trace`] replays a
//!   [`Trace`] in fixed admission windows. At each window boundary every
//!   tenant's [`SloTarget`] is checked against the *previous* window's
//!   lane occupancy ([`DeviceSnapshot::window_occupancy`]) and the
//!   tenant's lifetime p99 (once at least `min_slo_samples` samples
//!   exist). A tenant that trips its SLO has that window's requests
//!   **shed**: counted per tenant, reported as typed
//!   [`ConduitError::AdmissionRejected`] events, never a panic.
//! * **Work migration** — [`Fleet::rebalance`] moves a tenant's device to
//!   another shard through the versioned device-checkpoint format
//!   ([`Session::export_device`] / [`Session::import_device`]): the
//!   stream clock and complete device state travel with the checkpoint,
//!   so the continued stream is bit-identical to never having moved.
//!   Forged or corrupt payloads reject as
//!   [`ConduitError::CorruptCheckpoint`] and leave the fleet unchanged.
//!
//! Determinism contract: everything is driven by simulated time and the
//! fleet seed. Per-device request streams are identical whatever shard
//! their device lands on, so merged fleet results are independent of the
//! shard count for single-tenant streams and bit-identical across serial
//! and multi-worker session pools.
//!
//! ```
//! use conduit_fleet::Fleet;
//! use conduit_traffic::{ArrivalSpec, TenantSpec, TrafficMix};
//! use conduit_types::{Duration, SsdConfig};
//! use conduit_workloads::{Scale, Workload};
//! use conduit::Policy;
//!
//! let mix = TrafficMix::new(Scale::test()).tenant(TenantSpec::new(
//!     "tenant-a",
//!     "lane-a",
//!     Workload::XorFilter,
//!     Policy::Conduit,
//!     ArrivalSpec::Deterministic {
//!         interarrival: Duration::from_us(200.0),
//!         phase: Duration::ZERO,
//!     },
//! ));
//! let trace = mix.generate(Duration::from_us(1000.0))?;
//!
//! let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
//!     .shards(4)
//!     .build();
//! let report = fleet.run_trace(&trace)?;
//! assert_eq!(report.served, trace.records.len() as u64);
//! assert_eq!(report.shed, 0);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

use conduit::{DeviceHandle, ProgramId, RunOutcome, RunRequest, Session};
use conduit_sim::{DeviceSnapshot, LaneStats, LatencyStats};
use conduit_traffic::{TenantSpec, Trace};
use conduit_types::bytes::{fnv1a, put_u64};
use conduit_types::{ConduitError, Duration, FaultConfig, HostConfig, Result, SimTime, SsdConfig};
use conduit_workloads::Scale;

#[cfg(doc)]
use conduit_traffic::SloTarget;
#[cfg(doc)]
use conduit_types::DeviceHealth;

/// Default admission-window length: one millisecond of simulated time.
/// Long enough for the windowed lane counters to mean something, short
/// enough that a saturating tenant is cut off after a bounded backlog.
pub const DEFAULT_ADMISSION_WINDOW: Duration = Duration::from_ps(1_000_000_000);

/// Default minimum number of latency samples before a tenant's p99 SLO is
/// enforced (a p99 over a handful of samples is noise, not a signal).
pub const DEFAULT_MIN_SLO_SAMPLES: usize = 16;

/// Default fleet routing seed.
pub const DEFAULT_FLEET_SEED: u64 = 0xF1EE_7000;

/// Opaque per-fleet tenant identifier, minted by
/// [`Fleet::register_tenant`] in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// Position of the tenant in the fleet's registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Rendezvous (highest-random-weight) score of `name` on `shard`: FNV-1a
/// over the fleet seed, the tenant name and the shard index — in that
/// order. The shard bytes must come *last*: FNV-1a is a weak sequential
/// mixer, and hashing a shared suffix after the differing shard bytes
/// correlates the per-shard ranking across every name (one shard wins the
/// whole fleet). With the shard trailing, each shard scores independently
/// per name, so resizing the fleet only remaps the tenants whose
/// top-scoring shard changed.
fn hrw_score(seed: u64, shard: usize, name: &str) -> u64 {
    let mut key = Vec::with_capacity(16 + name.len());
    put_u64(&mut key, seed);
    key.extend_from_slice(name.as_bytes());
    put_u64(&mut key, shard as u64);
    fnv1a(&key)
}

/// Builder for a [`Fleet`]; see [`Fleet::builder`].
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    ssd: SsdConfig,
    host: Option<HostConfig>,
    faults: FaultConfig,
    shards: usize,
    workers: Option<usize>,
    serial: bool,
    seed: u64,
    window: Duration,
    min_slo_samples: usize,
    drr_quantum: Option<Duration>,
}

impl FleetBuilder {
    fn new(ssd: SsdConfig) -> Self {
        FleetBuilder {
            ssd,
            host: None,
            faults: FaultConfig::default(),
            shards: 1,
            workers: None,
            serial: false,
            seed: DEFAULT_FLEET_SEED,
            window: DEFAULT_ADMISSION_WINDOW,
            min_slo_samples: DEFAULT_MIN_SLO_SAMPLES,
            drr_quantum: None,
        }
    }

    /// Host (CPU/GPU/link) configuration shared by every shard.
    pub fn host(mut self, host: HostConfig) -> Self {
        self.host = Some(host);
        self
    }

    /// Fault-injection plan shared by every shard's devices.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Number of independent session shards (clamped to at least one).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker threads per shard's session pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self.serial = false;
        self
    }

    /// Runs every shard on the calling thread (no worker pools).
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self.workers = None;
        self
    }

    /// Routing seed: same seed + same tenant names = same placement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Admission-window length (clamped to at least one picosecond).
    pub fn admission_window(mut self, window: Duration) -> Self {
        self.window = Duration::from_ps(window.as_ps().max(1));
        self
    }

    /// Minimum latency samples before the p99 SLO is enforced.
    pub fn min_slo_samples(mut self, samples: usize) -> Self {
        self.min_slo_samples = samples;
        self
    }

    /// Deficit-round-robin quantum forwarded to every shard's session.
    pub fn drr_quantum(mut self, quantum: Duration) -> Self {
        self.drr_quantum = Some(quantum);
        self
    }

    /// Builds the fleet: `shards` identically-configured sessions.
    pub fn build(self) -> Fleet {
        let shards = (0..self.shards)
            .map(|_| {
                let mut b = Session::builder(self.ssd.clone()).faults(self.faults);
                if let Some(host) = &self.host {
                    b = b.host(host.clone());
                }
                if let Some(quantum) = self.drr_quantum {
                    b = b.drr_quantum(quantum);
                }
                if self.serial {
                    b = b.serial();
                } else if let Some(workers) = self.workers {
                    b = b.workers(workers);
                }
                b.build()
            })
            .collect();
        Fleet {
            shards,
            seed: self.seed,
            window: self.window,
            min_slo_samples: self.min_slo_samples,
            tenants: Vec::new(),
            by_name: HashMap::new(),
            device_home: HashMap::new(),
        }
    }
}

/// One registered tenant: its spec, where it lives, and its lifetime
/// serving record.
struct TenantEntry {
    spec: TenantSpec,
    scale: Scale,
    shard: usize,
    device: DeviceHandle,
    program: ProgramId,
    latency: LatencyStats,
    served: u64,
    shed: u64,
}

/// A fleet of independent [`Session`] shards behind one submit surface.
/// See the crate docs for the routing, admission and migration contracts.
pub struct Fleet {
    shards: Vec<Session>,
    seed: u64,
    window: Duration,
    min_slo_samples: usize,
    tenants: Vec<TenantEntry>,
    by_name: HashMap<String, u32>,
    /// Device name → (shard, handle): tenants naming the same device are
    /// colocated with it so they genuinely share its lane.
    device_home: HashMap<String, (usize, DeviceHandle)>,
}

impl Fleet {
    /// Starts building a fleet over `ssd`-configured shards.
    pub fn builder(ssd: SsdConfig) -> FleetBuilder {
        FleetBuilder::new(ssd)
    }

    /// Number of session shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read-only view of one shard's session.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Session {
        &self.shards[shard]
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.by_name.get(name).map(|&i| TenantId(i))
    }

    fn entry(&self, tenant: TenantId) -> &TenantEntry {
        &self.tenants[tenant.index()]
    }

    /// The shard a tenant currently lives on.
    ///
    /// # Panics
    ///
    /// Panics on a [`TenantId`] minted by a different fleet.
    pub fn tenant_shard(&self, tenant: TenantId) -> usize {
        self.entry(tenant).shard
    }

    /// Requests served for this tenant so far (trace windows and single
    /// submits combined).
    pub fn tenant_served(&self, tenant: TenantId) -> u64 {
        self.entry(tenant).served
    }

    /// Requests shed by admission control for this tenant so far.
    pub fn tenant_shed(&self, tenant: TenantId) -> u64 {
        self.entry(tenant).shed
    }

    /// The tenant's lifetime arrival-to-completion latency histogram (the
    /// record the p99 SLO is enforced against).
    pub fn tenant_latency(&self, tenant: TenantId) -> &LatencyStats {
        &self.entry(tenant).latency
    }

    /// Whether any device on `shard` has degraded health (ran out of
    /// spare blocks under fault injection). New tenants are steered away
    /// from such shards.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_is_degraded(&self, shard: usize) -> bool {
        let session = &self.shards[shard];
        let handles: Vec<DeviceHandle> = session.devices().map(|(h, _)| h).collect();
        handles
            .into_iter()
            .any(|h| session.device_snapshot(h).health.is_degraded())
    }

    /// The shard a brand-new tenant named `name` would be placed on:
    /// shards ranked by rendezvous score, the first non-degraded one
    /// wins; if every shard is degraded the raw rendezvous winner is
    /// used (degraded capacity beats no capacity).
    pub fn placement_shard(&self, name: &str) -> usize {
        let mut ranked: Vec<usize> = (0..self.shards.len()).collect();
        ranked.sort_by(|&a, &b| {
            hrw_score(self.seed, b, name)
                .cmp(&hrw_score(self.seed, a, name))
                .then(a.cmp(&b))
        });
        let hrw_winner = ranked[0];
        ranked
            .into_iter()
            .find(|&s| !self.shard_is_degraded(s))
            .unwrap_or(hrw_winner)
    }

    /// Registers a tenant: places its device (colocating with an
    /// already-placed device of the same name, else by health-aware
    /// rendezvous hashing), registers its workload program on the owning
    /// shard, and returns the tenant's fleet-wide id.
    ///
    /// Re-registering an identical spec at the same scale is idempotent
    /// and returns the existing id.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] when the name is already
    /// registered with a different spec or scale, and propagates workload
    /// generation / program validation errors.
    pub fn register_tenant(&mut self, spec: &TenantSpec, scale: Scale) -> Result<TenantId> {
        if let Some(&existing) = self.by_name.get(&spec.name) {
            let entry = &self.tenants[existing as usize];
            if entry.spec == *spec && entry.scale == scale {
                return Ok(TenantId(existing));
            }
            return Err(ConduitError::invalid_config(format!(
                "tenant {} is already registered with a different spec",
                spec.name
            )));
        }
        let (shard, device) = match self.device_home.get(&spec.device) {
            Some(&(shard, device)) => (shard, device),
            None => {
                let shard = self.placement_shard(&spec.name);
                let device = self.shards[shard].create_device(&spec.device);
                self.device_home
                    .insert(spec.device.clone(), (shard, device));
                (shard, device)
            }
        };
        let program = self.shards[shard].register(spec.workload.program(scale)?)?;
        let id = u32::try_from(self.tenants.len())
            .map_err(|_| ConduitError::invalid_config("fleet tenant table overflowed u32 ids"))?;
        self.tenants.push(TenantEntry {
            spec: spec.clone(),
            scale,
            shard,
            device,
            program,
            latency: LatencyStats::new(),
            served: 0,
            shed: 0,
        });
        self.by_name.insert(spec.name.clone(), id);
        Ok(TenantId(id))
    }

    /// Submits one request for `tenant` arriving at the fleet-global
    /// instant `arrival`, routing it to the tenant's shard and device.
    /// The arrival is rebased onto the device's stream clock (an arrival
    /// in the device's past queues immediately; queueing before the
    /// rebase point is carried into the recorded latency), and the
    /// tenant's lifetime latency record is updated.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the shard session.
    ///
    /// # Panics
    ///
    /// Panics on a [`TenantId`] minted by a different fleet.
    pub fn submit(&mut self, tenant: TenantId, arrival: SimTime) -> Result<RunOutcome> {
        let entry = &self.tenants[tenant.index()];
        let session = &self.shards[entry.shard];
        let base = session.device_clock(entry.device);
        let request = RunRequest::new(entry.program, entry.spec.policy)
            .on_device(entry.device)
            .arriving_at(SimTime::ZERO + arrival.saturating_since(base))
            .weighted(tenant.0, entry.spec.weight);
        let outcome = session.submit(&request)?;
        let carried = base.saturating_since(arrival);
        let entry = &mut self.tenants[tenant.index()];
        entry.latency.record(carried + outcome.summary.total_time);
        entry.served += 1;
        Ok(outcome)
    }

    /// Checks `tenant`'s SLO against the previous admission window,
    /// returning the typed rejection when it trips.
    fn admission_check(&self, tenant: TenantId) -> Option<ConduitError> {
        let entry = self.entry(tenant);
        let slo = &entry.spec.slo;
        if let Some(cap) = slo.max_lane_occupancy {
            let snap = self.shards[entry.shard].device_snapshot(entry.device);
            if snap.window_requests > 0 {
                let occupancy = snap.window_occupancy();
                if occupancy > cap {
                    return Some(ConduitError::admission_rejected(
                        &entry.spec.name,
                        format!("windowed lane occupancy {occupancy:.3} > {cap:.3}"),
                    ));
                }
            }
        }
        if let Some(limit) = slo.max_p99 {
            if entry.latency.len() >= self.min_slo_samples {
                let p99 = entry.latency.percentile(0.99);
                if p99 > limit {
                    return Some(ConduitError::admission_rejected(
                        &entry.spec.name,
                        format!(
                            "p99 {:.3} ms > SLO {:.3} ms over {} samples",
                            p99.as_ms(),
                            limit.as_ms(),
                            entry.latency.len()
                        ),
                    ));
                }
            }
        }
        None
    }

    /// Replays a traffic trace through the fleet in admission windows.
    ///
    /// Tenants are registered (idempotently) from the trace's mix, every
    /// record is routed to its tenant's shard, and each window boundary
    /// re-evaluates every appearing tenant's SLO against the previous
    /// window (see the crate docs). Shed requests are never executed;
    /// they are counted per tenant and reported as typed
    /// [`ShedEvent`]s. Within a window each shard serves its records as
    /// one batch (bit-identical across that session's serial and
    /// multi-worker pools).
    ///
    /// # Errors
    ///
    /// Propagates tenant registration and simulation errors. SLO trips
    /// are *not* errors: they surface as [`FleetReport::sheds`].
    pub fn run_trace(&mut self, trace: &Trace) -> Result<FleetReport> {
        let mut ids = Vec::with_capacity(trace.mix.tenants.len());
        for spec in &trace.mix.tenants {
            ids.push(self.register_tenant(spec, trace.mix.scale)?);
        }

        // Bucket records into fixed windows by arrival; BTreeMap keeps the
        // windows in time order whatever order the records came in.
        let window_ps = self.window.as_ps().max(1);
        let mut windows: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, record) in trace.records.iter().enumerate() {
            windows
                .entry(record.arrival.as_ps() / window_ps)
                .or_default()
                .push(i);
        }

        let mut run_latency: Vec<LatencyStats> = ids.iter().map(|_| LatencyStats::new()).collect();
        let mut run_served = vec![0u64; ids.len()];
        let mut run_shed = vec![0u64; ids.len()];
        let mut sheds = Vec::new();
        let window_count = windows.len();

        for (window, records) in windows {
            // Admission verdict per tenant appearing in this window,
            // evaluated once at the window boundary.
            let mut verdicts: HashMap<u16, Option<ConduitError>> = HashMap::new();
            for &r in &records {
                let t = trace.records[r].tenant;
                verdicts
                    .entry(t)
                    .or_insert_with(|| self.admission_check(ids[t as usize]));
            }

            // Route admitted records to their shards, shed the rest.
            let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            let mut shed_counts: HashMap<u16, u64> = HashMap::new();
            for &r in &records {
                let t = trace.records[r].tenant;
                match &verdicts[&t] {
                    None => per_shard[self.entry(ids[t as usize]).shard].push(r),
                    Some(_) => *shed_counts.entry(t).or_default() += 1,
                }
            }
            for (&t, &count) in &shed_counts {
                let id = ids[t as usize];
                self.tenants[id.index()].shed += count;
                run_shed[t as usize] += count;
            }
            // Typed shed events, in tenant order for determinism.
            let mut shed_tenants: Vec<u16> = shed_counts.keys().copied().collect();
            shed_tenants.sort_unstable();
            for t in shed_tenants {
                let error = verdicts[&t]
                    .clone()
                    .expect("shed tenants have a rejection verdict");
                sheds.push(ShedEvent {
                    window,
                    tenant: trace.mix.tenants[t as usize].name.clone(),
                    requests: shed_counts[&t],
                    error,
                });
            }

            // Serve each shard's share of the window as one batch. Shards
            // are fully independent; serving them in index order keeps
            // the report deterministic.
            for (shard, batch) in per_shard.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                // Rebase global arrivals onto each device's stream clock
                // (captured before the batch; submit_batch re-reads the
                // same clocks when it starts).
                let mut bases: HashMap<u16, SimTime> = HashMap::new();
                let mut requests = Vec::with_capacity(batch.len());
                for &r in &batch {
                    let record = &trace.records[r];
                    let entry = self.entry(ids[record.tenant as usize]);
                    let base = *bases
                        .entry(record.tenant)
                        .or_insert_with(|| self.shards[shard].device_clock(entry.device));
                    requests.push(
                        RunRequest::new(entry.program, entry.spec.policy)
                            .on_device(entry.device)
                            .arriving_at(SimTime::ZERO + record.arrival.saturating_since(base))
                            .weighted(u32::from(record.tenant), entry.spec.weight),
                    );
                }
                let outcomes = self.shards[shard].submit_batch(&requests)?;
                for (&r, outcome) in batch.iter().zip(&outcomes) {
                    let record = &trace.records[r];
                    let carried = bases[&record.tenant].saturating_since(record.arrival);
                    let latency = carried + outcome.summary.total_time;
                    let id = ids[record.tenant as usize];
                    self.tenants[id.index()].latency.record(latency);
                    self.tenants[id.index()].served += 1;
                    run_latency[record.tenant as usize].record(latency);
                    run_served[record.tenant as usize] += 1;
                }
            }
        }

        // Merge per-tenant histograms into the fleet-wide view and
        // assemble the per-shard lane picture.
        let mut latency = LatencyStats::new();
        for stats in &run_latency {
            latency.merge(stats);
        }
        let tenants = ids
            .iter()
            .enumerate()
            .map(|(t, &id)| TenantReport {
                name: trace.mix.tenants[t].name.clone(),
                shard: self.entry(id).shard,
                served: run_served[t],
                shed: run_shed[t],
                latency: run_latency[t].clone(),
            })
            .collect();
        let shards = (0..self.shards.len())
            .map(|s| self.shard_report(s))
            .collect();
        Ok(FleetReport {
            latency,
            served: run_served.iter().sum(),
            shed: run_shed.iter().sum(),
            windows: window_count,
            tenants,
            shards,
            sheds,
        })
    }

    /// Aggregates one shard's device lanes into a [`ShardReport`].
    fn shard_report(&self, shard: usize) -> ShardReport {
        let session = &self.shards[shard];
        let handles: Vec<DeviceHandle> = session.devices().map(|(h, _)| h).collect();
        let mut lanes = LaneStats::default();
        let mut degraded = false;
        for handle in &handles {
            let snap = session.device_snapshot(*handle);
            lanes.merge(&lane_stats_of(&snap));
            degraded |= snap.health.is_degraded();
        }
        ShardReport {
            devices: handles.len(),
            lanes,
            degraded,
        }
    }

    /// Serializes `tenant`'s device (stream clock + complete device
    /// state) into a migration checkpoint; see
    /// [`Session::export_device`].
    ///
    /// # Errors
    ///
    /// Propagates device-construction errors for a never-used device.
    pub fn export_tenant(&self, tenant: TenantId) -> Result<Vec<u8>> {
        let entry = self.entry(tenant);
        self.shards[entry.shard].export_device(entry.device)
    }

    /// Restores `tenant`'s device in place from a checkpoint produced by
    /// [`Fleet::export_tenant`] (or [`Session::export_device`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for forged, truncated
    /// or configuration-mismatched payloads; the fleet is unchanged on
    /// error.
    pub fn restore_tenant(&mut self, tenant: TenantId, bytes: &[u8]) -> Result<()> {
        let (shard, name) = {
            let entry = self.entry(tenant);
            (entry.shard, entry.spec.device.clone())
        };
        self.shards[shard].import_device(&name, bytes)?;
        Ok(())
    }

    /// Migrates the device of `tenant` — and with it every tenant
    /// colocated on the same device name — to `to_shard` via an
    /// export/import checkpoint round trip. The device's stream clock
    /// and state travel intact, so the continued request stream is
    /// bit-identical to never having moved. A no-op when the tenant is
    /// already on `to_shard`.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] for an out-of-range
    /// shard and propagates checkpoint errors; the source shard is only
    /// reset after the import succeeded.
    pub fn rebalance(&mut self, tenant: TenantId, to_shard: usize) -> Result<()> {
        if to_shard >= self.shards.len() {
            return Err(ConduitError::invalid_config(format!(
                "cannot rebalance to shard {to_shard}: the fleet has {} shards",
                self.shards.len()
            )));
        }
        let (from, old_device, name) = {
            let entry = self.entry(tenant);
            (entry.shard, entry.device, entry.spec.device.clone())
        };
        if from == to_shard {
            return Ok(());
        }
        let checkpoint = self.shards[from].export_device(old_device)?;
        let new_device = self.shards[to_shard].import_device(&name, &checkpoint)?;
        // The import succeeded: the target owns the stream now. Drop the
        // source copy so the device state never exists twice.
        self.shards[from].reset_device(old_device);
        self.device_home
            .insert(name.clone(), (to_shard, new_device));
        for i in 0..self.tenants.len() {
            if self.tenants[i].spec.device != name {
                continue;
            }
            // Re-register the colocated tenant's program on the target
            // (content-addressed, so repeats are free).
            let program = self.shards[to_shard].register(
                self.tenants[i]
                    .spec
                    .workload
                    .program(self.tenants[i].scale)?,
            )?;
            let entry = &mut self.tenants[i];
            entry.shard = to_shard;
            entry.device = new_device;
            entry.program = program;
        }
        Ok(())
    }
}

/// Cumulative lane statistics of a device snapshot, as a mergeable
/// [`LaneStats`].
fn lane_stats_of(snap: &DeviceSnapshot) -> LaneStats {
    LaneStats {
        requests: snap.lane_requests,
        busy: snap.lane_busy_time,
        idle: snap.lane_idle_time,
        queued: snap.lane_queued_time,
    }
}

/// One admission-control shed: a tenant-window pair whose requests were
/// rejected, with the typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedEvent {
    /// Admission-window index (global arrival time / window length).
    pub window: u64,
    /// The shed tenant's name.
    pub tenant: String,
    /// How many of the tenant's requests fell in the shed window.
    pub requests: u64,
    /// The typed rejection ([`ConduitError::AdmissionRejected`]).
    pub error: ConduitError,
}

/// One tenant's share of a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name (from its [`TenantSpec`]).
    pub name: String,
    /// Shard the tenant ended the run on.
    pub shard: usize,
    /// Requests served during this run.
    pub served: u64,
    /// Requests shed by admission control during this run.
    pub shed: u64,
    /// Arrival-to-completion latencies of this run's served requests.
    pub latency: LatencyStats,
}

/// One shard's share of a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Devices pooled on the shard.
    pub devices: usize,
    /// The shard's device lanes merged into one cumulative view.
    pub lanes: LaneStats,
    /// Whether any of the shard's devices is degraded.
    pub degraded: bool,
}

/// The merged outcome of [`Fleet::run_trace`].
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet-wide arrival-to-completion histogram (every tenant merged).
    pub latency: LatencyStats,
    /// Requests served across the fleet during this run.
    pub served: u64,
    /// Requests shed across the fleet during this run.
    pub shed: u64,
    /// Admission windows the trace spanned (non-empty ones).
    pub windows: usize,
    /// Per-tenant breakdown, in trace tenant order.
    pub tenants: Vec<TenantReport>,
    /// Per-shard lane aggregates, in shard order.
    pub shards: Vec<ShardReport>,
    /// Typed admission rejections, in (window, tenant) order.
    pub sheds: Vec<ShedEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit::Policy;
    use conduit_traffic::{ArrivalSpec, TrafficMix};
    use conduit_workloads::Workload;

    fn spec(name: &str, device: &str, gap: Duration) -> TenantSpec {
        TenantSpec::new(
            name,
            device,
            Workload::XorFilter,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: gap,
                phase: Duration::ZERO,
            },
        )
    }

    fn small_fleet(shards: usize) -> Fleet {
        Fleet::builder(SsdConfig::small_for_tests())
            .shards(shards)
            .serial()
            .build()
    }

    #[test]
    fn placement_is_deterministic_and_seed_sensitive() {
        let fleet_a = small_fleet(8);
        let fleet_b = small_fleet(8);
        let names: Vec<String> = (0..64).map(|i| format!("tenant-{i}")).collect();
        let placed_a: Vec<usize> = names.iter().map(|n| fleet_a.placement_shard(n)).collect();
        let placed_b: Vec<usize> = names.iter().map(|n| fleet_b.placement_shard(n)).collect();
        assert_eq!(placed_a, placed_b, "same seed must place identically");
        // All eight shards should receive someone (HRW spreads 32 names
        // well enough for this to hold at the fixed default seed).
        for shard in 0..8 {
            assert!(placed_a.contains(&shard), "shard {shard} got no tenant");
        }
        let reseeded = Fleet::builder(SsdConfig::small_for_tests())
            .shards(8)
            .seed(1)
            .serial()
            .build();
        let placed_c: Vec<usize> = names.iter().map(|n| reseeded.placement_shard(n)).collect();
        assert_ne!(placed_a, placed_c, "the seed must matter");
    }

    #[test]
    fn tenants_sharing_a_device_colocate() {
        let mut fleet = small_fleet(4);
        let gap = Duration::from_us(100.0);
        let a = fleet
            .register_tenant(&spec("alpha", "shared-lane", gap), Scale::test())
            .unwrap();
        let b = fleet
            .register_tenant(&spec("beta", "shared-lane", gap), Scale::test())
            .unwrap();
        assert_eq!(fleet.tenant_shard(a), fleet.tenant_shard(b));
        let c = fleet
            .register_tenant(&spec("gamma", "own-lane", gap), Scale::test())
            .unwrap();
        assert_eq!(fleet.placement_shard("gamma"), fleet.tenant_shard(c));
    }

    #[test]
    fn reregistration_is_idempotent_and_conflicts_are_rejected() {
        let mut fleet = small_fleet(2);
        let gap = Duration::from_us(100.0);
        let first = fleet
            .register_tenant(&spec("alpha", "lane", gap), Scale::test())
            .unwrap();
        let again = fleet
            .register_tenant(&spec("alpha", "lane", gap), Scale::test())
            .unwrap();
        assert_eq!(first, again);
        let conflict = fleet.register_tenant(&spec("alpha", "other-lane", gap), Scale::test());
        assert!(matches!(conflict, Err(ConduitError::InvalidConfig { .. })));
    }

    fn single_tenant_trace(gap: Duration, horizon: Duration) -> Trace {
        TrafficMix::new(Scale::test())
            .tenant(spec("solo", "solo-lane", gap))
            .generate(horizon)
            .unwrap()
    }

    #[test]
    fn merged_results_are_independent_of_shard_count_and_workers() {
        let gap = Duration::from_us(50.0);
        let trace = single_tenant_trace(gap, Duration::from_us(2000.0));
        let mut baseline = None;
        for shards in [1usize, 2, 4, 8] {
            for workers in [0usize, 2, 4, 8] {
                let mut builder = Fleet::builder(SsdConfig::small_for_tests()).shards(shards);
                builder = if workers == 0 {
                    builder.serial()
                } else {
                    builder.workers(workers)
                };
                let mut fleet = builder.build();
                let report = fleet.run_trace(&trace).unwrap();
                let signature = (
                    report.served,
                    report.shed,
                    report.latency.percentile(0.50),
                    report.latency.percentile(0.99),
                    report.latency.percentile(0.999),
                    report.latency.mean(),
                );
                match &baseline {
                    None => baseline = Some(signature),
                    Some(b) => assert_eq!(
                        *b, signature,
                        "fleet results must not depend on shards={shards} workers={workers}"
                    ),
                }
            }
        }
        assert_eq!(baseline.unwrap().1, 0, "no SLOs set, nothing may shed");
    }

    #[test]
    fn occupancy_slo_sheds_and_is_typed() {
        // One tenant hammering its lane at 1/10th of its service time:
        // occupancy ~1.0 from the first window on, so with a 0.5 cap
        // every window after the first sheds.
        let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
            .serial()
            .admission_window(Duration::from_us(100.0))
            .build();
        let mut hog = spec("hog", "hog-lane", Duration::from_us(2.0));
        hog.slo.max_lane_occupancy = Some(0.5);
        let trace = TrafficMix::new(Scale::test())
            .tenant(hog)
            .generate(Duration::from_us(400.0))
            .unwrap();
        let report = fleet.run_trace(&trace).unwrap();
        assert!(report.shed > 0, "a saturating tenant must shed: {report:?}");
        assert!(report.served > 0, "the first window is always admitted");
        assert_eq!(
            report.served + report.shed,
            trace.records.len() as u64,
            "every record is either served or shed"
        );
        for shed in &report.sheds {
            assert_eq!(shed.tenant, "hog");
            assert!(matches!(shed.error, ConduitError::AdmissionRejected { .. }));
        }
        let id = fleet.tenant_id("hog").unwrap();
        assert_eq!(fleet.tenant_shed(id), report.shed);
    }

    #[test]
    fn unconstrained_tenants_never_shed() {
        let trace = single_tenant_trace(Duration::from_us(2.0), Duration::from_us(400.0));
        let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
            .serial()
            .admission_window(Duration::from_us(100.0))
            .build();
        let report = fleet.run_trace(&trace).unwrap();
        assert_eq!(report.shed, 0);
        assert_eq!(report.served, trace.records.len() as u64);
    }

    #[test]
    fn p99_slo_sheds_once_sampled() {
        // Impossible SLO (1 ps): sheds exactly when the sample guard is
        // met at a window boundary.
        let mut tenant = spec("strict", "strict-lane", Duration::from_us(40.0));
        tenant.slo.max_p99 = Some(Duration::from_ps(1));
        let trace = TrafficMix::new(Scale::test())
            .tenant(tenant)
            .generate(Duration::from_us(2000.0))
            .unwrap();
        let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
            .serial()
            .admission_window(Duration::from_us(200.0))
            .min_slo_samples(4)
            .build();
        let report = fleet.run_trace(&trace).unwrap();
        assert!(report.shed > 0, "an impossible p99 SLO must shed");
        assert!(
            report
                .sheds
                .iter()
                .all(|s| matches!(s.error, ConduitError::AdmissionRejected { .. })),
            "{report:?}"
        );
        // The guard keeps the first windows admitted.
        assert!(report.served >= 4, "{report:?}");
    }

    #[test]
    fn rebalance_is_bit_identical_to_staying_put() {
        let gap = Duration::from_us(50.0);
        let horizon = Duration::from_us(1000.0);
        let trace = single_tenant_trace(gap, horizon);

        // Uninterrupted run on one shard.
        let mut stay = small_fleet(1);
        let report_stay = stay.run_trace(&trace).unwrap();

        // Same trace replayed twice with a migration in between: first
        // half on the placement shard, then moved to the other shard.
        let (first, second): (Vec<_>, Vec<_>) = {
            let cut = trace.records.len() / 2;
            (trace.records[..cut].to_vec(), trace.records[cut..].to_vec())
        };
        let mut moved = small_fleet(2);
        let mut half = trace.clone();
        half.records = first;
        let report_a = moved.run_trace(&half).unwrap();
        let id = moved.tenant_id("solo").unwrap();
        let from = moved.tenant_shard(id);
        let to = 1 - from;
        moved.rebalance(id, to).unwrap();
        assert_eq!(moved.tenant_shard(id), to);
        half.records = second;
        let report_b = moved.run_trace(&half).unwrap();

        assert_eq!(report_stay.served, report_a.served + report_b.served);
        let mut merged = LatencyStats::new();
        merged.merge(&report_a.latency);
        merged.merge(&report_b.latency);
        for p in [0.50, 0.99, 0.999] {
            assert_eq!(
                report_stay.latency.percentile(p),
                merged.percentile(p),
                "migration must not change the stream (p{p})"
            );
        }
        assert_eq!(report_stay.latency.mean(), merged.mean());
        // The whole device state moved: the source shard's lane is idle,
        // the target carries the full stream.
        let final_report = moved.run_trace(&{
            let mut empty = trace.clone();
            empty.records = Vec::new();
            empty
        });
        let final_report = final_report.unwrap();
        assert_eq!(final_report.shards[from].lanes.requests, 0);
        assert_eq!(final_report.shards[to].lanes.requests, report_stay.served);
    }

    #[test]
    fn forged_migration_payloads_are_rejected() {
        let mut fleet = small_fleet(2);
        let trace = single_tenant_trace(Duration::from_us(50.0), Duration::from_us(500.0));
        fleet.run_trace(&trace).unwrap();
        let id = fleet.tenant_id("solo").unwrap();
        let served = fleet.tenant_served(id);

        let good = fleet.export_tenant(id).unwrap();
        // Truncation, magic corruption, a forged format version and a
        // forged configuration fingerprint must all reject as
        // CorruptCheckpoint and leave the fleet serving.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let mut bad_fingerprint = good.clone();
        bad_fingerprint[6] ^= 0x01;
        for payload in [
            &good[..good.len() / 2],
            &bad_magic[..],
            &bad_version[..],
            &bad_fingerprint[..],
        ] {
            assert!(matches!(
                fleet.restore_tenant(id, payload),
                Err(ConduitError::CorruptCheckpoint { .. })
            ));
        }
        // The good checkpoint still restores in place.
        fleet.restore_tenant(id, &good).unwrap();
        assert_eq!(fleet.tenant_served(id), served);
    }

    #[test]
    fn degraded_shards_stop_receiving_placements() {
        // An aggressive fault plan with no spares degrades a device after
        // a short burst of writes.
        let faults = FaultConfig {
            seed: 7,
            program_fail_rate: 0.2,
            erase_fail_rate: 0.2,
            spare_blocks: 0,
            ..FaultConfig::default()
        };
        let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
            .shards(2)
            .faults(faults)
            .serial()
            .build();
        // Pick a tenant name that lands on shard 0, then degrade shard 0
        // by hammering its device.
        let victim_name = (0..64)
            .map(|i| format!("victim-{i}"))
            .find(|n| fleet.placement_shard(n) == 0)
            .expect("some name hashes to shard 0");
        let victim = fleet
            .register_tenant(
                &spec(&victim_name, "victim-lane", Duration::from_us(10.0)),
                Scale::test(),
            )
            .unwrap();
        let mut at = SimTime::ZERO;
        for _ in 0..10_000 {
            if fleet.shard_is_degraded(0) {
                break;
            }
            match fleet.submit(victim, at) {
                Ok(_) => {}
                // The run that exhausts the spare budget surfaces the
                // typed degradation error; the health gauge flips with it.
                Err(ConduitError::DeviceDegraded { .. }) => break,
                Err(e) => panic!("unexpected fault-path error: {e}"),
            }
            at += Duration::from_us(10.0);
        }
        assert!(
            fleet.shard_is_degraded(0),
            "fault plan must degrade shard 0"
        );
        // Every new placement must now steer to shard 1, even names whose
        // rendezvous winner is shard 0.
        let mut diverted = 0;
        for i in 0..32 {
            let name = format!("late-{i}");
            let hrw = [0, 1]
                .into_iter()
                .max_by_key(|&s| (hrw_score(fleet.seed, s, &name), usize::MAX - s))
                .unwrap();
            assert_eq!(fleet.placement_shard(&name), 1, "shard 0 is degraded");
            if hrw == 0 {
                diverted += 1;
            }
        }
        assert!(diverted > 0, "the test must exercise actual steering");
    }
}
