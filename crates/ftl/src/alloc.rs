//! NDP-aware physical page allocation.
//!
//! The allocator serves two placement goals that the paper's FTL extension
//! enforces (§4.4 and §5.1):
//!
//! 1. **Striping for parallelism** — consecutive vector slices are spread
//!    across planes (and therefore dies and channels) so multi-plane /
//!    multi-die operations can proceed concurrently.
//! 2. **Co-location for in-flash compute** — the operand pages that an
//!    in-flash operation combines (e.g. the inputs of a Flash-Cosmos
//!    multi-wordline AND) are placed in pages of the *same block*.

use conduit_flash::FlashState;
use conduit_types::bytes::{put_u64, Reader};
use conduit_types::{ConduitError, PhysicalPageAddr, Result};

/// Allocates physical pages from the flash array, maintaining one active
/// (partially-written) block per plane.
///
/// # Examples
///
/// ```
/// use conduit_flash::FlashState;
/// use conduit_ftl::PageAllocator;
/// use conduit_types::SsdConfig;
///
/// let cfg = SsdConfig::small_for_tests();
/// let mut state = FlashState::new(&cfg.flash);
/// let mut alloc = PageAllocator::new(&state);
/// let a = alloc.allocate(&mut state, None)?;
/// let b = alloc.allocate(&mut state, None)?;
/// // Round-robin striping: consecutive allocations land on different planes.
/// assert_ne!((a.channel, a.die, a.plane), (b.channel, b.die, b.plane));
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageAllocator {
    /// Active block (flat block index) per global plane index.
    active_blocks: Vec<Option<u64>>,
    /// Next block to consider when opening a fresh block, per plane.
    next_block_scan: Vec<u64>,
    /// Round-robin cursor over planes for striped allocation.
    next_plane: u64,
    total_planes: u64,
    blocks_per_plane: u64,
    pages_per_block: u64,
}

impl PageAllocator {
    /// Creates an allocator for the given flash array.
    pub fn new(state: &FlashState) -> Self {
        let geo = state.geometry();
        PageAllocator {
            active_blocks: vec![None; geo.total_planes() as usize],
            next_block_scan: vec![0; geo.total_planes() as usize],
            next_plane: 0,
            total_planes: geo.total_planes(),
            blocks_per_plane: geo.blocks_per_plane() as u64,
            pages_per_block: geo.pages_per_block() as u64,
        }
    }

    /// Allocates and programs one physical page.
    ///
    /// If `plane` is `Some`, the page is placed in that global plane;
    /// otherwise planes are used round-robin (striping).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::OutOfSpace`] if the requested plane (or, for
    /// striped allocation, every plane) has no erasable free block left.
    pub fn allocate(
        &mut self,
        state: &mut FlashState,
        plane: Option<u64>,
    ) -> Result<PhysicalPageAddr> {
        let plane = match plane {
            Some(p) => p % self.total_planes,
            None => {
                let p = self.next_plane;
                self.next_plane = (self.next_plane + 1) % self.total_planes;
                p
            }
        };
        self.allocate_in_plane(state, plane)
    }

    /// Allocates and programs `count` pages in the *same block* of one plane
    /// (the co-location constraint for in-flash multi-operand compute).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if `count` exceeds the block
    /// size and [`ConduitError::OutOfSpace`] if no block with enough free
    /// pages can be found.
    pub fn allocate_group(
        &mut self,
        state: &mut FlashState,
        count: usize,
        plane: Option<u64>,
    ) -> Result<Vec<PhysicalPageAddr>> {
        if count as u64 > self.pages_per_block {
            return Err(ConduitError::invalid_config(format!(
                "operand group of {count} pages exceeds block size {}",
                self.pages_per_block
            )));
        }
        let plane = match plane {
            Some(p) => p % self.total_planes,
            None => {
                let p = self.next_plane;
                self.next_plane = (self.next_plane + 1) % self.total_planes;
                p
            }
        };
        // Make sure the active block has room for the whole group; if not,
        // retire it and open a fresh one so the group stays co-located.
        if let Some(block) = self.active_blocks[plane as usize] {
            let free = state.block_by_index(block).next_free_page();
            let room = match free {
                Some(next) => self.pages_per_block - next as u64,
                None => 0,
            };
            if room < count as u64 {
                self.active_blocks[plane as usize] = None;
            }
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.allocate_in_plane(state, plane)?);
        }
        debug_assert!(out.windows(2).all(|w| w[0].same_block(w[1])));
        Ok(out)
    }

    /// Appends the allocator's cursor state (active block and scan cursor
    /// per plane, the striping cursor) to `out`. The geometry-derived totals
    /// are not stored.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.active_blocks.len() as u64);
        for active in &self.active_blocks {
            match active {
                Some(block) => {
                    out.push(1);
                    put_u64(out, *block);
                }
                None => out.push(0),
            }
        }
        for scan in &self.next_block_scan {
            put_u64(out, *scan);
        }
        put_u64(out, self.next_plane);
    }

    /// Decodes an allocator serialized by [`PageAllocator::encode_into`]
    /// against the given flash array.
    pub(crate) fn decode_from(state: &FlashState, r: &mut Reader<'_>) -> Result<Self> {
        let mut alloc = PageAllocator::new(state);
        let planes = r.u64()?;
        if planes != alloc.total_planes {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "allocator checkpoint has {planes} planes but the geometry has {}",
                alloc.total_planes
            )));
        }
        let total_blocks = state.geometry().total_blocks();
        for (plane, active) in alloc.active_blocks.iter_mut().enumerate() {
            *active = match r.u8()? {
                0 => None,
                1 => {
                    let block = r.u64()?;
                    // In range *and* belonging to this slot's plane —
                    // an in-range block from another plane would silently
                    // break the plane-placement contract.
                    if block >= total_blocks || block / alloc.blocks_per_plane != plane as u64 {
                        return Err(ConduitError::corrupt_checkpoint(
                            "active block outside its plane",
                        ));
                    }
                    Some(block)
                }
                flag => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown active-block flag {flag}"
                    )))
                }
            };
        }
        for scan in &mut alloc.next_block_scan {
            let cursor = r.u64()?;
            if cursor >= alloc.blocks_per_plane {
                return Err(ConduitError::corrupt_checkpoint(
                    "block-scan cursor beyond the plane",
                ));
            }
            *scan = cursor;
        }
        let next_plane = r.u64()?;
        if next_plane >= alloc.total_planes {
            return Err(ConduitError::corrupt_checkpoint(
                "striping cursor beyond the plane count",
            ));
        }
        alloc.next_plane = next_plane;
        Ok(alloc)
    }

    fn allocate_in_plane(
        &mut self,
        state: &mut FlashState,
        plane: u64,
    ) -> Result<PhysicalPageAddr> {
        let block = match self.active_blocks[plane as usize] {
            Some(b) if state.block_by_index(b).next_free_page().is_some() => b,
            _ => {
                let b = self.open_block(state, plane)?;
                self.active_blocks[plane as usize] = Some(b);
                b
            }
        };
        let page = state
            .block_by_index(block)
            .next_free_page()
            .expect("active block has a free page");
        let addr = self.page_addr(state, block, page);
        state.program(addr)?;
        Ok(addr)
    }

    /// Finds a completely free, non-bad block in `plane`.
    fn open_block(&mut self, state: &FlashState, plane: u64) -> Result<u64> {
        let first_block = plane * self.blocks_per_plane;
        let start = self.next_block_scan[plane as usize];
        for i in 0..self.blocks_per_plane {
            let offset = (start + i) % self.blocks_per_plane;
            let block = first_block + offset;
            let info = state.block_by_index(block);
            if !info.is_bad() && info.next_free_page() == Some(0) {
                self.next_block_scan[plane as usize] = (offset + 1) % self.blocks_per_plane;
                return Ok(block);
            }
        }
        Err(ConduitError::OutOfSpace)
    }

    fn page_addr(&self, state: &FlashState, block: u64, page: u32) -> PhysicalPageAddr {
        let geo = state.geometry();
        let flat = block * self.pages_per_block + page as u64;
        geo.addr_of(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn setup() -> (FlashState, PageAllocator) {
        let cfg = SsdConfig::small_for_tests();
        let state = FlashState::new(&cfg.flash);
        let alloc = PageAllocator::new(&state);
        (state, alloc)
    }

    #[test]
    fn striped_allocation_covers_all_planes() {
        let (mut state, mut alloc) = setup();
        let planes = state.geometry().total_planes();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..planes {
            let addr = alloc.allocate(&mut state, None).unwrap();
            seen.insert(state.geometry().plane_index_of(addr));
        }
        assert_eq!(seen.len() as u64, planes);
    }

    #[test]
    fn group_allocation_is_same_block() {
        let (mut state, mut alloc) = setup();
        let group = alloc.allocate_group(&mut state, 8, Some(3)).unwrap();
        assert_eq!(group.len(), 8);
        assert!(group.iter().all(|a| a.same_block(group[0])));
        assert_eq!(state.geometry().plane_index_of(group[0]), 3);
    }

    #[test]
    fn group_never_splits_across_blocks() {
        let (mut state, mut alloc) = setup();
        let pages_per_block = state.geometry().pages_per_block() as usize;
        // Nearly fill a block, then ask for a group that would not fit.
        alloc
            .allocate_group(&mut state, pages_per_block - 2, Some(0))
            .unwrap();
        let group = alloc.allocate_group(&mut state, 4, Some(0)).unwrap();
        assert!(group.iter().all(|a| a.same_block(group[0])));
    }

    #[test]
    fn oversized_group_is_rejected() {
        let (mut state, mut alloc) = setup();
        let pages_per_block = state.geometry().pages_per_block() as usize;
        assert!(alloc
            .allocate_group(&mut state, pages_per_block + 1, Some(0))
            .is_err());
    }

    #[test]
    fn allocation_exhausts_to_out_of_space() {
        let cfg = {
            let mut c = SsdConfig::small_for_tests();
            c.flash.channels = 1;
            c.flash.dies_per_channel = 1;
            c.flash.planes_per_die = 1;
            c.flash.blocks_per_plane = 2;
            c.flash.pages_per_block = 4;
            c
        };
        let mut state = FlashState::new(&cfg.flash);
        let mut alloc = PageAllocator::new(&state);
        for _ in 0..8 {
            alloc.allocate(&mut state, Some(0)).unwrap();
        }
        assert!(matches!(
            alloc.allocate(&mut state, Some(0)),
            Err(ConduitError::OutOfSpace)
        ));
    }

    #[test]
    fn bad_blocks_are_skipped() {
        let cfg = {
            let mut c = SsdConfig::small_for_tests();
            c.flash.channels = 1;
            c.flash.dies_per_channel = 1;
            c.flash.planes_per_die = 1;
            c.flash.blocks_per_plane = 2;
            c.flash.pages_per_block = 4;
            c
        };
        let mut state = FlashState::new(&cfg.flash);
        let mut alloc = PageAllocator::new(&state);
        state.mark_bad(0);
        let addr = alloc.allocate(&mut state, Some(0)).unwrap();
        assert_eq!(addr.block, 1);
    }

    #[test]
    fn sequential_pages_within_a_block_are_in_order() {
        let (mut state, mut alloc) = setup();
        let group = alloc.allocate_group(&mut state, 4, Some(1)).unwrap();
        let pages: Vec<u16> = group.iter().map(|a| a.page).collect();
        assert_eq!(pages, vec![0, 1, 2, 3]);
    }
}
