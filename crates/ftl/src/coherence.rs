//! Lazy coherence between SSD compute resources (§4.4 of the paper).
//!
//! Conduit lets each compute resource keep the pages it has modified local
//! (in DRAM rows, page buffers, or controller SRAM) and synchronizes to
//! flash *only* when another resource or the host requests the page, when a
//! temporary location must be reused, or when maintenance (GC, power cycle)
//! requires it. The directory tracks, per logical page: the **owner** (which
//! resource holds the latest version), the **state** (clean/dirty) and a
//! one-byte monotonically increasing **version** counter.

use std::collections::HashMap;

use conduit_types::bytes::{put_u64, Reader};
use conduit_types::{ConduitError, DataLocation, LogicalPageId, Result};

/// One-byte wire encoding of a [`DataLocation`] (checkpoint format).
fn location_code(loc: DataLocation) -> u8 {
    match loc {
        DataLocation::Flash => 0,
        DataLocation::Dram => 1,
        DataLocation::CtrlSram => 2,
        DataLocation::Host => 3,
    }
}

fn location_from_code(code: u8) -> Result<DataLocation> {
    Ok(match code {
        0 => DataLocation::Flash,
        1 => DataLocation::Dram,
        2 => DataLocation::CtrlSram,
        3 => DataLocation::Host,
        _ => {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "unknown data-location code {code}"
            )))
        }
    })
}

/// Modification state of a logical page with respect to flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceState {
    /// The flash copy is up to date.
    #[default]
    Clean,
    /// The owner holds a newer version than flash.
    Dirty,
}

/// The synchronization work the device must perform as a side effect of a
/// coherence transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncAction {
    /// No data movement is needed.
    None,
    /// The owner's dirty copy must be committed (programmed) to flash.
    FlushToFlash {
        /// The resource that currently holds the dirty copy.
        from: DataLocation,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    owner: DataLocation,
    state: CoherenceState,
    version: u8,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            owner: DataLocation::Flash,
            state: CoherenceState::Clean,
            version: 0,
        }
    }
}

/// Per-logical-page coherence directory.
///
/// # Examples
///
/// ```
/// use conduit_ftl::{CoherenceDirectory, SyncAction};
/// use conduit_types::{DataLocation, LogicalPageId};
///
/// let mut dir = CoherenceDirectory::new();
/// let page = LogicalPageId::new(7);
/// // A PuD-SSD computation writes the page: it becomes dirty in DRAM.
/// assert_eq!(dir.record_write(page, DataLocation::Dram), SyncAction::None);
/// // The flash (IFP) later needs it: the DRAM copy must be flushed first.
/// assert!(matches!(
///     dir.acquire(page, DataLocation::Flash),
///     SyncAction::FlushToFlash { from: DataLocation::Dram }
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoherenceDirectory {
    entries: HashMap<LogicalPageId, Entry>,
    flushes: u64,
    writes: u64,
}

impl CoherenceDirectory {
    /// Creates an empty directory (every page implicitly clean in flash).
    pub fn new() -> Self {
        CoherenceDirectory::default()
    }

    /// The resource holding the latest version of `page`.
    pub fn owner(&self, page: LogicalPageId) -> DataLocation {
        self.entries
            .get(&page)
            .map_or(DataLocation::Flash, |e| e.owner)
    }

    /// The clean/dirty state of `page`.
    pub fn state(&self, page: LogicalPageId) -> CoherenceState {
        self.entries
            .get(&page)
            .map_or(CoherenceState::Clean, |e| e.state)
    }

    /// The version counter of `page`.
    pub fn version(&self, page: LogicalPageId) -> u8 {
        self.entries.get(&page).map_or(0, |e| e.version)
    }

    /// Records that a compute resource at `writer` produced a new version of
    /// `page`. Returns the synchronization (if any) that must happen *before*
    /// the write is considered recorded — a flush is required when a
    /// different resource still holds a dirty copy, or when the version
    /// counter would wrap.
    pub fn record_write(&mut self, page: LogicalPageId, writer: DataLocation) -> SyncAction {
        self.writes += 1;
        let entry = self.entries.entry(page).or_default();
        let action = if (entry.state == CoherenceState::Dirty && entry.owner != writer)
            || entry.version == u8::MAX
        {
            SyncAction::FlushToFlash { from: entry.owner }
        } else {
            SyncAction::None
        };
        if matches!(action, SyncAction::FlushToFlash { .. }) {
            self.flushes += 1;
            entry.version = 0;
        }
        entry.owner = writer;
        entry.state = CoherenceState::Dirty;
        entry.version = entry.version.wrapping_add(1);
        action
    }

    /// Records that `requester` (a compute resource or the host, expressed as
    /// its data location) needs to read `page`. If another resource holds a
    /// dirty copy it must be flushed to flash first; the page then becomes
    /// clean with flash as the owner.
    pub fn acquire(&mut self, page: LogicalPageId, requester: DataLocation) -> SyncAction {
        let entry = self.entries.entry(page).or_default();
        if entry.state == CoherenceState::Dirty && entry.owner != requester {
            let from = entry.owner;
            entry.owner = DataLocation::Flash;
            entry.state = CoherenceState::Clean;
            entry.version = 0;
            self.flushes += 1;
            SyncAction::FlushToFlash { from }
        } else {
            SyncAction::None
        }
    }

    /// Forces `page` to be committed to flash (e.g. on a power cycle or
    /// before garbage collection relocates it). Returns the required
    /// synchronization.
    pub fn flush(&mut self, page: LogicalPageId) -> SyncAction {
        self.acquire(page, DataLocation::Flash)
    }

    /// Forces every dirty page to flash, returning the number of flushes.
    pub fn flush_all(&mut self) -> u64 {
        let dirty: Vec<LogicalPageId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.state == CoherenceState::Dirty)
            .map(|(&p, _)| p)
            .collect();
        let count = dirty.len() as u64;
        for page in dirty {
            self.flush(page);
        }
        count
    }

    /// Number of pages currently dirty.
    pub fn dirty_pages(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == CoherenceState::Dirty)
            .count()
    }

    /// Total writes recorded and flushes performed: `(writes, flushes)`.
    pub fn traffic(&self) -> (u64, u64) {
        (self.writes, self.flushes)
    }

    /// Appends the directory's state (entries sorted by logical page for a
    /// deterministic encoding, plus the traffic counters) to `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<(&LogicalPageId, &Entry)> = self.entries.iter().collect();
        entries.sort_by_key(|(p, _)| **p);
        put_u64(out, entries.len() as u64);
        for (page, entry) in entries {
            put_u64(out, page.index());
            out.push(location_code(entry.owner));
            out.push(match entry.state {
                CoherenceState::Clean => 0,
                CoherenceState::Dirty => 1,
            });
            out.push(entry.version);
        }
        put_u64(out, self.writes);
        put_u64(out, self.flushes);
    }

    /// Decodes a directory serialized by
    /// [`CoherenceDirectory::encode_into`].
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let mut dir = CoherenceDirectory::new();
        let count = r.u64()? as usize;
        for _ in 0..count {
            let page = LogicalPageId::new(r.u64()?);
            let owner = location_from_code(r.u8()?)?;
            let state = match r.u8()? {
                0 => CoherenceState::Clean,
                1 => CoherenceState::Dirty,
                code => {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "unknown coherence-state code {code}"
                    )))
                }
            };
            let version = r.u8()?;
            if dir
                .entries
                .insert(
                    page,
                    Entry {
                        owner,
                        state,
                        version,
                    },
                )
                .is_some()
            {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "duplicate coherence entry for page {page}"
                )));
            }
        }
        dir.writes = r.counter()?;
        dir.flushes = r.counter()?;
        Ok(dir)
    }

    /// The coherence metadata footprint in SSD DRAM: owner (4 bits), state
    /// (1 bit) and version (1 byte) per tracked page, rounded up to two bytes
    /// per entry as in §4.5.
    pub fn metadata_bytes(&self) -> u64 {
        self.entries.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: LogicalPageId = LogicalPageId::new(42);

    #[test]
    fn default_state_is_clean_in_flash() {
        let dir = CoherenceDirectory::new();
        assert_eq!(dir.owner(PAGE), DataLocation::Flash);
        assert_eq!(dir.state(PAGE), CoherenceState::Clean);
        assert_eq!(dir.version(PAGE), 0);
        assert_eq!(dir.dirty_pages(), 0);
    }

    #[test]
    fn write_makes_page_dirty_and_bumps_version() {
        let mut dir = CoherenceDirectory::new();
        assert_eq!(dir.record_write(PAGE, DataLocation::Dram), SyncAction::None);
        assert_eq!(dir.owner(PAGE), DataLocation::Dram);
        assert_eq!(dir.state(PAGE), CoherenceState::Dirty);
        assert_eq!(dir.version(PAGE), 1);

        // Repeated writes by the same owner only bump the version.
        assert_eq!(dir.record_write(PAGE, DataLocation::Dram), SyncAction::None);
        assert_eq!(dir.version(PAGE), 2);
        assert_eq!(dir.dirty_pages(), 1);
    }

    #[test]
    fn cross_resource_write_flushes_first() {
        let mut dir = CoherenceDirectory::new();
        dir.record_write(PAGE, DataLocation::Dram);
        let action = dir.record_write(PAGE, DataLocation::CtrlSram);
        assert_eq!(
            action,
            SyncAction::FlushToFlash {
                from: DataLocation::Dram
            }
        );
        assert_eq!(dir.owner(PAGE), DataLocation::CtrlSram);
        assert_eq!(dir.version(PAGE), 1);
    }

    #[test]
    fn acquire_by_other_resource_flushes() {
        let mut dir = CoherenceDirectory::new();
        dir.record_write(PAGE, DataLocation::Dram);
        let action = dir.acquire(PAGE, DataLocation::Flash);
        assert!(matches!(action, SyncAction::FlushToFlash { .. }));
        assert_eq!(dir.owner(PAGE), DataLocation::Flash);
        assert_eq!(dir.state(PAGE), CoherenceState::Clean);
        // Re-acquiring is now free.
        assert_eq!(dir.acquire(PAGE, DataLocation::CtrlSram), SyncAction::None);
    }

    #[test]
    fn acquire_by_owner_is_free() {
        let mut dir = CoherenceDirectory::new();
        dir.record_write(PAGE, DataLocation::Dram);
        assert_eq!(dir.acquire(PAGE, DataLocation::Dram), SyncAction::None);
        assert_eq!(dir.state(PAGE), CoherenceState::Dirty);
    }

    #[test]
    fn version_wraparound_forces_flush() {
        let mut dir = CoherenceDirectory::new();
        let mut flushes = 0;
        for _ in 0..300 {
            if matches!(
                dir.record_write(PAGE, DataLocation::Dram),
                SyncAction::FlushToFlash { .. }
            ) {
                flushes += 1;
            }
        }
        assert!(flushes >= 1, "version counter must wrap and force a flush");
        assert!(dir.version(PAGE) > 0);
    }

    #[test]
    fn flush_all_cleans_everything() {
        let mut dir = CoherenceDirectory::new();
        for i in 0..10 {
            dir.record_write(LogicalPageId::new(i), DataLocation::Dram);
        }
        assert_eq!(dir.dirty_pages(), 10);
        assert_eq!(dir.flush_all(), 10);
        assert_eq!(dir.dirty_pages(), 0);
        let (writes, flushes) = dir.traffic();
        assert_eq!(writes, 10);
        assert_eq!(flushes, 10);
    }

    #[test]
    fn metadata_overhead_is_two_bytes_per_tracked_page() {
        let mut dir = CoherenceDirectory::new();
        for i in 0..100 {
            dir.record_write(LogicalPageId::new(i), DataLocation::Dram);
        }
        assert_eq!(dir.metadata_bytes(), 200);
    }
}
