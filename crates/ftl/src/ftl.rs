//! The flash translation layer facade.
//!
//! [`Ftl`] combines address translation, NDP-aware allocation, garbage
//! collection, wear-leveling, and the lazy coherence directory behind one
//! interface that the device model in `conduit-sim` drives. All methods are
//! bookkeeping only; the returned structures tell the simulator how much
//! physical work (page reads/programs, erases) to charge.

use std::collections::HashMap;

use conduit_flash::FlashState;
use conduit_types::{ConduitError, LogicalPageId, PhysicalPageAddr, Result, SsdConfig};

use crate::alloc::PageAllocator;
use crate::coherence::CoherenceDirectory;
use crate::gc::{GarbageCollector, GcWork};
use crate::l2p::{L2pTable, LookupKind};
use crate::wear::{WearLeveler, WearReport};

/// Cumulative FTL activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Logical pages mapped for the first time (initial data placement).
    pub pages_mapped: u64,
    /// Out-of-place logical page rewrites.
    pub rewrites: u64,
    /// Valid pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// L2P mapping-cache hits.
    pub l2p_hits: u64,
    /// L2P mapping-cache misses.
    pub l2p_misses: u64,
}

/// The flash translation layer.
///
/// # Examples
///
/// ```
/// use conduit_ftl::Ftl;
/// use conduit_types::{LogicalPageId, SsdConfig};
///
/// let mut ftl = Ftl::new(&SsdConfig::small_for_tests())?;
/// let pages = [LogicalPageId::new(0), LogicalPageId::new(1)];
/// ftl.map_group(&pages, Some(0))?;
/// let (a, _) = ftl.translate(pages[0])?;
/// let (b, _) = ftl.translate(pages[1])?;
/// assert!(a.same_block(b));
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    state: FlashState,
    l2p: L2pTable,
    alloc: PageAllocator,
    coherence: CoherenceDirectory,
    gc: GarbageCollector,
    wear: WearLeveler,
    reverse: HashMap<u64, LogicalPageId>,
    logical_pages: u64,
    stats: FtlStats,
}

impl Ftl {
    /// Builds an FTL for the configured SSD with an empty mapping.
    ///
    /// A quarter of the SSD DRAM is budgeted for the DFTL mapping cache at
    /// eight bytes per entry.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if the geometry is degenerate
    /// (no pages).
    pub fn new(cfg: &SsdConfig) -> Result<Self> {
        let state = FlashState::new(&cfg.flash);
        if state.geometry().total_pages() == 0 {
            return Err(ConduitError::invalid_config("flash geometry has no pages"));
        }
        let cache_entries = (cfg.dram.capacity_bytes / 4 / 8).max(1024) as usize;
        let alloc = PageAllocator::new(&state);
        Ok(Ftl {
            alloc,
            l2p: L2pTable::new(cache_entries),
            coherence: CoherenceDirectory::new(),
            gc: GarbageCollector::new(0.0625),
            wear: WearLeveler::new(64),
            reverse: HashMap::new(),
            logical_pages: cfg.logical_pages(),
            state,
            stats: FtlStats::default(),
        })
    }

    /// The flash array state (page validity, wear, bad blocks).
    pub fn flash_state(&self) -> &FlashState {
        &self.state
    }

    /// The coherence directory.
    pub fn coherence(&self) -> &CoherenceDirectory {
        &self.coherence
    }

    /// Mutable access to the coherence directory.
    pub fn coherence_mut(&mut self) -> &mut CoherenceDirectory {
        &mut self.coherence
    }

    /// The garbage-collection policy (read-only: invocation counters and
    /// thresholds).
    pub fn gc(&self) -> &GarbageCollector {
        &self.gc
    }

    /// The wear-leveling policy (read-only: scheduled-swap counters).
    pub fn wear(&self) -> &WearLeveler {
        &self.wear
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> FtlStats {
        let mut s = self.stats;
        let (hits, misses) = self.l2p.cache_stats();
        s.l2p_hits = hits;
        s.l2p_misses = misses;
        s
    }

    /// Number of logical pages the device exposes.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Fraction of physical pages currently free.
    pub fn free_fraction(&self) -> f64 {
        let (free, valid, invalid) = self.state.page_totals();
        free as f64 / (free + valid + invalid) as f64
    }

    /// Current wear report.
    pub fn wear_report(&self) -> WearReport {
        self.wear.report(&self.state)
    }

    /// Whether `page` is inside the device's logical address space.
    fn check_range(&self, page: LogicalPageId) -> Result<()> {
        if page.index() >= self.logical_pages {
            return Err(ConduitError::PageOutOfRange {
                page,
                capacity_pages: self.logical_pages,
            });
        }
        Ok(())
    }

    /// Maps (initially places) logical pages with plane striping. Pages that
    /// are already mapped are left untouched.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn map_pages(&mut self, pages: &[LogicalPageId], plane_hint: Option<u64>) -> Result<()> {
        for (i, &page) in pages.iter().enumerate() {
            self.check_range(page)?;
            if self.l2p.contains(page) {
                continue;
            }
            let plane = plane_hint.map(|p| p + i as u64);
            let addr = self.alloc.allocate(&mut self.state, plane)?;
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    /// Maps a group of logical pages **co-located in the same block** (the
    /// Flash-Cosmos layout constraint for multi-operand in-flash compute).
    /// Pages already mapped elsewhere keep their existing mapping.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn map_group(&mut self, pages: &[LogicalPageId], plane: Option<u64>) -> Result<()> {
        let unmapped: Vec<LogicalPageId> = pages
            .iter()
            .copied()
            .filter(|p| !self.l2p.contains(*p))
            .collect();
        for &page in &unmapped {
            self.check_range(page)?;
        }
        if unmapped.is_empty() {
            return Ok(());
        }
        let addrs = self
            .alloc
            .allocate_group(&mut self.state, unmapped.len(), plane)?;
        for (page, addr) in unmapped.into_iter().zip(addrs) {
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    fn install_mapping(&mut self, page: LogicalPageId, addr: PhysicalPageAddr) {
        let flat = self.state.geometry().index_of(addr);
        if let Some(prev) = self.l2p.update(page, addr) {
            let prev_flat = self.state.geometry().index_of(prev);
            self.reverse.remove(&prev_flat);
            // Ignore errors: the previous page may already be invalid.
            let _ = self.state.invalidate(prev);
        }
        self.reverse.insert(flat, page);
        self.stats.pages_mapped += 1;
    }

    /// Translates a logical page, reporting whether the mapping entry was in
    /// the DFTL cache (`true`) or had to be fetched from flash (`false`).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnmappedPage`] for pages never written and
    /// range errors for pages beyond the device capacity.
    pub fn translate(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, bool)> {
        self.check_range(page)?;
        let (addr, kind) = self.l2p.lookup(page)?;
        Ok((addr, kind == LookupKind::CacheHit))
    }

    /// Looks up a mapping without touching cache statistics.
    pub fn peek(&self, page: LogicalPageId) -> Option<PhysicalPageAddr> {
        self.l2p.peek(page)
    }

    /// Performs an out-of-place rewrite of `page` (the flash commit of a
    /// dirty result page): the old physical page is invalidated, a fresh one
    /// is programmed, and garbage collection runs if the free pool is low.
    ///
    /// Returns the new physical address and any garbage-collection work that
    /// was triggered.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn rewrite(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, GcWork)> {
        self.check_range(page)?;
        let addr = self.alloc.allocate(&mut self.state, None)?;
        self.install_mapping(page, addr);
        self.stats.rewrites += 1;
        let gc = self.maybe_gc()?;
        Ok((addr, gc))
    }

    /// Runs garbage collection if the free-page pool is below the threshold.
    /// Repeats until the pool is healthy again or no victim is available.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors encountered while relocating valid pages.
    pub fn maybe_gc(&mut self) -> Result<GcWork> {
        let mut work = GcWork::default();
        while self.gc.should_run(&self.state) {
            let Some(victim) = self.gc.select_victim(&self.state) else {
                break;
            };
            work.merge(self.collect_block(victim)?);
        }
        if work.erased_blocks > 0 {
            self.stats.gc_relocations += work.relocated_pages;
            self.stats.gc_erases += work.erased_blocks;
            // Wear-leveling decision piggybacks on GC activity.
            let _ = self.wear.needs_leveling(&self.state);
        }
        Ok(work)
    }

    /// Relocates the valid pages of `victim` and erases it.
    fn collect_block(&mut self, victim: u64) -> Result<GcWork> {
        let geo = self.state.geometry().clone();
        let pages_per_block = geo.pages_per_block() as u64;
        let first = victim * pages_per_block;
        let mut relocated = 0;
        for flat in first..first + pages_per_block {
            let addr = geo.addr_of(flat);
            if self.state.page_state(addr) == conduit_flash::PageState::Valid {
                let Some(&lpid) = self.reverse.get(&flat) else {
                    // A valid page with no logical owner (should not happen);
                    // drop it so the erase can proceed.
                    self.state.invalidate(addr)?;
                    continue;
                };
                let new_addr = self.alloc.allocate(&mut self.state, None)?;
                self.install_mapping(lpid, new_addr);
                relocated += 1;
            }
        }
        self.state.erase_block(victim)?;
        Ok(GcWork {
            relocated_pages: relocated,
            erased_blocks: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::DataLocation;

    fn ftl() -> Ftl {
        Ftl::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn pages(range: std::ops::Range<u64>) -> Vec<LogicalPageId> {
        range.map(LogicalPageId::new).collect()
    }

    #[test]
    fn unmapped_page_translation_fails() {
        let mut f = ftl();
        assert!(matches!(
            f.translate(LogicalPageId::new(0)),
            Err(ConduitError::UnmappedPage { .. })
        ));
    }

    #[test]
    fn out_of_range_page_is_rejected() {
        let mut f = ftl();
        let too_big = LogicalPageId::new(f.logical_pages());
        assert!(matches!(
            f.map_pages(&[too_big], None),
            Err(ConduitError::PageOutOfRange { .. })
        ));
        assert!(f.translate(too_big).is_err());
    }

    #[test]
    fn map_and_translate_roundtrip() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        for p in &ps {
            let (addr, _) = f.translate(*p).unwrap();
            assert_eq!(f.peek(*p), Some(addr));
        }
        assert_eq!(f.stats().pages_mapped, 8);
    }

    #[test]
    fn striped_mapping_spreads_planes() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        let planes: std::collections::HashSet<u64> = ps
            .iter()
            .map(|p| {
                let addr = f.peek(*p).unwrap();
                f.flash_state().geometry().plane_index_of(addr)
            })
            .collect();
        assert_eq!(planes.len(), 8);
    }

    #[test]
    fn group_mapping_colocates_in_one_block() {
        let mut f = ftl();
        let ps = pages(10..14);
        f.map_group(&ps, Some(1)).unwrap();
        let addrs: Vec<PhysicalPageAddr> = ps.iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(addrs.iter().all(|a| a.same_block(addrs[0])));
    }

    #[test]
    fn group_mapping_respects_existing_mappings() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let before = f.peek(LogicalPageId::new(0)).unwrap();
        f.map_group(&pages(0..4), Some(2)).unwrap();
        assert_eq!(f.peek(LogicalPageId::new(0)), Some(before));
        // The remaining three are still co-located with each other.
        let rest: Vec<PhysicalPageAddr> = pages(1..4).iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(rest.iter().all(|a| a.same_block(rest[0])));
    }

    #[test]
    fn rewrite_moves_the_page_and_invalidates_the_old_one() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let old = f.peek(LogicalPageId::new(0)).unwrap();
        let (new, _) = f.rewrite(LogicalPageId::new(0)).unwrap();
        assert_ne!(old, new);
        assert_eq!(
            f.flash_state().page_state(old),
            conduit_flash::PageState::Invalid
        );
        assert_eq!(f.stats().rewrites, 1);
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        // Tiny device so rewrites quickly exhaust free pages.
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 8;
        cfg.flash.pages_per_block = 8;
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        let mut total_gc = GcWork::default();
        for _ in 0..200 {
            let (_, gc) = f.rewrite(LogicalPageId::new(3)).unwrap();
            total_gc.merge(gc);
        }
        assert!(total_gc.erased_blocks > 0, "GC must have run");
        assert!(f.free_fraction() > 0.0);
        assert!(f.stats().gc_erases > 0);
        // All logical pages remain translatable after GC moved things around.
        for p in pages(0..8) {
            f.translate(p).unwrap();
        }
    }

    #[test]
    fn coherence_directory_is_reachable() {
        let mut f = ftl();
        f.coherence_mut()
            .record_write(LogicalPageId::new(0), DataLocation::Dram);
        assert_eq!(f.coherence().dirty_pages(), 1);
    }

    #[test]
    fn l2p_cache_stats_flow_into_ftl_stats() {
        let mut f = ftl();
        f.map_pages(&pages(0..4), None).unwrap();
        for _ in 0..3 {
            f.translate(LogicalPageId::new(0)).unwrap();
        }
        let stats = f.stats();
        assert!(stats.l2p_hits >= 3);
    }
}
