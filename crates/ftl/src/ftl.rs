//! The flash translation layer facade.
//!
//! [`Ftl`] combines address translation, NDP-aware allocation, garbage
//! collection, wear-leveling, and the lazy coherence directory behind one
//! interface that the device model in `conduit-sim` drives. All methods are
//! bookkeeping only; the returned structures tell the simulator how much
//! physical work (page reads/programs, erases) to charge.

use std::collections::HashMap;

use conduit_flash::FlashState;
use conduit_types::bytes::{put_u64, Reader};
use conduit_types::{ConduitError, LogicalPageId, PhysicalPageAddr, Result, SsdConfig};

use crate::alloc::PageAllocator;
use crate::coherence::CoherenceDirectory;
use crate::gc::{GarbageCollector, GcWork};
use crate::l2p::{L2pTable, LookupKind};
use crate::wear::{WearLeveler, WearReport};

/// Cumulative FTL activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Logical pages mapped for the first time (initial data placement).
    pub pages_mapped: u64,
    /// Out-of-place logical page rewrites.
    pub rewrites: u64,
    /// Valid pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Valid pages migrated out of cold blocks by the wear leveler (the
    /// physical work behind each scheduled swap).
    pub wear_relocations: u64,
    /// L2P mapping-cache hits.
    pub l2p_hits: u64,
    /// L2P mapping-cache misses.
    pub l2p_misses: u64,
}

/// The flash translation layer.
///
/// # Examples
///
/// ```
/// use conduit_ftl::Ftl;
/// use conduit_types::{LogicalPageId, SsdConfig};
///
/// let mut ftl = Ftl::new(&SsdConfig::small_for_tests())?;
/// let pages = [LogicalPageId::new(0), LogicalPageId::new(1)];
/// ftl.map_group(&pages, Some(0))?;
/// let (a, _) = ftl.translate(pages[0])?;
/// let (b, _) = ftl.translate(pages[1])?;
/// assert!(a.same_block(b));
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ftl {
    state: FlashState,
    l2p: L2pTable,
    alloc: PageAllocator,
    coherence: CoherenceDirectory,
    gc: GarbageCollector,
    wear: WearLeveler,
    reverse: HashMap<u64, LogicalPageId>,
    logical_pages: u64,
    stats: FtlStats,
}

impl Ftl {
    /// Builds an FTL for the configured SSD with an empty mapping.
    ///
    /// A quarter of the SSD DRAM is budgeted for the DFTL mapping cache at
    /// eight bytes per entry.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if the geometry is degenerate
    /// (no pages).
    pub fn new(cfg: &SsdConfig) -> Result<Self> {
        let state = FlashState::new(&cfg.flash);
        if state.geometry().total_pages() == 0 {
            return Err(ConduitError::invalid_config("flash geometry has no pages"));
        }
        let cache_entries = (cfg.dram.capacity_bytes / 4 / 8).max(1024) as usize;
        let alloc = PageAllocator::new(&state);
        Ok(Ftl {
            alloc,
            l2p: L2pTable::new(cache_entries),
            coherence: CoherenceDirectory::new(),
            gc: GarbageCollector::new(0.0625),
            wear: WearLeveler::new(64),
            reverse: HashMap::new(),
            logical_pages: cfg.logical_pages(),
            state,
            stats: FtlStats::default(),
        })
    }

    /// The flash array state (page validity, wear, bad blocks).
    pub fn flash_state(&self) -> &FlashState {
        &self.state
    }

    /// The coherence directory.
    pub fn coherence(&self) -> &CoherenceDirectory {
        &self.coherence
    }

    /// Mutable access to the coherence directory.
    pub fn coherence_mut(&mut self) -> &mut CoherenceDirectory {
        &mut self.coherence
    }

    /// The garbage-collection policy (read-only: invocation counters and
    /// thresholds).
    pub fn gc(&self) -> &GarbageCollector {
        &self.gc
    }

    /// The wear-leveling policy (read-only: scheduled-swap counters).
    pub fn wear(&self) -> &WearLeveler {
        &self.wear
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> FtlStats {
        let mut s = self.stats;
        let (hits, misses) = self.l2p.cache_stats();
        s.l2p_hits = hits;
        s.l2p_misses = misses;
        s
    }

    /// Number of logical pages the device exposes.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Fraction of physical pages currently free.
    pub fn free_fraction(&self) -> f64 {
        let (free, valid, invalid) = self.state.page_totals();
        free as f64 / (free + valid + invalid) as f64
    }

    /// Current wear report.
    pub fn wear_report(&self) -> WearReport {
        self.wear.report(&self.state)
    }

    /// Whether `page` is inside the device's logical address space.
    fn check_range(&self, page: LogicalPageId) -> Result<()> {
        if page.index() >= self.logical_pages {
            return Err(ConduitError::PageOutOfRange {
                page,
                capacity_pages: self.logical_pages,
            });
        }
        Ok(())
    }

    /// Maps (initially places) logical pages with plane striping. Pages that
    /// are already mapped are left untouched.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn map_pages(&mut self, pages: &[LogicalPageId], plane_hint: Option<u64>) -> Result<()> {
        for (i, &page) in pages.iter().enumerate() {
            self.check_range(page)?;
            if self.l2p.contains(page) {
                continue;
            }
            let plane = plane_hint.map(|p| p + i as u64);
            let addr = self.alloc.allocate(&mut self.state, plane)?;
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    /// Maps a group of logical pages **co-located in the same block** (the
    /// Flash-Cosmos layout constraint for multi-operand in-flash compute).
    /// Pages already mapped elsewhere keep their existing mapping.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn map_group(&mut self, pages: &[LogicalPageId], plane: Option<u64>) -> Result<()> {
        let unmapped: Vec<LogicalPageId> = pages
            .iter()
            .copied()
            .filter(|p| !self.l2p.contains(*p))
            .collect();
        for &page in &unmapped {
            self.check_range(page)?;
        }
        if unmapped.is_empty() {
            return Ok(());
        }
        let addrs = self
            .alloc
            .allocate_group(&mut self.state, unmapped.len(), plane)?;
        for (page, addr) in unmapped.into_iter().zip(addrs) {
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    fn install_mapping(&mut self, page: LogicalPageId, addr: PhysicalPageAddr) {
        let flat = self.state.geometry().index_of(addr);
        if let Some(prev) = self.l2p.update(page, addr) {
            let prev_flat = self.state.geometry().index_of(prev);
            self.reverse.remove(&prev_flat);
            // Ignore errors: the previous page may already be invalid.
            let _ = self.state.invalidate(prev);
        }
        self.reverse.insert(flat, page);
        self.stats.pages_mapped += 1;
    }

    /// Translates a logical page, reporting whether the mapping entry was in
    /// the DFTL cache (`true`) or had to be fetched from flash (`false`).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnmappedPage`] for pages never written and
    /// range errors for pages beyond the device capacity.
    pub fn translate(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, bool)> {
        self.check_range(page)?;
        let (addr, kind) = self.l2p.lookup(page)?;
        Ok((addr, kind == LookupKind::CacheHit))
    }

    /// Looks up a mapping without touching cache statistics.
    pub fn peek(&self, page: LogicalPageId) -> Option<PhysicalPageAddr> {
        self.l2p.peek(page)
    }

    /// Performs an out-of-place rewrite of `page` (the flash commit of a
    /// dirty result page): the old physical page is invalidated, a fresh one
    /// is programmed, and garbage collection runs if the free pool is low.
    ///
    /// Returns the new physical address and any garbage-collection work that
    /// was triggered.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn rewrite(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, GcWork)> {
        self.check_range(page)?;
        let addr = self.alloc.allocate(&mut self.state, None)?;
        self.install_mapping(page, addr);
        self.stats.rewrites += 1;
        let gc = self.maybe_gc()?;
        Ok((addr, gc))
    }

    /// Runs garbage collection if the free-page pool is below the threshold.
    /// Repeats until the pool is healthy again or no victim is available.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors encountered while relocating valid pages.
    pub fn maybe_gc(&mut self) -> Result<GcWork> {
        let mut work = GcWork::default();
        while self.gc.should_run(&self.state) {
            let Some(victim) = self.gc.select_victim(&self.state) else {
                break;
            };
            work.merge(self.collect_block(victim)?);
        }
        if work.erased_blocks > 0 {
            self.stats.gc_relocations += work.relocated_pages;
            self.stats.gc_erases += work.erased_blocks;
            // Wear-leveling decision piggybacks on GC activity: when the
            // erase-count spread exceeds the tolerated budget, the scheduled
            // swap is carried out immediately — the coldest fully-written
            // block's pages are migrated (L2P remapped) and the block is
            // erased, returning its low-wear capacity to the hot allocation
            // pool. The migration work is merged into the returned `GcWork`
            // so the simulator charges its reads, programs and erase.
            if self.wear.needs_leveling(&self.state) {
                let swap = self.level_wear()?;
                self.stats.wear_relocations += swap.relocated_pages;
                work.merge(swap);
            }
        }
        Ok(work)
    }

    /// Performs one cold/hot wear-leveling swap: relocates the valid pages
    /// of the coldest fully-written block and erases it. A no-op (empty
    /// work) when no block qualifies.
    fn level_wear(&mut self) -> Result<GcWork> {
        match self.coldest_full_block() {
            Some(cold) => self.collect_block(cold),
            None => Ok(GcWork::default()),
        }
    }

    /// The non-bad, fully-written block holding valid data with the lowest
    /// erase count — the coldest data in the array. Only full blocks are
    /// considered so the migration never races the allocator's active
    /// blocks.
    fn coldest_full_block(&self) -> Option<u64> {
        let mut best: Option<(u64, u64)> = None;
        for block in 0..self.state.total_blocks() {
            let info = self.state.block_by_index(block);
            if info.is_bad() || info.next_free_page().is_some() {
                continue;
            }
            let (_, valid, _) = info.page_counts();
            if valid == 0 {
                continue;
            }
            match best {
                Some((_, erases)) if info.erase_count() >= erases => {}
                _ => best = Some((block, info.erase_count())),
            }
        }
        best.map(|(block, _)| block)
    }

    /// Appends the FTL's complete mutable state — flash array, L2P table,
    /// allocator cursors, coherence directory, GC/wear counters and activity
    /// stats — to `out` in the compact checkpoint layout. The encoding is
    /// deterministic (map entries are sorted), so identical FTL states
    /// always produce identical bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.state.encode_into(out);
        self.encode_tail_into(out);
    }

    /// Like [`Ftl::encode_into`], but the flash array uses the
    /// **delta-against-pristine** layout
    /// ([`FlashState::encode_sparse_into`]): never-written blocks are
    /// skipped, so a cold device's FTL image stays small. Decode with
    /// [`Ftl::decode_delta_from`].
    pub fn encode_delta_into(&self, out: &mut Vec<u8>) {
        self.state.encode_sparse_into(out);
        self.encode_tail_into(out);
    }

    /// Everything after the flash image, shared by both layouts: L2P table,
    /// allocator cursors, coherence directory, GC/wear counters and
    /// activity stats.
    fn encode_tail_into(&self, out: &mut Vec<u8>) {
        self.l2p.encode_into(out);
        self.alloc.encode_into(out);
        self.coherence.encode_into(out);
        put_u64(out, self.gc.invocations());
        put_u64(out, self.wear.swaps_scheduled());
        put_u64(out, self.stats.pages_mapped);
        put_u64(out, self.stats.rewrites);
        put_u64(out, self.stats.gc_relocations);
        put_u64(out, self.stats.gc_erases);
        put_u64(out, self.stats.wear_relocations);
    }

    /// Decodes an FTL serialized by [`Ftl::encode_into`] for the given
    /// configuration. Derived structures (the reverse physical→logical map,
    /// cache capacity, GC/wear thresholds) are rebuilt from `cfg` and the
    /// decoded mapping rather than stored.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for truncated bytes, a
    /// geometry mismatch, or a mapping that points outside the flash array.
    pub fn decode_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_from(&cfg.flash, r)?;
        ftl.decode_tail_from(r)
    }

    /// Decodes an FTL serialized by [`Ftl::encode_delta_into`] (sparse
    /// flash image) for the given configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ftl::decode_from`].
    pub fn decode_delta_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_sparse_from(&cfg.flash, r)?;
        ftl.decode_tail_from(r)
    }

    /// Decodes everything after the flash image and rebuilds the derived
    /// reverse map; consumes `self` (a fresh FTL whose `state` has already
    /// been replaced by the decoded flash image).
    fn decode_tail_from(self, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = self;
        ftl.l2p = L2pTable::decode_from(ftl.l2p.cache_capacity(), r)?;
        ftl.alloc = PageAllocator::decode_from(&ftl.state, r)?;
        ftl.coherence = CoherenceDirectory::decode_from(r)?;
        ftl.gc.restore_invocations(r.counter()?);
        ftl.wear.restore_swaps(r.counter()?);
        ftl.stats.pages_mapped = r.counter()?;
        ftl.stats.rewrites = r.counter()?;
        ftl.stats.gc_relocations = r.counter()?;
        ftl.stats.gc_erases = r.counter()?;
        ftl.stats.wear_relocations = r.counter()?;
        // The reverse map is the inverse of the decoded L2P mapping.
        let total_pages = ftl.state.geometry().total_pages();
        let mut reverse = HashMap::with_capacity(ftl.l2p.len());
        for (page, addr) in ftl.l2p.mappings() {
            if page.index() >= ftl.logical_pages {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "L2P mapping for page {page} is outside the logical address space"
                )));
            }
            let flat = ftl.state.geometry().index_of(addr);
            // Every component (channel/chip/die/plane/block/page) must be
            // in range, not just the flat index: an out-of-range component
            // can alias a valid flat index and then panic on first use. A
            // canonical address round-trips through its flat index exactly.
            if flat >= total_pages || ftl.state.geometry().addr_of(flat) != addr {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "L2P mapping for page {page} points outside the flash array"
                )));
            }
            if reverse.insert(flat, page).is_some() {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "two logical pages map to the same physical page (at {page})"
                )));
            }
        }
        ftl.reverse = reverse;
        Ok(ftl)
    }

    /// Relocates the valid pages of `victim` and erases it.
    fn collect_block(&mut self, victim: u64) -> Result<GcWork> {
        let geo = self.state.geometry().clone();
        let pages_per_block = geo.pages_per_block() as u64;
        let first = victim * pages_per_block;
        let mut relocated = 0;
        for flat in first..first + pages_per_block {
            let addr = geo.addr_of(flat);
            if self.state.page_state(addr) == conduit_flash::PageState::Valid {
                let Some(&lpid) = self.reverse.get(&flat) else {
                    // A valid page with no logical owner (should not happen);
                    // drop it so the erase can proceed.
                    self.state.invalidate(addr)?;
                    continue;
                };
                let new_addr = self.alloc.allocate(&mut self.state, None)?;
                self.install_mapping(lpid, new_addr);
                relocated += 1;
            }
        }
        self.state.erase_block(victim)?;
        Ok(GcWork {
            relocated_pages: relocated,
            erased_blocks: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::DataLocation;

    fn ftl() -> Ftl {
        Ftl::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn pages(range: std::ops::Range<u64>) -> Vec<LogicalPageId> {
        range.map(LogicalPageId::new).collect()
    }

    #[test]
    fn unmapped_page_translation_fails() {
        let mut f = ftl();
        assert!(matches!(
            f.translate(LogicalPageId::new(0)),
            Err(ConduitError::UnmappedPage { .. })
        ));
    }

    #[test]
    fn out_of_range_page_is_rejected() {
        let mut f = ftl();
        let too_big = LogicalPageId::new(f.logical_pages());
        assert!(matches!(
            f.map_pages(&[too_big], None),
            Err(ConduitError::PageOutOfRange { .. })
        ));
        assert!(f.translate(too_big).is_err());
    }

    #[test]
    fn map_and_translate_roundtrip() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        for p in &ps {
            let (addr, _) = f.translate(*p).unwrap();
            assert_eq!(f.peek(*p), Some(addr));
        }
        assert_eq!(f.stats().pages_mapped, 8);
    }

    #[test]
    fn striped_mapping_spreads_planes() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        let planes: std::collections::HashSet<u64> = ps
            .iter()
            .map(|p| {
                let addr = f.peek(*p).unwrap();
                f.flash_state().geometry().plane_index_of(addr)
            })
            .collect();
        assert_eq!(planes.len(), 8);
    }

    #[test]
    fn group_mapping_colocates_in_one_block() {
        let mut f = ftl();
        let ps = pages(10..14);
        f.map_group(&ps, Some(1)).unwrap();
        let addrs: Vec<PhysicalPageAddr> = ps.iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(addrs.iter().all(|a| a.same_block(addrs[0])));
    }

    #[test]
    fn group_mapping_respects_existing_mappings() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let before = f.peek(LogicalPageId::new(0)).unwrap();
        f.map_group(&pages(0..4), Some(2)).unwrap();
        assert_eq!(f.peek(LogicalPageId::new(0)), Some(before));
        // The remaining three are still co-located with each other.
        let rest: Vec<PhysicalPageAddr> = pages(1..4).iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(rest.iter().all(|a| a.same_block(rest[0])));
    }

    #[test]
    fn rewrite_moves_the_page_and_invalidates_the_old_one() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let old = f.peek(LogicalPageId::new(0)).unwrap();
        let (new, _) = f.rewrite(LogicalPageId::new(0)).unwrap();
        assert_ne!(old, new);
        assert_eq!(
            f.flash_state().page_state(old),
            conduit_flash::PageState::Invalid
        );
        assert_eq!(f.stats().rewrites, 1);
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        // Tiny device so rewrites quickly exhaust free pages.
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 8;
        cfg.flash.pages_per_block = 8;
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        let mut total_gc = GcWork::default();
        for _ in 0..200 {
            let (_, gc) = f.rewrite(LogicalPageId::new(3)).unwrap();
            total_gc.merge(gc);
        }
        assert!(total_gc.erased_blocks > 0, "GC must have run");
        assert!(f.free_fraction() > 0.0);
        assert!(f.stats().gc_erases > 0);
        // All logical pages remain translatable after GC moved things around.
        for p in pages(0..8) {
            f.translate(p).unwrap();
        }
    }

    /// A single-plane, 8×8-page array: small enough that rewrites exhaust
    /// the free pool quickly and wear imbalance is easy to manufacture.
    fn tiny_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 8;
        cfg.flash.pages_per_block = 8;
        cfg
    }

    #[test]
    fn wear_leveling_migrates_the_cold_blocks_pages() {
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        // Cold data: one completely full block that is never rewritten.
        f.map_group(&pages(0..8), Some(0)).unwrap();
        let cold_before = f.peek(LogicalPageId::new(0)).unwrap();
        let cold_block = f.flash_state().geometry().block_index_of(cold_before);
        // Manufacture a wear imbalance beyond the leveler's budget of 64 by
        // erasing the free blocks directly.
        for block in 0..f.flash_state().total_blocks() {
            if block == cold_block {
                continue;
            }
            for _ in 0..70 {
                f.state.erase_block(block).unwrap();
            }
        }
        assert!(f.wear_report().spread > 64);

        // Hot traffic elsewhere until GC runs (the leveling hook fires on
        // GC activity).
        f.map_pages(&pages(8..16), None).unwrap();
        for _ in 0..200 {
            f.rewrite(LogicalPageId::new(8)).unwrap();
            if f.stats().wear_relocations > 0 {
                break;
            }
        }

        let stats = f.stats();
        assert!(
            stats.wear_relocations >= 8,
            "the cold block's 8 valid pages must actually migrate: {stats:?}"
        );
        assert!(f.wear().swaps_scheduled() > 0);
        // The swap is real: the cold data moved (L2P updated) and the cold
        // block re-entered the erase rotation.
        assert_ne!(f.peek(LogicalPageId::new(0)), Some(cold_before));
        assert!(f.state.block_by_index(cold_block).erase_count() > 0);
        // Every page is still translatable after the migration.
        for p in pages(0..16) {
            f.translate(p).unwrap();
        }
    }

    #[test]
    fn checkpoint_roundtrips_an_aged_ftl() {
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_group(&pages(0..4), Some(0)).unwrap();
        f.map_pages(&pages(4..12), None).unwrap();
        f.coherence_mut()
            .record_write(LogicalPageId::new(4), DataLocation::Dram);
        for _ in 0..60 {
            f.rewrite(LogicalPageId::new(5)).unwrap();
        }
        assert!(f.stats().gc_erases > 0, "the stream must have aged the FTL");

        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let mut r = conduit_types::bytes::Reader::new(&buf);
        let back = Ftl::decode_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, f);

        // The encoding is deterministic: re-encoding the decoded FTL gives
        // byte-identical output.
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);

        // Corruption is rejected.
        assert!(Ftl::decode_from(&cfg, &mut conduit_types::bytes::Reader::new(&buf[..7])).is_err());
        let other = SsdConfig::small_for_tests();
        assert!(Ftl::decode_from(&other, &mut conduit_types::bytes::Reader::new(&buf)).is_err());
    }

    #[test]
    fn corrupt_checkpoints_error_instead_of_panicking_on_use() {
        // Decoding untrusted bytes must never set up a panic: every
        // single-word corruption either fails decoding with
        // CorruptCheckpoint or yields an FTL that survives normal use
        // (aliasing address components, wild allocator cursors and the
        // like must be caught by validation, not by an index-out-of-bounds
        // later).
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_pages(&pages(0..12), None).unwrap();
        for _ in 0..20 {
            f.rewrite(LogicalPageId::new(5)).unwrap();
        }
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        for offset in (0..buf.len()).step_by(8) {
            let mut corrupt = buf.clone();
            for byte in corrupt.iter_mut().skip(offset).take(8) {
                *byte = 0xFF;
            }
            let decoded = Ftl::decode_from(&cfg, &mut conduit_types::bytes::Reader::new(&corrupt));
            if let Ok(mut back) = decoded {
                // Whatever decoded must be safe to drive; errors are fine,
                // panics are not.
                let _ = back.translate(LogicalPageId::new(0));
                let _ = back.rewrite(LogicalPageId::new(5));
                let _ = back.map_pages(&pages(12..14), None);
            }
        }
    }

    #[test]
    fn coherence_directory_is_reachable() {
        let mut f = ftl();
        f.coherence_mut()
            .record_write(LogicalPageId::new(0), DataLocation::Dram);
        assert_eq!(f.coherence().dirty_pages(), 1);
    }

    #[test]
    fn l2p_cache_stats_flow_into_ftl_stats() {
        let mut f = ftl();
        f.map_pages(&pages(0..4), None).unwrap();
        for _ in 0..3 {
            f.translate(LogicalPageId::new(0)).unwrap();
        }
        let stats = f.stats();
        assert!(stats.l2p_hits >= 3);
    }
}
