//! The flash translation layer facade.
//!
//! [`Ftl`] combines address translation, NDP-aware allocation, garbage
//! collection, wear-leveling, and the lazy coherence directory behind one
//! interface that the device model in `conduit-sim` drives. All methods are
//! bookkeeping only; the returned structures tell the simulator how much
//! physical work (page reads/programs, erases) to charge.

use std::collections::HashMap;

use conduit_flash::FlashState;
use conduit_types::bytes::{put_u64, Reader};
use conduit_types::{
    ConduitError, DeviceHealth, FaultConfig, FaultPlan, LogicalPageId, PhysicalPageAddr, Result,
    SsdConfig,
};

use crate::alloc::PageAllocator;
use crate::coherence::CoherenceDirectory;
use crate::gc::{GarbageCollector, GcWork};
use crate::l2p::{L2pTable, LookupKind};
use crate::wear::{WearLeveler, WearReport};

/// Cumulative FTL activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Logical pages mapped for the first time (initial data placement).
    pub pages_mapped: u64,
    /// Out-of-place logical page rewrites.
    pub rewrites: u64,
    /// Valid pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Valid pages migrated out of cold blocks by the wear leveler (the
    /// physical work behind each scheduled swap).
    pub wear_relocations: u64,
    /// L2P mapping-cache hits.
    pub l2p_hits: u64,
    /// L2P mapping-cache misses.
    pub l2p_misses: u64,
}

/// Cumulative fault-injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Page programs that failed (each retires the block and retries).
    pub program_failures: u64,
    /// Block erases that failed during garbage collection (each retires
    /// the victim).
    pub erase_failures: u64,
    /// Extra read attempts taken by the transient-read retry ladder.
    pub read_retries: u64,
    /// Whole-die failures (each retires every block of the die).
    pub die_failures: u64,
    /// Valid pages relocated off retired blocks (remap-on-failure work).
    pub remapped_pages: u64,
}

/// The flash translation layer.
///
/// # Examples
///
/// ```
/// use conduit_ftl::Ftl;
/// use conduit_types::{LogicalPageId, SsdConfig};
///
/// let mut ftl = Ftl::new(&SsdConfig::small_for_tests())?;
/// let pages = [LogicalPageId::new(0), LogicalPageId::new(1)];
/// ftl.map_group(&pages, Some(0))?;
/// let (a, _) = ftl.translate(pages[0])?;
/// let (b, _) = ftl.translate(pages[1])?;
/// assert!(a.same_block(b));
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ftl {
    state: FlashState,
    l2p: L2pTable,
    alloc: PageAllocator,
    coherence: CoherenceDirectory,
    gc: GarbageCollector,
    wear: WearLeveler,
    reverse: HashMap<u64, LogicalPageId>,
    logical_pages: u64,
    stats: FtlStats,
    faults: FaultConfig,
    plan: FaultPlan,
    health: DeviceHealth,
    retired_blocks: u64,
    fault_stats: FaultStats,
}

impl Ftl {
    /// Builds an FTL for the configured SSD with an empty mapping.
    ///
    /// A quarter of the SSD DRAM is budgeted for the DFTL mapping cache at
    /// eight bytes per entry.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if the geometry is degenerate
    /// (no pages).
    pub fn new(cfg: &SsdConfig) -> Result<Self> {
        Ftl::with_faults(cfg, FaultConfig::default())
    }

    /// Builds an FTL with a fault-injection plan attached. The default
    /// (all-zero) configuration is inert — [`Ftl::new`] uses it — so fault
    /// support costs nothing on a fault-free device.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ftl::new`].
    pub fn with_faults(cfg: &SsdConfig, faults: FaultConfig) -> Result<Self> {
        let state = FlashState::new(&cfg.flash);
        if state.geometry().total_pages() == 0 {
            return Err(ConduitError::invalid_config("flash geometry has no pages"));
        }
        let cache_entries = (cfg.dram.capacity_bytes / 4 / 8).max(1024) as usize;
        let alloc = PageAllocator::new(&state);
        Ok(Ftl {
            alloc,
            l2p: L2pTable::new(cache_entries),
            coherence: CoherenceDirectory::new(),
            gc: GarbageCollector::new(0.0625),
            wear: WearLeveler::new(64),
            reverse: HashMap::new(),
            logical_pages: cfg.logical_pages(),
            state,
            stats: FtlStats::default(),
            plan: FaultPlan::new(faults.seed),
            faults,
            health: DeviceHealth::Healthy,
            retired_blocks: 0,
            fault_stats: FaultStats::default(),
        })
    }

    /// The flash array state (page validity, wear, bad blocks).
    pub fn flash_state(&self) -> &FlashState {
        &self.state
    }

    /// The coherence directory.
    pub fn coherence(&self) -> &CoherenceDirectory {
        &self.coherence
    }

    /// Mutable access to the coherence directory.
    pub fn coherence_mut(&mut self) -> &mut CoherenceDirectory {
        &mut self.coherence
    }

    /// The garbage-collection policy (read-only: invocation counters and
    /// thresholds).
    pub fn gc(&self) -> &GarbageCollector {
        &self.gc
    }

    /// The wear-leveling policy (read-only: scheduled-swap counters).
    pub fn wear(&self) -> &WearLeveler {
        &self.wear
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> FtlStats {
        let mut s = self.stats;
        let (hits, misses) = self.l2p.cache_stats();
        s.l2p_hits = hits;
        s.l2p_misses = misses;
        s
    }

    /// Number of logical pages the device exposes.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// The fault-injection configuration in force.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Current device health.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// Blocks retired as bad so far.
    pub fn retired_blocks(&self) -> u64 {
        self.retired_blocks
    }

    /// Cumulative fault-injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Rejects writes once the spare-block budget is exhausted: the device
    /// model calls this before accepting a store, so a degraded device
    /// turns writes away at the front door rather than deep inside a
    /// flush.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::DeviceDegraded`] on a degraded device.
    pub fn ensure_writable(&self) -> Result<()> {
        self.check_writable()
    }

    /// Rejects writes once the spare-block budget is exhausted.
    fn check_writable(&self) -> Result<()> {
        if self.health.is_degraded() {
            return Err(ConduitError::DeviceDegraded {
                retired_blocks: self.retired_blocks,
                spare_blocks: self.faults.spare_blocks,
            });
        }
        Ok(())
    }

    /// Fraction of physical pages currently free.
    pub fn free_fraction(&self) -> f64 {
        let (free, valid, invalid) = self.state.page_totals();
        free as f64 / (free + valid + invalid) as f64
    }

    /// Current wear report.
    pub fn wear_report(&self) -> WearReport {
        self.wear.report(&self.state)
    }

    /// Whether `page` is inside the device's logical address space.
    fn check_range(&self, page: LogicalPageId) -> Result<()> {
        if page.index() >= self.logical_pages {
            return Err(ConduitError::PageOutOfRange {
                page,
                capacity_pages: self.logical_pages,
            });
        }
        Ok(())
    }

    /// Maps (initially places) logical pages with plane striping. Pages that
    /// are already mapped are left untouched — re-preparing mapped pages is
    /// still allowed on a degraded (read-only) device; only placing *new*
    /// pages is a write.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors, and
    /// [`ConduitError::DeviceDegraded`] if an unmapped page needs placement
    /// on a degraded device.
    pub fn map_pages(&mut self, pages: &[LogicalPageId], plane_hint: Option<u64>) -> Result<()> {
        for (i, &page) in pages.iter().enumerate() {
            self.check_range(page)?;
            if self.l2p.contains(page) {
                continue;
            }
            self.check_writable()?;
            let addr = match plane_hint {
                Some(p) => self.alloc.allocate(&mut self.state, Some(p + i as u64))?,
                None => self.allocate_data_page()?,
            };
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    /// Maps a group of logical pages **co-located in the same block** (the
    /// Flash-Cosmos layout constraint for multi-operand in-flash compute).
    /// Pages already mapped elsewhere keep their existing mapping, so a
    /// fully-mapped group re-prepares fine on a degraded device.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors, and
    /// [`ConduitError::DeviceDegraded`] if unmapped pages need placement on
    /// a degraded device.
    pub fn map_group(&mut self, pages: &[LogicalPageId], plane: Option<u64>) -> Result<()> {
        let unmapped: Vec<LogicalPageId> = pages
            .iter()
            .copied()
            .filter(|p| !self.l2p.contains(*p))
            .collect();
        for &page in &unmapped {
            self.check_range(page)?;
        }
        if unmapped.is_empty() {
            return Ok(());
        }
        self.check_writable()?;
        let addrs = self
            .alloc
            .allocate_group(&mut self.state, unmapped.len(), plane)?;
        for (page, addr) in unmapped.into_iter().zip(addrs) {
            self.install_mapping(page, addr);
        }
        Ok(())
    }

    fn install_mapping(&mut self, page: LogicalPageId, addr: PhysicalPageAddr) {
        let flat = self.state.geometry().index_of(addr);
        if let Some(prev) = self.l2p.update(page, addr) {
            let prev_flat = self.state.geometry().index_of(prev);
            self.reverse.remove(&prev_flat);
            // Ignore errors: the previous page may already be invalid.
            let _ = self.state.invalidate(prev);
        }
        self.reverse.insert(flat, page);
        self.stats.pages_mapped += 1;
    }

    /// Translates a logical page, reporting whether the mapping entry was in
    /// the DFTL cache (`true`) or had to be fetched from flash (`false`).
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnmappedPage`] for pages never written and
    /// range errors for pages beyond the device capacity.
    pub fn translate(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, bool)> {
        self.check_range(page)?;
        let (addr, kind) = self.l2p.lookup(page)?;
        Ok((addr, kind == LookupKind::CacheHit))
    }

    /// Looks up a mapping without touching cache statistics.
    pub fn peek(&self, page: LogicalPageId) -> Option<PhysicalPageAddr> {
        self.l2p.peek(page)
    }

    /// Performs an out-of-place rewrite of `page` (the flash commit of a
    /// dirty result page): the old physical page is invalidated, a fresh one
    /// is programmed, and garbage collection runs if the free pool is low.
    ///
    /// Returns the new physical address and any garbage-collection work that
    /// was triggered.
    ///
    /// # Errors
    ///
    /// Propagates range and allocation errors.
    pub fn rewrite(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, GcWork)> {
        self.check_range(page)?;
        self.check_writable()?;
        let mut fault_work = GcWork::default();
        let addr = loop {
            let addr = self.allocate_data_page()?;
            if self.faults.is_inert() {
                break addr;
            }
            // Fault rolls, in a fixed order so replays are byte-exact: the
            // (rare, catastrophic) die failure first, then the per-block
            // program failure. A failed program leaves its target page
            // invalid, retires the block (relocating its surviving valid
            // pages) and retries on a fresh allocation; relocation programs
            // never roll faults, so retirement cannot recurse.
            let erases = self.state.block(addr).erase_count();
            let die_rate = self
                .faults
                .effective_rate(self.faults.die_fail_rate, erases);
            if self.plan.roll(die_rate) {
                self.fault_stats.die_failures += 1;
                self.state.invalidate(addr)?;
                let die = self.state.geometry().die_index_of(addr);
                fault_work.merge(self.retire_die(die)?);
                self.check_writable()?;
                continue;
            }
            let program_rate = self
                .faults
                .effective_rate(self.faults.program_fail_rate, erases);
            if self.plan.roll(program_rate) {
                self.fault_stats.program_failures += 1;
                self.state.invalidate(addr)?;
                let block = self.state.geometry().block_index_of(addr);
                fault_work.merge(self.retire_block(block)?);
                self.check_writable()?;
                continue;
            }
            break addr;
        };
        self.install_mapping(page, addr);
        self.stats.rewrites += 1;
        let mut gc = self.maybe_gc()?;
        gc.merge(fault_work);
        Ok((addr, gc))
    }

    /// Allocates one striped data page. With faults enabled the striping
    /// cursor may point at a plane whose blocks are all retired, so every
    /// plane is tried before giving up; the inert path is byte-identical to
    /// a plain allocation.
    fn allocate_data_page(&mut self) -> Result<PhysicalPageAddr> {
        if self.faults.is_inert() {
            return self.alloc.allocate(&mut self.state, None);
        }
        let planes = self.state.geometry().total_planes();
        for _ in 0..planes {
            match self.alloc.allocate(&mut self.state, None) {
                Ok(addr) => return Ok(addr),
                Err(ConduitError::OutOfSpace) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(ConduitError::OutOfSpace)
    }

    /// Draws the transient-read retry count for a read of `addr`: a
    /// geometric ladder capped at [`FaultConfig::max_read_retries`] whose
    /// per-step probability grows with the block's wear. The final capped
    /// retry always succeeds, so reads never surface an error. Returns 0
    /// without drawing when transient read faults are disabled.
    pub fn roll_read_retries(&mut self, addr: PhysicalPageAddr) -> u32 {
        if self.faults.read_transient_rate <= 0.0 {
            return 0;
        }
        let erases = self.state.block(addr).erase_count();
        let rate = self
            .faults
            .effective_rate(self.faults.read_transient_rate, erases);
        let mut retries = 0;
        while retries < self.faults.max_read_retries && self.plan.roll(rate) {
            retries += 1;
        }
        self.fault_stats.read_retries += u64::from(retries);
        retries
    }

    /// Retires `block` as bad: marks it first (so relocation can never
    /// target it), then migrates its surviving valid pages via the regular
    /// remapping path. Exhausting the spare budget flips the device to
    /// [`DeviceHealth::Degraded`].
    fn retire_block(&mut self, block: u64) -> Result<GcWork> {
        self.state.mark_bad(block);
        self.retired_blocks += 1;
        if self.retired_blocks > self.faults.spare_blocks {
            self.health = DeviceHealth::Degraded;
        }
        let relocated = self.relocate_valid_pages(block)?;
        self.fault_stats.remapped_pages += relocated;
        Ok(GcWork {
            relocated_pages: relocated,
            erased_blocks: 0,
        })
    }

    /// Retires every block of a failed die, then salvages the die's valid
    /// pages onto the surviving dies. All blocks are marked bad before any
    /// relocation so no page can land back inside the dead die.
    fn retire_die(&mut self, die: u64) -> Result<GcWork> {
        let geo = self.state.geometry().clone();
        let blocks_per_die = geo.planes_per_die() as u64 * geo.blocks_per_plane() as u64;
        let first = die * blocks_per_die;
        let mut newly_retired = 0;
        for block in first..first + blocks_per_die {
            if !self.state.block_by_index(block).is_bad() {
                self.state.mark_bad(block);
                newly_retired += 1;
            }
        }
        self.retired_blocks += newly_retired;
        if self.retired_blocks > self.faults.spare_blocks {
            self.health = DeviceHealth::Degraded;
        }
        let mut work = GcWork::default();
        for block in first..first + blocks_per_die {
            let relocated = self.relocate_valid_pages(block)?;
            self.fault_stats.remapped_pages += relocated;
            work.relocated_pages += relocated;
        }
        Ok(work)
    }

    /// Migrates the valid pages of an already-retired block to fresh
    /// allocations. Invalidation works on bad blocks, so the source pages
    /// are released as each mapping moves.
    fn relocate_valid_pages(&mut self, block: u64) -> Result<u64> {
        let geo = self.state.geometry().clone();
        let pages_per_block = geo.pages_per_block() as u64;
        let first = block * pages_per_block;
        let mut relocated = 0;
        for flat in first..first + pages_per_block {
            let addr = geo.addr_of(flat);
            if self.state.page_state(addr) == conduit_flash::PageState::Valid {
                let Some(&lpid) = self.reverse.get(&flat) else {
                    self.state.invalidate(addr)?;
                    continue;
                };
                let new_addr = self.allocate_data_page()?;
                self.install_mapping(lpid, new_addr);
                relocated += 1;
            }
        }
        Ok(relocated)
    }

    /// Runs garbage collection if the free-page pool is below the threshold.
    /// Repeats until the pool is healthy again or no victim is available.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors encountered while relocating valid pages.
    pub fn maybe_gc(&mut self) -> Result<GcWork> {
        let mut work = GcWork::default();
        while !self.health.is_degraded() && self.gc.should_run(&self.state) {
            let Some(victim) = self.gc.select_victim(&self.state) else {
                break;
            };
            work.merge(self.collect_block(victim)?);
        }
        if work.erased_blocks > 0 {
            self.stats.gc_relocations += work.relocated_pages;
            self.stats.gc_erases += work.erased_blocks;
            // Wear-leveling decision piggybacks on GC activity: when the
            // erase-count spread exceeds the tolerated budget, the scheduled
            // swap is carried out immediately — the coldest fully-written
            // block's pages are migrated (L2P remapped) and the block is
            // erased, returning its low-wear capacity to the hot allocation
            // pool. The migration work is merged into the returned `GcWork`
            // so the simulator charges its reads, programs and erase.
            if self.wear.needs_leveling(&self.state) {
                let swap = self.level_wear()?;
                self.stats.wear_relocations += swap.relocated_pages;
                work.merge(swap);
            }
        }
        Ok(work)
    }

    /// Performs one cold/hot wear-leveling swap: relocates the valid pages
    /// of the coldest fully-written block and erases it. A no-op (empty
    /// work) when no block qualifies.
    fn level_wear(&mut self) -> Result<GcWork> {
        match self.coldest_full_block() {
            Some(cold) => self.collect_block(cold),
            None => Ok(GcWork::default()),
        }
    }

    /// The non-bad, fully-written block holding valid data with the lowest
    /// erase count — the coldest data in the array. Only full blocks are
    /// considered so the migration never races the allocator's active
    /// blocks.
    fn coldest_full_block(&self) -> Option<u64> {
        let mut best: Option<(u64, u64)> = None;
        for block in 0..self.state.total_blocks() {
            let info = self.state.block_by_index(block);
            if info.is_bad() || info.next_free_page().is_some() {
                continue;
            }
            let (_, valid, _) = info.page_counts();
            if valid == 0 {
                continue;
            }
            match best {
                Some((_, erases)) if info.erase_count() >= erases => {}
                _ => best = Some((block, info.erase_count())),
            }
        }
        best.map(|(block, _)| block)
    }

    /// Appends the FTL's complete mutable state — flash array, L2P table,
    /// allocator cursors, coherence directory, GC/wear counters and activity
    /// stats — to `out` in the compact checkpoint layout. The encoding is
    /// deterministic (map entries are sorted), so identical FTL states
    /// always produce identical bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.state.encode_into(out);
        self.encode_tail_into(out);
        self.encode_fault_tail_into(out);
    }

    /// Like [`Ftl::encode_into`], but the flash array uses the
    /// **delta-against-pristine** layout
    /// ([`FlashState::encode_sparse_into`]): never-written blocks are
    /// skipped, so a cold device's FTL image stays small. Decode with
    /// [`Ftl::decode_delta_from`].
    pub fn encode_delta_into(&self, out: &mut Vec<u8>) {
        self.state.encode_sparse_into(out);
        self.encode_tail_into(out);
        self.encode_fault_tail_into(out);
    }

    /// Everything after the flash image, shared by both layouts: L2P table,
    /// allocator cursors, coherence directory, GC/wear counters and
    /// activity stats.
    fn encode_tail_into(&self, out: &mut Vec<u8>) {
        self.l2p.encode_into(out);
        self.alloc.encode_into(out);
        self.coherence.encode_into(out);
        put_u64(out, self.gc.invocations());
        put_u64(out, self.wear.swaps_scheduled());
        put_u64(out, self.stats.pages_mapped);
        put_u64(out, self.stats.rewrites);
        put_u64(out, self.stats.gc_relocations);
        put_u64(out, self.stats.gc_erases);
        put_u64(out, self.stats.wear_relocations);
    }

    /// The fault-injection state appended by the current (version-3)
    /// layouts: configuration, plan cursor, health, retired-block count and
    /// fault counters. Legacy (v1/v2) streams omit it and restore inert.
    fn encode_fault_tail_into(&self, out: &mut Vec<u8>) {
        self.faults.encode_into(out);
        put_u64(out, self.plan.draws());
        out.push(self.health.encode());
        put_u64(out, self.retired_blocks);
        put_u64(out, self.fault_stats.program_failures);
        put_u64(out, self.fault_stats.erase_failures);
        put_u64(out, self.fault_stats.read_retries);
        put_u64(out, self.fault_stats.die_failures);
        put_u64(out, self.fault_stats.remapped_pages);
    }

    /// Decodes the fault tail written by
    /// [`Ftl::encode_fault_tail_into`] into `self`.
    fn decode_fault_tail_from(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.faults = FaultConfig::decode_from(r)?;
        self.plan = FaultPlan::restore(self.faults.seed, r.counter()?);
        self.health = DeviceHealth::decode(r.u8()?)?;
        self.retired_blocks = r.counter()?;
        self.fault_stats.program_failures = r.counter()?;
        self.fault_stats.erase_failures = r.counter()?;
        self.fault_stats.read_retries = r.counter()?;
        self.fault_stats.die_failures = r.counter()?;
        self.fault_stats.remapped_pages = r.counter()?;
        Ok(())
    }

    /// Decodes an FTL serialized by [`Ftl::encode_into`] for the given
    /// configuration. Derived structures (the reverse physical→logical map,
    /// cache capacity, GC/wear thresholds) are rebuilt from `cfg` and the
    /// decoded mapping rather than stored.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for truncated bytes, a
    /// geometry mismatch, or a mapping that points outside the flash array.
    pub fn decode_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_from(&cfg.flash, r)?;
        let mut ftl = ftl.decode_tail_from(r)?;
        ftl.decode_fault_tail_from(r)?;
        Ok(ftl)
    }

    /// Decodes a **legacy** dense FTL image that predates the fault tail
    /// (device-state checkpoints of format version 1). Fault state restores
    /// inert and healthy.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ftl::decode_from`].
    pub fn decode_legacy_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_from(&cfg.flash, r)?;
        ftl.decode_tail_from(r)
    }

    /// Decodes an FTL serialized by [`Ftl::encode_delta_into`] (sparse
    /// flash image) for the given configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ftl::decode_from`].
    pub fn decode_delta_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_sparse_from(&cfg.flash, r)?;
        let mut ftl = ftl.decode_tail_from(r)?;
        ftl.decode_fault_tail_from(r)?;
        Ok(ftl)
    }

    /// Decodes a **legacy** sparse FTL image that predates the fault tail
    /// (device-state checkpoints of format version 2). Fault state restores
    /// inert and healthy.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ftl::decode_from`].
    pub fn decode_delta_legacy_from(cfg: &SsdConfig, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = Ftl::new(cfg)?;
        ftl.state = FlashState::decode_sparse_from(&cfg.flash, r)?;
        ftl.decode_tail_from(r)
    }

    /// Decodes everything after the flash image and rebuilds the derived
    /// reverse map; consumes `self` (a fresh FTL whose `state` has already
    /// been replaced by the decoded flash image).
    fn decode_tail_from(self, r: &mut Reader<'_>) -> Result<Self> {
        let mut ftl = self;
        ftl.l2p = L2pTable::decode_from(ftl.l2p.cache_capacity(), r)?;
        ftl.alloc = PageAllocator::decode_from(&ftl.state, r)?;
        ftl.coherence = CoherenceDirectory::decode_from(r)?;
        ftl.gc.restore_invocations(r.counter()?);
        ftl.wear.restore_swaps(r.counter()?);
        ftl.stats.pages_mapped = r.counter()?;
        ftl.stats.rewrites = r.counter()?;
        ftl.stats.gc_relocations = r.counter()?;
        ftl.stats.gc_erases = r.counter()?;
        ftl.stats.wear_relocations = r.counter()?;
        // The reverse map is the inverse of the decoded L2P mapping.
        let total_pages = ftl.state.geometry().total_pages();
        let mut reverse = HashMap::with_capacity(ftl.l2p.len());
        for (page, addr) in ftl.l2p.mappings() {
            if page.index() >= ftl.logical_pages {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "L2P mapping for page {page} is outside the logical address space"
                )));
            }
            let flat = ftl.state.geometry().index_of(addr);
            // Every component (channel/chip/die/plane/block/page) must be
            // in range, not just the flat index: an out-of-range component
            // can alias a valid flat index and then panic on first use. A
            // canonical address round-trips through its flat index exactly.
            if flat >= total_pages || ftl.state.geometry().addr_of(flat) != addr {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "L2P mapping for page {page} points outside the flash array"
                )));
            }
            if reverse.insert(flat, page).is_some() {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "two logical pages map to the same physical page (at {page})"
                )));
            }
        }
        ftl.reverse = reverse;
        Ok(ftl)
    }

    /// Relocates the valid pages of `victim` and erases it. With faults
    /// enabled the erase itself may fail, in which case the (now empty)
    /// victim is retired instead of returning to the free pool.
    fn collect_block(&mut self, victim: u64) -> Result<GcWork> {
        let geo = self.state.geometry().clone();
        let pages_per_block = geo.pages_per_block() as u64;
        let first = victim * pages_per_block;
        let mut relocated = 0;
        for flat in first..first + pages_per_block {
            let addr = geo.addr_of(flat);
            if self.state.page_state(addr) == conduit_flash::PageState::Valid {
                let Some(&lpid) = self.reverse.get(&flat) else {
                    // A valid page with no logical owner (should not happen);
                    // drop it so the erase can proceed.
                    self.state.invalidate(addr)?;
                    continue;
                };
                let new_addr = self.allocate_data_page()?;
                self.install_mapping(lpid, new_addr);
                relocated += 1;
            }
        }
        if !self.faults.is_inert() {
            let erases = self.state.block_by_index(victim).erase_count();
            let rate = self
                .faults
                .effective_rate(self.faults.erase_fail_rate, erases);
            if self.plan.roll(rate) {
                self.fault_stats.erase_failures += 1;
                let mut work = self.retire_block(victim)?;
                work.relocated_pages += relocated;
                return Ok(work);
            }
        }
        self.state.erase_block(victim)?;
        Ok(GcWork {
            relocated_pages: relocated,
            erased_blocks: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::DataLocation;

    fn ftl() -> Ftl {
        Ftl::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn pages(range: std::ops::Range<u64>) -> Vec<LogicalPageId> {
        range.map(LogicalPageId::new).collect()
    }

    #[test]
    fn unmapped_page_translation_fails() {
        let mut f = ftl();
        assert!(matches!(
            f.translate(LogicalPageId::new(0)),
            Err(ConduitError::UnmappedPage { .. })
        ));
    }

    #[test]
    fn out_of_range_page_is_rejected() {
        let mut f = ftl();
        let too_big = LogicalPageId::new(f.logical_pages());
        assert!(matches!(
            f.map_pages(&[too_big], None),
            Err(ConduitError::PageOutOfRange { .. })
        ));
        assert!(f.translate(too_big).is_err());
    }

    #[test]
    fn map_and_translate_roundtrip() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        for p in &ps {
            let (addr, _) = f.translate(*p).unwrap();
            assert_eq!(f.peek(*p), Some(addr));
        }
        assert_eq!(f.stats().pages_mapped, 8);
    }

    #[test]
    fn striped_mapping_spreads_planes() {
        let mut f = ftl();
        let ps = pages(0..8);
        f.map_pages(&ps, None).unwrap();
        let planes: std::collections::HashSet<u64> = ps
            .iter()
            .map(|p| {
                let addr = f.peek(*p).unwrap();
                f.flash_state().geometry().plane_index_of(addr)
            })
            .collect();
        assert_eq!(planes.len(), 8);
    }

    #[test]
    fn group_mapping_colocates_in_one_block() {
        let mut f = ftl();
        let ps = pages(10..14);
        f.map_group(&ps, Some(1)).unwrap();
        let addrs: Vec<PhysicalPageAddr> = ps.iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(addrs.iter().all(|a| a.same_block(addrs[0])));
    }

    #[test]
    fn group_mapping_respects_existing_mappings() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let before = f.peek(LogicalPageId::new(0)).unwrap();
        f.map_group(&pages(0..4), Some(2)).unwrap();
        assert_eq!(f.peek(LogicalPageId::new(0)), Some(before));
        // The remaining three are still co-located with each other.
        let rest: Vec<PhysicalPageAddr> = pages(1..4).iter().map(|p| f.peek(*p).unwrap()).collect();
        assert!(rest.iter().all(|a| a.same_block(rest[0])));
    }

    #[test]
    fn rewrite_moves_the_page_and_invalidates_the_old_one() {
        let mut f = ftl();
        f.map_pages(&pages(0..1), None).unwrap();
        let old = f.peek(LogicalPageId::new(0)).unwrap();
        let (new, _) = f.rewrite(LogicalPageId::new(0)).unwrap();
        assert_ne!(old, new);
        assert_eq!(
            f.flash_state().page_state(old),
            conduit_flash::PageState::Invalid
        );
        assert_eq!(f.stats().rewrites, 1);
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        // Tiny device so rewrites quickly exhaust free pages.
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 8;
        cfg.flash.pages_per_block = 8;
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        let mut total_gc = GcWork::default();
        for _ in 0..200 {
            let (_, gc) = f.rewrite(LogicalPageId::new(3)).unwrap();
            total_gc.merge(gc);
        }
        assert!(total_gc.erased_blocks > 0, "GC must have run");
        assert!(f.free_fraction() > 0.0);
        assert!(f.stats().gc_erases > 0);
        // All logical pages remain translatable after GC moved things around.
        for p in pages(0..8) {
            f.translate(p).unwrap();
        }
    }

    /// A single-plane, 8×8-page array: small enough that rewrites exhaust
    /// the free pool quickly and wear imbalance is easy to manufacture.
    fn tiny_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 8;
        cfg.flash.pages_per_block = 8;
        cfg
    }

    #[test]
    fn wear_leveling_migrates_the_cold_blocks_pages() {
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        // Cold data: one completely full block that is never rewritten.
        f.map_group(&pages(0..8), Some(0)).unwrap();
        let cold_before = f.peek(LogicalPageId::new(0)).unwrap();
        let cold_block = f.flash_state().geometry().block_index_of(cold_before);
        // Manufacture a wear imbalance beyond the leveler's budget of 64 by
        // erasing the free blocks directly.
        for block in 0..f.flash_state().total_blocks() {
            if block == cold_block {
                continue;
            }
            for _ in 0..70 {
                f.state.erase_block(block).unwrap();
            }
        }
        assert!(f.wear_report().spread > 64);

        // Hot traffic elsewhere until GC runs (the leveling hook fires on
        // GC activity).
        f.map_pages(&pages(8..16), None).unwrap();
        for _ in 0..200 {
            f.rewrite(LogicalPageId::new(8)).unwrap();
            if f.stats().wear_relocations > 0 {
                break;
            }
        }

        let stats = f.stats();
        assert!(
            stats.wear_relocations >= 8,
            "the cold block's 8 valid pages must actually migrate: {stats:?}"
        );
        assert!(f.wear().swaps_scheduled() > 0);
        // The swap is real: the cold data moved (L2P updated) and the cold
        // block re-entered the erase rotation.
        assert_ne!(f.peek(LogicalPageId::new(0)), Some(cold_before));
        assert!(f.state.block_by_index(cold_block).erase_count() > 0);
        // Every page is still translatable after the migration.
        for p in pages(0..16) {
            f.translate(p).unwrap();
        }
    }

    #[test]
    fn checkpoint_roundtrips_an_aged_ftl() {
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_group(&pages(0..4), Some(0)).unwrap();
        f.map_pages(&pages(4..12), None).unwrap();
        f.coherence_mut()
            .record_write(LogicalPageId::new(4), DataLocation::Dram);
        for _ in 0..60 {
            f.rewrite(LogicalPageId::new(5)).unwrap();
        }
        assert!(f.stats().gc_erases > 0, "the stream must have aged the FTL");

        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let mut r = conduit_types::bytes::Reader::new(&buf);
        let back = Ftl::decode_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, f);

        // The encoding is deterministic: re-encoding the decoded FTL gives
        // byte-identical output.
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);

        // Corruption is rejected.
        assert!(Ftl::decode_from(&cfg, &mut conduit_types::bytes::Reader::new(&buf[..7])).is_err());
        let other = SsdConfig::small_for_tests();
        assert!(Ftl::decode_from(&other, &mut conduit_types::bytes::Reader::new(&buf)).is_err());
    }

    #[test]
    fn corrupt_checkpoints_error_instead_of_panicking_on_use() {
        // Decoding untrusted bytes must never set up a panic: every
        // single-word corruption either fails decoding with
        // CorruptCheckpoint or yields an FTL that survives normal use
        // (aliasing address components, wild allocator cursors and the
        // like must be caught by validation, not by an index-out-of-bounds
        // later).
        let cfg = tiny_cfg();
        let mut f = Ftl::new(&cfg).unwrap();
        f.map_pages(&pages(0..12), None).unwrap();
        for _ in 0..20 {
            f.rewrite(LogicalPageId::new(5)).unwrap();
        }
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        for offset in (0..buf.len()).step_by(8) {
            let mut corrupt = buf.clone();
            for byte in corrupt.iter_mut().skip(offset).take(8) {
                *byte = 0xFF;
            }
            let decoded = Ftl::decode_from(&cfg, &mut conduit_types::bytes::Reader::new(&corrupt));
            if let Ok(mut back) = decoded {
                // Whatever decoded must be safe to drive; errors are fine,
                // panics are not.
                let _ = back.translate(LogicalPageId::new(0));
                let _ = back.rewrite(LogicalPageId::new(5));
                let _ = back.map_pages(&pages(12..14), None);
            }
        }
    }

    #[test]
    fn inert_fault_config_changes_nothing() {
        // A seeded-but-inert fault config must be behaviourally identical
        // to no fault support at all: same placements, same stats, and no
        // random draws.
        let cfg = tiny_cfg();
        let mut plain = Ftl::new(&cfg).unwrap();
        let mut seeded = Ftl::with_faults(&cfg, FaultConfig::with_seed(0xDEAD)).unwrap();
        for f in [&mut plain, &mut seeded] {
            f.map_pages(&pages(0..8), None).unwrap();
            for _ in 0..80 {
                f.rewrite(LogicalPageId::new(3)).unwrap();
            }
        }
        for p in pages(0..8) {
            assert_eq!(plain.peek(p), seeded.peek(p));
        }
        assert_eq!(plain.stats(), seeded.stats());
        assert_eq!(seeded.fault_stats(), FaultStats::default());
        assert_eq!(seeded.health(), DeviceHealth::Healthy);
    }

    /// Like [`tiny_cfg`] but with enough spare capacity that retiring a
    /// handful of blocks never exhausts the device.
    fn roomy_cfg() -> SsdConfig {
        let mut cfg = tiny_cfg();
        cfg.flash.blocks_per_plane = 64;
        cfg
    }

    #[test]
    fn program_failures_retire_blocks_and_remap_pages() {
        let cfg = roomy_cfg();
        let mut faults = FaultConfig::with_seed(7);
        faults.program_fail_rate = 0.10;
        faults.spare_blocks = 1_000;
        let mut f = Ftl::with_faults(&cfg, faults).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        for _ in 0..120 {
            f.rewrite(LogicalPageId::new(3)).unwrap();
        }
        let stats = f.fault_stats();
        assert!(stats.program_failures > 0, "{stats:?}");
        assert_eq!(f.retired_blocks(), stats.program_failures);
        assert_eq!(f.health(), DeviceHealth::Healthy);
        // No data was lost: every logical page still translates, and no
        // mapping points into a retired block.
        for p in pages(0..8) {
            let (addr, _) = f.translate(p).unwrap();
            assert!(!f.flash_state().block(addr).is_bad());
        }
    }

    #[test]
    fn spare_exhaustion_degrades_the_device_and_rejects_writes() {
        let cfg = tiny_cfg();
        let mut faults = FaultConfig::with_seed(1);
        faults.program_fail_rate = 1.0;
        faults.spare_blocks = 2;
        let mut f = Ftl::with_faults(&cfg, faults).unwrap();
        f.map_pages(&pages(0..4), None).unwrap();
        let err = f.rewrite(LogicalPageId::new(0)).unwrap_err();
        assert!(
            matches!(err, ConduitError::DeviceDegraded { retired_blocks, spare_blocks }
                if retired_blocks > spare_blocks),
            "{err:?}"
        );
        assert_eq!(f.health(), DeviceHealth::Degraded);
        // Reads still work; further writes keep failing with the typed
        // error instead of panicking.
        for p in pages(0..4) {
            f.translate(p).unwrap();
        }
        assert!(matches!(
            f.rewrite(LogicalPageId::new(1)),
            Err(ConduitError::DeviceDegraded { .. })
        ));
        assert!(matches!(
            f.map_pages(&pages(4..5), None),
            Err(ConduitError::DeviceDegraded { .. })
        ));
    }

    #[test]
    fn erase_failures_retire_gc_victims() {
        let mut cfg = tiny_cfg();
        cfg.flash.blocks_per_plane = 16;
        let mut faults = FaultConfig::with_seed(3);
        faults.erase_fail_rate = 0.5;
        faults.spare_blocks = 1_000;
        let mut f = Ftl::with_faults(&cfg, faults).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        // Rewrite until garbage collection has hit its first failing erase;
        // stop there so the shrinking device does not spiral out of space.
        for _ in 0..2_000 {
            if f.fault_stats().erase_failures > 0 {
                break;
            }
            f.rewrite(LogicalPageId::new(3)).unwrap();
        }
        let stats = f.fault_stats();
        assert!(stats.erase_failures > 0, "{stats:?}");
        assert_eq!(f.retired_blocks(), stats.erase_failures);
        for p in pages(0..8) {
            f.translate(p).unwrap();
        }
    }

    #[test]
    fn die_failure_retires_the_whole_die_and_salvages_its_pages() {
        // Two single-plane dies so a die failure leaves a survivor.
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 2;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 16;
        cfg.flash.pages_per_block = 8;
        let mut faults = FaultConfig::with_seed(11);
        faults.die_fail_rate = 0.05;
        faults.spare_blocks = 10_000;
        let mut f = Ftl::with_faults(&cfg, faults).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        let mut die_failed = false;
        for _ in 0..200 {
            if f.rewrite(LogicalPageId::new(3)).is_err() {
                break;
            }
            if f.fault_stats().die_failures > 0 {
                die_failed = true;
                break;
            }
        }
        assert!(die_failed, "stats: {:?}", f.fault_stats());
        // The whole die (16 blocks) retired at once, and the salvaged pages
        // all live on the surviving die.
        assert!(f.retired_blocks() >= 16, "{}", f.retired_blocks());
        for p in pages(0..8) {
            let (addr, _) = f.translate(p).unwrap();
            assert!(!f.flash_state().block(addr).is_bad());
        }
    }

    #[test]
    fn read_retry_ladder_is_capped_and_seed_deterministic() {
        let cfg = tiny_cfg();
        let mut faults = FaultConfig::with_seed(21);
        faults.read_transient_rate = 0.6;
        faults.max_read_retries = 3;
        let run = |mut f: Ftl| -> (Vec<u32>, u64) {
            f.map_pages(&pages(0..2), None).unwrap();
            let addr = f.peek(LogicalPageId::new(0)).unwrap();
            let ladder: Vec<u32> = (0..50).map(|_| f.roll_read_retries(addr)).collect();
            (ladder, f.fault_stats().read_retries)
        };
        let (a, total_a) = run(Ftl::with_faults(&cfg, faults).unwrap());
        let (b, total_b) = run(Ftl::with_faults(&cfg, faults).unwrap());
        assert_eq!(a, b, "same seed must give the same retry ladder");
        assert_eq!(total_a, total_b);
        assert!(total_a > 0);
        assert!(a.iter().all(|&r| r <= 3));
        assert!(a.iter().any(|&r| r > 0));
    }

    #[test]
    fn faulty_ftl_checkpoint_roundtrips_with_plan_cursor() {
        let cfg = roomy_cfg();
        let mut faults = FaultConfig::with_seed(9);
        faults.program_fail_rate = 0.1;
        faults.read_transient_rate = 0.2;
        faults.spare_blocks = 1_000;
        let mut f = Ftl::with_faults(&cfg, faults).unwrap();
        f.map_pages(&pages(0..8), None).unwrap();
        for _ in 0..60 {
            f.rewrite(LogicalPageId::new(5)).unwrap();
        }
        let addr = f.peek(LogicalPageId::new(0)).unwrap();
        f.roll_read_retries(addr);
        assert!(f.fault_stats().program_failures > 0);

        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let mut r = conduit_types::bytes::Reader::new(&buf);
        let mut back = Ftl::decode_from(&cfg, &mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back, f);
        // The restored plan continues the exact random stream: the next
        // rewrites fail (or not) identically on both copies.
        for _ in 0..30 {
            let a = f.rewrite(LogicalPageId::new(5));
            let b = back.rewrite(LogicalPageId::new(5));
            assert_eq!(a, b);
        }
        assert_eq!(back.fault_stats(), f.fault_stats());
    }

    #[test]
    fn coherence_directory_is_reachable() {
        let mut f = ftl();
        f.coherence_mut()
            .record_write(LogicalPageId::new(0), DataLocation::Dram);
        assert_eq!(f.coherence().dirty_pages(), 1);
    }

    #[test]
    fn l2p_cache_stats_flow_into_ftl_stats() {
        let mut f = ftl();
        f.map_pages(&pages(0..4), None).unwrap();
        for _ in 0..3 {
            f.translate(LogicalPageId::new(0)).unwrap();
        }
        let stats = f.stats();
        assert!(stats.l2p_hits >= 3);
    }
}
