//! Garbage collection policy.
//!
//! Flash pages cannot be updated in place: every logical-page rewrite lands
//! on a fresh physical page and leaves the old one *invalid*. When the pool
//! of free pages runs low, the garbage collector picks a victim block
//! (greedy: the block with the most invalid pages), relocates its remaining
//! valid pages, and erases it.
//!
//! The policy (victim selection and thresholds) lives here; the mechanism
//! (remapping and erasing) is driven by [`crate::Ftl::maybe_gc`] because it
//! needs the L2P table and the allocator.

use conduit_flash::FlashState;

/// Work performed by one garbage-collection invocation, reported so the
/// simulator can charge the corresponding flash reads, programs, and erases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcWork {
    /// Valid pages that had to be read and re-programmed elsewhere.
    pub relocated_pages: u64,
    /// Blocks erased.
    pub erased_blocks: u64,
}

impl GcWork {
    /// Whether any physical work was performed.
    pub fn is_empty(&self) -> bool {
        self.relocated_pages == 0 && self.erased_blocks == 0
    }

    /// Accumulates another invocation's work into this one.
    pub fn merge(&mut self, other: GcWork) {
        self.relocated_pages += other.relocated_pages;
        self.erased_blocks += other.erased_blocks;
    }
}

/// Greedy garbage-collection policy.
///
/// # Examples
///
/// ```
/// use conduit_ftl::GarbageCollector;
///
/// let gc = GarbageCollector::new(0.1);
/// assert_eq!(gc.free_threshold(), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GarbageCollector {
    free_threshold: f64,
    invocations: u64,
}

impl GarbageCollector {
    /// Creates a collector that triggers when the fraction of free pages
    /// drops below `free_threshold`.
    pub fn new(free_threshold: f64) -> Self {
        GarbageCollector {
            free_threshold: free_threshold.clamp(0.0, 1.0),
            invocations: 0,
        }
    }

    /// The configured free-page threshold.
    pub fn free_threshold(&self) -> f64 {
        self.free_threshold
    }

    /// Number of times a victim has been selected.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Restores the invocation counter from a checkpoint (the threshold is
    /// configuration-derived and not part of the checkpoint).
    pub(crate) fn restore_invocations(&mut self, invocations: u64) {
        self.invocations = invocations;
    }

    /// Whether garbage collection should run given the array's current
    /// occupancy.
    pub fn should_run(&self, state: &FlashState) -> bool {
        let (free, valid, invalid) = state.page_totals();
        let total = free + valid + invalid;
        if total == 0 {
            return false;
        }
        (free as f64 / total as f64) < self.free_threshold && invalid > 0
    }

    /// Selects the victim block with the most invalid pages (ties broken by
    /// the lowest block index). Returns `None` if no block has any invalid
    /// page. Answered from the flash array's maintained per-block invalid
    /// column, so this is one pass over blocks, not pages.
    pub fn select_victim(&mut self, state: &FlashState) -> Option<u64> {
        let best = state.most_invalid_block();
        if best.is_some() {
            self.invocations += 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn tiny_state() -> FlashState {
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 4;
        cfg.flash.pages_per_block = 4;
        FlashState::new(&cfg.flash)
    }

    #[test]
    fn empty_array_needs_no_gc() {
        let state = tiny_state();
        let gc = GarbageCollector::new(0.25);
        assert!(!gc.should_run(&state));
    }

    #[test]
    fn victim_is_block_with_most_invalid_pages() {
        let mut state = tiny_state();
        let geo = state.geometry().clone();
        // Block 0: 1 invalid page; block 1: 2 invalid pages.
        for i in 0..3 {
            state.program(geo.addr_of(i)).unwrap();
        }
        state.invalidate(geo.addr_of(0)).unwrap();
        for i in 4..8 {
            state.program(geo.addr_of(i)).unwrap();
        }
        state.invalidate(geo.addr_of(4)).unwrap();
        state.invalidate(geo.addr_of(5)).unwrap();

        let mut gc = GarbageCollector::new(0.25);
        assert_eq!(gc.select_victim(&state), Some(1));
        assert_eq!(gc.invocations(), 1);
    }

    #[test]
    fn no_victim_when_nothing_is_invalid() {
        let mut state = tiny_state();
        let geo = state.geometry().clone();
        state.program(geo.addr_of(0)).unwrap();
        let mut gc = GarbageCollector::new(0.25);
        assert_eq!(gc.select_victim(&state), None);
        assert_eq!(gc.invocations(), 0);
    }

    #[test]
    fn should_run_when_free_pool_is_low() {
        let mut state = tiny_state();
        let geo = state.geometry().clone();
        // Fill 15 of 16 pages, invalidating a few.
        for i in 0..15 {
            state.program(geo.addr_of(i)).unwrap();
        }
        state.invalidate(geo.addr_of(0)).unwrap();
        state.invalidate(geo.addr_of(1)).unwrap();
        let gc = GarbageCollector::new(0.25);
        assert!(gc.should_run(&state));
    }

    #[test]
    fn gc_work_merge() {
        let mut total = GcWork::default();
        assert!(total.is_empty());
        total.merge(GcWork {
            relocated_pages: 3,
            erased_blocks: 1,
        });
        total.merge(GcWork {
            relocated_pages: 2,
            erased_blocks: 1,
        });
        assert_eq!(total.relocated_pages, 5);
        assert_eq!(total.erased_blocks, 2);
        assert!(!total.is_empty());
    }
}
