//! Logical-to-physical mapping with a DFTL-style demand cache.
//!
//! The full mapping table of a multi-terabyte SSD does not fit in SSD DRAM,
//! so only a subset of entries is cached (demand-based selective caching,
//! DFTL). A lookup that misses the cache must fetch the mapping entry from
//! flash, which is three orders of magnitude slower — the offloader's
//! feature-collection overhead model (§4.5) distinguishes exactly these two
//! cases (≈100 ns vs ≈30 µs).

use std::collections::HashMap;

use conduit_types::bytes::{put_u16, put_u32, put_u64, Reader};
use conduit_types::{ConduitError, LogicalPageId, PhysicalPageAddr, Result};

/// Whether an L2P lookup hit the in-DRAM mapping cache or had to fetch the
/// mapping entry from flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupKind {
    /// The mapping entry was cached in SSD DRAM.
    CacheHit,
    /// The mapping entry had to be read from flash.
    CacheMiss,
}

/// The logical-to-physical page mapping table.
///
/// # Examples
///
/// ```
/// use conduit_ftl::{L2pTable, LookupKind};
/// use conduit_types::{LogicalPageId, PhysicalPageAddr};
///
/// let mut l2p = L2pTable::new(2);
/// l2p.update(LogicalPageId::new(7), PhysicalPageAddr::new(0, 0, 0, 0, 1, 0));
/// let (addr, kind) = l2p.lookup(LogicalPageId::new(7)).unwrap();
/// assert_eq!(addr.block, 1);
/// assert_eq!(kind, LookupKind::CacheHit);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct L2pTable {
    map: HashMap<LogicalPageId, PhysicalPageAddr>,
    /// Approximate-LRU mapping cache: page → last-use stamp.
    cache: HashMap<LogicalPageId, u64>,
    cache_capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl L2pTable {
    /// Creates an empty table whose mapping cache holds `cache_capacity`
    /// entries.
    pub fn new(cache_capacity: usize) -> Self {
        L2pTable {
            map: HashMap::new(),
            cache: HashMap::new(),
            cache_capacity: cache_capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of mapped logical pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no logical pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `page` has a mapping.
    pub fn contains(&self, page: LogicalPageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Inserts or updates the mapping for `page`, returning the previous
    /// physical address if the page was already mapped (the caller
    /// invalidates that physical page). The entry becomes cached.
    pub fn update(
        &mut self,
        page: LogicalPageId,
        addr: PhysicalPageAddr,
    ) -> Option<PhysicalPageAddr> {
        let prev = self.map.insert(page, addr);
        self.touch(page);
        prev
    }

    /// Looks up the physical address of `page` and reports whether the
    /// mapping entry was cached.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnmappedPage`] if the page has no mapping.
    pub fn lookup(&mut self, page: LogicalPageId) -> Result<(PhysicalPageAddr, LookupKind)> {
        let addr = *self
            .map
            .get(&page)
            .ok_or(ConduitError::UnmappedPage { page })?;
        let kind = if self.cache.contains_key(&page) {
            self.hits += 1;
            LookupKind::CacheHit
        } else {
            self.misses += 1;
            LookupKind::CacheMiss
        };
        self.touch(page);
        Ok((addr, kind))
    }

    /// Looks up without affecting cache statistics (used by read-only
    /// inspection such as placement checks).
    pub fn peek(&self, page: LogicalPageId) -> Option<PhysicalPageAddr> {
        self.map.get(&page).copied()
    }

    /// Removes the mapping for `page`, returning the physical address it
    /// pointed to.
    pub fn remove(&mut self, page: LogicalPageId) -> Option<PhysicalPageAddr> {
        self.cache.remove(&page);
        self.map.remove(&page)
    }

    /// Cache hit/miss counts since creation.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The mapping-cache capacity this table was built with.
    pub(crate) fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Iterator over every `(logical, physical)` mapping, in arbitrary
    /// order.
    pub(crate) fn mappings(&self) -> impl Iterator<Item = (LogicalPageId, PhysicalPageAddr)> + '_ {
        self.map.iter().map(|(&p, &a)| (p, a))
    }

    /// Cache hit rate since creation (1.0 when there have been no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Appends the table's state (mappings, cached entries with their LRU
    /// stamps, clock and hit/miss counters) to `out`. Map entries are sorted
    /// by logical page id so the encoding is deterministic regardless of
    /// `HashMap` iteration order.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let mut mappings: Vec<(&LogicalPageId, &PhysicalPageAddr)> = self.map.iter().collect();
        mappings.sort_by_key(|(p, _)| **p);
        put_u64(out, mappings.len() as u64);
        for (page, addr) in mappings {
            put_u64(out, page.index());
            out.push(addr.channel);
            out.push(addr.chip);
            out.push(addr.die);
            out.push(addr.plane);
            put_u32(out, addr.block);
            put_u16(out, addr.page);
        }
        let mut cached: Vec<(&LogicalPageId, &u64)> = self.cache.iter().collect();
        cached.sort_by_key(|(p, _)| **p);
        put_u64(out, cached.len() as u64);
        for (page, stamp) in cached {
            put_u64(out, page.index());
            put_u64(out, *stamp);
        }
        put_u64(out, self.clock);
        put_u64(out, self.hits);
        put_u64(out, self.misses);
    }

    /// Decodes a table serialized by [`L2pTable::encode_into`] into an empty
    /// table with `cache_capacity` (which is derived from the configuration,
    /// not stored).
    pub(crate) fn decode_from(cache_capacity: usize, r: &mut Reader<'_>) -> Result<Self> {
        let mut table = L2pTable::new(cache_capacity);
        let mappings = r.u64()? as usize;
        for _ in 0..mappings {
            let page = LogicalPageId::new(r.u64()?);
            let addr =
                PhysicalPageAddr::new(r.u8()?, r.u8()?, r.u8()?, r.u8()?, r.u32()?, r.u16()?);
            if table.map.insert(page, addr).is_some() {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "duplicate L2P mapping for page {page}"
                )));
            }
        }
        let cached = r.u64()? as usize;
        for _ in 0..cached {
            let page = LogicalPageId::new(r.u64()?);
            let stamp = r.counter()?;
            if !table.map.contains_key(&page) {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "cached L2P entry for unmapped page {page}"
                )));
            }
            table.cache.insert(page, stamp);
        }
        table.clock = r.counter()?;
        table.hits = r.counter()?;
        table.misses = r.counter()?;
        // Stamps are handed out from the clock, so none may exceed it.
        if table.cache.values().any(|&stamp| stamp > table.clock) {
            return Err(ConduitError::corrupt_checkpoint(
                "L2P cache stamp is ahead of the LRU clock",
            ));
        }
        // `touch` evicts one entry at a time, so an oversized decoded cache
        // would stay oversized forever — reject it instead.
        if table.cache.len() > table.cache_capacity {
            return Err(ConduitError::corrupt_checkpoint(
                "L2P cache holds more entries than its configured capacity",
            ));
        }
        Ok(table)
    }

    fn touch(&mut self, page: LogicalPageId) {
        // Saturating: the stamp clock never wraps (a wrap would reorder the
        // LRU approximation, and a restored checkpoint may carry a large
        // clock).
        self.clock = self.clock.saturating_add(1);
        self.cache.insert(page, self.clock);
        if self.cache.len() > self.cache_capacity {
            self.evict();
        }
    }

    /// Evicts the approximately-least-recently-used cached entry by sampling
    /// a handful of entries (CLOCK-like approximation; exact LRU is not worth
    /// the bookkeeping cost at simulation scale).
    fn evict(&mut self) {
        let victim = self
            .cache
            .iter()
            .take(32)
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(&page, _)| page);
        if let Some(page) = victim {
            self.cache.remove(&page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u16) -> PhysicalPageAddr {
        PhysicalPageAddr::new(0, 0, 0, 0, block, page)
    }

    #[test]
    fn lookup_of_unmapped_page_fails() {
        let mut l2p = L2pTable::new(4);
        assert!(matches!(
            l2p.lookup(LogicalPageId::new(1)),
            Err(ConduitError::UnmappedPage { .. })
        ));
    }

    #[test]
    fn update_and_lookup_roundtrip() {
        let mut l2p = L2pTable::new(4);
        assert!(l2p.is_empty());
        assert_eq!(l2p.update(LogicalPageId::new(1), addr(3, 4)), None);
        assert!(l2p.contains(LogicalPageId::new(1)));
        let (a, kind) = l2p.lookup(LogicalPageId::new(1)).unwrap();
        assert_eq!(a, addr(3, 4));
        assert_eq!(kind, LookupKind::CacheHit);
        assert_eq!(l2p.len(), 1);
    }

    #[test]
    fn remap_returns_previous_address() {
        let mut l2p = L2pTable::new(4);
        l2p.update(LogicalPageId::new(1), addr(3, 4));
        let prev = l2p.update(LogicalPageId::new(1), addr(5, 0));
        assert_eq!(prev, Some(addr(3, 4)));
        assert_eq!(l2p.peek(LogicalPageId::new(1)), Some(addr(5, 0)));
    }

    #[test]
    fn cache_misses_after_eviction() {
        let mut l2p = L2pTable::new(2);
        for i in 0..10 {
            l2p.update(LogicalPageId::new(i), addr(i as u32, 0));
        }
        // Pages 0..8 have almost certainly been evicted from the 2-entry
        // cache; looking one of them up must be a miss.
        let (_, kind) = l2p.lookup(LogicalPageId::new(0)).unwrap();
        assert_eq!(kind, LookupKind::CacheMiss);
        let (hits, misses) = l2p.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 1);
        assert!(l2p.cache_hit_rate() < 1.0);
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let mut l2p = L2pTable::new(8);
        l2p.update(LogicalPageId::new(1), addr(1, 0));
        for _ in 0..5 {
            let (_, kind) = l2p.lookup(LogicalPageId::new(1)).unwrap();
            assert_eq!(kind, LookupKind::CacheHit);
        }
        assert_eq!(l2p.cache_stats().0, 5);
        assert_eq!(l2p.cache_hit_rate(), 1.0);
    }

    #[test]
    fn remove_unmaps_the_page() {
        let mut l2p = L2pTable::new(4);
        l2p.update(LogicalPageId::new(1), addr(1, 0));
        assert_eq!(l2p.remove(LogicalPageId::new(1)), Some(addr(1, 0)));
        assert!(!l2p.contains(LogicalPageId::new(1)));
        assert_eq!(l2p.remove(LogicalPageId::new(1)), None);
    }
}
