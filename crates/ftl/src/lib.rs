//! # conduit-ftl
//!
//! Flash translation layer (FTL) for the Conduit NDP-SSD framework.
//!
//! The FTL is the firmware layer that Conduit's runtime offloader is embedded
//! next to (§4.3.2 of the paper). This crate implements the pieces of it that
//! the offloading study depends on:
//!
//! * [`L2pTable`] — logical-to-physical page mapping with a DFTL-style
//!   demand-paged mapping cache in SSD DRAM (hits cost ~100 ns, misses fetch
//!   the mapping entry from flash),
//! * [`PageAllocator`] — physical page allocation that both stripes vector
//!   slices across planes (for multi-plane parallelism) and co-locates
//!   operand groups in the same block (the Flash-Cosmos layout constraint for
//!   in-flash AND),
//! * [`GarbageCollector`] and [`WearLeveler`] — greedy victim selection,
//!   valid-page relocation, erase accounting and wear statistics,
//! * [`CoherenceDirectory`] — the lazy coherence protocol of §4.4: per
//!   logical page owner / dirty state / version counter, with flush-to-flash
//!   synchronization only when another resource (or the host) needs the page,
//! * [`Ftl`] — the facade that ties all of the above together and is consumed
//!   by the `conduit-sim` device model.
//!
//! All methods are *functional bookkeeping only*: they return descriptions of
//! the physical work performed (pages read/programmed, blocks erased) and the
//! event-driven simulator charges the corresponding time and energy.
//!
//! ## Example
//!
//! ```
//! use conduit_ftl::Ftl;
//! use conduit_types::{LogicalPageId, SsdConfig};
//!
//! let cfg = SsdConfig::small_for_tests();
//! let mut ftl = Ftl::new(&cfg)?;
//! ftl.map_pages(&[LogicalPageId::new(0), LogicalPageId::new(1)], None)?;
//! let (addr, _hit) = ftl.translate(LogicalPageId::new(0))?;
//! assert_eq!(ftl.translate(LogicalPageId::new(0))?.0, addr);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod alloc;
mod coherence;
mod ftl;
mod gc;
mod l2p;
mod wear;

pub use alloc::PageAllocator;
pub use coherence::{CoherenceDirectory, CoherenceState, SyncAction};
pub use ftl::{FaultStats, Ftl, FtlStats};
pub use gc::{GarbageCollector, GcWork};
pub use l2p::{L2pTable, LookupKind};
pub use wear::{WearLeveler, WearReport};
