//! Wear-leveling policy.
//!
//! Flash blocks endure a limited number of program/erase cycles, so the FTL
//! distributes erases as evenly as possible. The simulator only needs the
//! policy level: wear statistics, an imbalance metric, and a decision of
//! whether a cold/hot block swap should be scheduled.

use conduit_flash::FlashState;

/// Snapshot of block wear across the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearReport {
    /// Lowest per-block erase count.
    pub min_erases: u64,
    /// Highest per-block erase count.
    pub max_erases: u64,
    /// Mean per-block erase count.
    pub mean_erases: f64,
    /// `max - min`, the imbalance the leveler tries to bound.
    pub spread: u64,
}

/// Threshold-based wear-leveling policy.
///
/// # Examples
///
/// ```
/// use conduit_ftl::WearLeveler;
///
/// let leveler = WearLeveler::new(16);
/// assert_eq!(leveler.max_spread(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearLeveler {
    max_spread: u64,
    swaps_scheduled: u64,
}

impl WearLeveler {
    /// Creates a leveler that tolerates an erase-count spread of
    /// `max_spread` before scheduling a swap.
    pub fn new(max_spread: u64) -> Self {
        WearLeveler {
            max_spread: max_spread.max(1),
            swaps_scheduled: 0,
        }
    }

    /// The tolerated erase-count spread.
    pub fn max_spread(&self) -> u64 {
        self.max_spread
    }

    /// Number of cold/hot swaps this leveler has scheduled.
    pub fn swaps_scheduled(&self) -> u64 {
        self.swaps_scheduled
    }

    /// Restores the swap counter from a checkpoint (the spread threshold is
    /// configuration-derived and not part of the checkpoint).
    pub(crate) fn restore_swaps(&mut self, swaps: u64) {
        self.swaps_scheduled = swaps;
    }

    /// Produces a wear report for the array.
    pub fn report(&self, state: &FlashState) -> WearReport {
        let (min, max, mean) = state.wear_stats();
        WearReport {
            min_erases: min,
            max_erases: max,
            mean_erases: mean,
            spread: max - min,
        }
    }

    /// Whether the wear imbalance exceeds the tolerated spread and a swap of
    /// a cold block into the hot allocation pool should be scheduled.
    /// Records the decision.
    pub fn needs_leveling(&mut self, state: &FlashState) -> bool {
        let report = self.report(state);
        let needed = report.spread > self.max_spread;
        if needed {
            self.swaps_scheduled += 1;
        }
        needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::SsdConfig;

    fn state() -> FlashState {
        let mut cfg = SsdConfig::small_for_tests();
        cfg.flash.channels = 1;
        cfg.flash.dies_per_channel = 1;
        cfg.flash.planes_per_die = 1;
        cfg.flash.blocks_per_plane = 4;
        cfg.flash.pages_per_block = 4;
        FlashState::new(&cfg.flash)
    }

    #[test]
    fn fresh_array_is_balanced() {
        let s = state();
        let mut leveler = WearLeveler::new(4);
        let report = leveler.report(&s);
        assert_eq!(report.spread, 0);
        assert!(!leveler.needs_leveling(&s));
        assert_eq!(leveler.swaps_scheduled(), 0);
    }

    #[test]
    fn imbalance_triggers_leveling() {
        let mut s = state();
        for _ in 0..6 {
            s.erase_block(0).unwrap();
        }
        let mut leveler = WearLeveler::new(4);
        let report = leveler.report(&s);
        assert_eq!(report.max_erases, 6);
        assert_eq!(report.min_erases, 0);
        assert_eq!(report.spread, 6);
        assert!(leveler.needs_leveling(&s));
        assert_eq!(leveler.swaps_scheduled(), 1);
    }

    #[test]
    fn spread_within_threshold_is_tolerated() {
        let mut s = state();
        s.erase_block(0).unwrap();
        s.erase_block(0).unwrap();
        let mut leveler = WearLeveler::new(4);
        assert!(!leveler.needs_leveling(&s));
    }
}
