//! The integrated SSD device model.
//!
//! [`SsdDevice`] wires the substrate models (flash, DRAM, controller cores,
//! FTL) to contended-resource timelines (channels, dies, banks, buses, cores,
//! the PCIe link) and exposes the primitive operations the runtime offloading
//! engine schedules:
//!
//! * moving a logical page's latest copy to wherever a computation needs it
//!   ([`SsdDevice::ensure_at`]), respecting the lazy coherence protocol,
//! * moving anonymous intermediate values between locations
//!   ([`SsdDevice::transfer_value`]),
//! * executing one vector instruction on a chosen SSD compute resource
//!   ([`SsdDevice::execute`]),
//! * host-link transfers and offloader-core busy time,
//! * the *estimates* the cost function needs (un-contended compute latency
//!   per resource, static data-movement latency, queueing delays, and
//!   utilizations).
//!
//! Every operation returns an [`OpCompletion`] carrying the completion time,
//! a [`CostBreakdown`] of where the service time went, and the energy it
//! consumed; energy is also accumulated in the device's [`EnergyMeter`].

use std::sync::Arc;

use conduit_ctrl::{CoreAllocation, IspModel};
use conduit_dram::{DramTiming, PudModel};
use conduit_flash::{FlashTiming, IfpModel, IfpPlacement};
use conduit_ftl::{Ftl, SyncAction};
use conduit_types::{
    DataLocation, Duration, Energy, EnergySource, FaultConfig, LogicalPageId, OpType, Resource,
    Result, SimTime, SsdConfig,
};

use crate::energy::EnergyMeter;
use crate::estimates::{EstimateTable, StripEstimates};
use crate::state::{DeviceSnapshot, DeviceState, HOST_CACHE_PAGES};
use crate::stats::CostBreakdown;

/// The outcome of one scheduled device operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCompletion {
    /// When the operation finishes (includes any queueing).
    pub ready: SimTime,
    /// Where the *service* time (excluding queueing) was spent.
    pub breakdown: CostBreakdown,
    /// Energy consumed.
    pub energy: Energy,
}

/// One strip-wide offloader-core reservation (see
/// [`SsdDevice::offloader_busy_strip`]): the strip's instruction `i`
/// finishes its exclusive transformation window at `first_ready + step * i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripWindow {
    /// When the strip's first instruction leaves the offloader core.
    pub first_ready: SimTime,
    /// Per-instruction exclusive window (the reservation's service time).
    pub step: Duration,
    /// Offloader energy charged per instruction.
    pub energy_each: Energy,
}

impl OpCompletion {
    /// A zero-cost completion at `at`.
    pub fn immediate(at: SimTime) -> Self {
        OpCompletion {
            ready: at,
            breakdown: CostBreakdown::zero(),
            energy: Energy::ZERO,
        }
    }

    /// Combines two completions that happened (possibly in parallel) as part
    /// of one logical step: ready time is the max, costs add.
    pub fn join(self, other: OpCompletion) -> OpCompletion {
        let mut breakdown = self.breakdown;
        breakdown.accumulate(other.breakdown);
        OpCompletion {
            ready: self.ready.max(other.ready),
            breakdown,
            energy: self.energy + other.energy,
        }
    }
}

/// The simulated SSD: immutable substrate models wrapped around the
/// persistent, mutable [`DeviceState`] (FTL, contention timelines,
/// residency, energy).
///
/// The models (timings, energy rates, the [`EstimateTable`]) are pure
/// functions of the [`SsdConfig`], so a device is exactly *models +
/// state*: [`SsdDevice::new`] pairs fresh models with a pristine state,
/// [`SsdDevice::with_state`] pairs them with a state carried over from
/// earlier runs (a **warm** device), and [`SsdDevice::into_state`] hands the
/// state back for the next run. Simulation results depend only on the
/// configuration and the state, never on which `SsdDevice` wrapper executed
/// them.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SsdDevice {
    /// The immutable substrate models, shareable across threads. The
    /// parallel strip-evaluation path hands a clone of this [`Arc`] to
    /// worker threads so they can answer pure estimate queries while the
    /// committing thread holds `&mut SsdDevice`.
    models: Arc<DeviceModels>,
    #[allow(dead_code)]
    cores: CoreAllocation,
    /// Everything that mutates as instructions execute.
    state: DeviceState,
}

/// The immutable half of an [`SsdDevice`]: every timing/energy model plus
/// the precomputed [`EstimateTable`], all pure functions of the
/// [`SsdConfig`]. Nothing in here ever mutates after construction, so a
/// `DeviceModels` is freely shareable (`Send + Sync`) and answers the
/// state-independent estimate queries the batched engine hoists per strip —
/// including on worker threads, concurrently with the owning device
/// executing commits.
#[derive(Debug)]
pub struct DeviceModels {
    cfg: SsdConfig,
    flash_timing: FlashTiming,
    ifp: IfpModel,
    pud: PudModel,
    dram_timing: DramTiming,
    isp: IspModel,
    /// Per-(resource, op) and per-(location, location) estimates, built once
    /// from the static configuration (see [`EstimateTable`]).
    estimates: EstimateTable,
}

impl DeviceModels {
    /// Builds every substrate model from the configuration.
    pub fn new(cfg: &SsdConfig) -> Self {
        let flash_timing = FlashTiming::new(&cfg.flash);
        let ifp = IfpModel::new(&cfg.flash);
        let pud = PudModel::new(&cfg.dram);
        let dram_timing = DramTiming::new(&cfg.dram);
        let isp = IspModel::new(&cfg.ctrl);
        let estimates = EstimateTable::new(cfg, &ifp, &pud, &isp, &flash_timing, &dram_timing);
        DeviceModels {
            cfg: cfg.clone(),
            flash_timing,
            ifp,
            pud,
            dram_timing,
            isp,
            estimates,
        }
    }

    /// The device configuration the models were built from.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Un-contended compute latency of `op` on `resource` (see
    /// [`SsdDevice::estimate_compute`]).
    #[inline]
    pub fn estimate_compute(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Duration> {
        match self.estimates.compute(resource, op, elem_bits, lanes) {
            Some(entry) => entry.map(|e| e.latency),
            None => EstimateTable::evaluate(
                &self.cfg, &self.ifp, &self.pud, &self.isp, resource, op, elem_bits, lanes,
            )
            .map(|e| e.latency),
        }
    }

    /// Un-contended compute energy of `op` on `resource` (see
    /// [`SsdDevice::estimate_compute_energy`]).
    #[inline]
    pub fn estimate_compute_energy(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Energy> {
        match self.estimates.compute(resource, op, elem_bits, lanes) {
            Some(entry) => entry.map(|e| e.energy),
            None => EstimateTable::evaluate(
                &self.cfg, &self.ifp, &self.pud, &self.isp, resource, op, elem_bits, lanes,
            )
            .map(|e| e.energy),
        }
    }

    /// Static (contention-free) data-movement estimate (see
    /// [`SsdDevice::estimate_move`]).
    #[inline]
    pub fn estimate_move(&self, from: DataLocation, to: DataLocation, bytes: u64) -> Duration {
        match self.estimates.move_latency(from, to, bytes) {
            Some(latency) => latency,
            None => EstimateTable::evaluate_move(
                &self.cfg,
                &self.flash_timing,
                &self.dram_timing,
                from,
                to,
                bytes,
            ),
        }
    }

    /// Hoists a whole strip's per-resource compute and static-move
    /// estimates (see [`SsdDevice::estimate_strip`]). Pure, so worker
    /// threads can evaluate strips concurrently with the committing thread.
    #[inline]
    pub fn estimate_strip(
        &self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        vector_bytes: u64,
    ) -> StripEstimates {
        self.estimates.estimate_batch(
            &self.cfg,
            &self.ifp,
            &self.pud,
            &self.isp,
            &self.flash_timing,
            &self.dram_timing,
            op,
            elem_bits,
            lanes,
            vector_bytes,
        )
    }
}

impl SsdDevice {
    /// Builds a pristine device from its configuration.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the FTL or core allocation.
    pub fn new(cfg: &SsdConfig) -> Result<Self> {
        let state = DeviceState::new(cfg)?;
        Self::with_state(cfg, state)
    }

    /// Builds a pristine device with a fault-injection plan attached (see
    /// [`DeviceState::new_with_faults`]). With the default (inert)
    /// [`FaultConfig`] this is identical to [`SsdDevice::new`].
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the FTL or core allocation.
    pub fn with_faults(cfg: &SsdConfig, faults: FaultConfig) -> Result<Self> {
        let state = DeviceState::new_with_faults(cfg, faults)?;
        Self::with_state(cfg, state)
    }

    /// Builds a device around an existing (possibly warm) [`DeviceState`].
    /// The models are rebuilt from `cfg`; because they are pure functions of
    /// the configuration, wrapping a state in a new device never changes
    /// simulation results.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the core allocation.
    pub fn with_state(cfg: &SsdConfig, state: DeviceState) -> Result<Self> {
        let cores = CoreAllocation::standard(&cfg.ctrl)?;
        Ok(SsdDevice {
            models: Arc::new(DeviceModels::new(cfg)),
            cores,
            state,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.models.cfg
    }

    /// A shareable handle to the immutable substrate models (see
    /// [`DeviceModels`]). Cloning the [`Arc`] is cheap; worker threads use
    /// it to answer estimate queries while the owner mutates device state.
    pub fn models(&self) -> Arc<DeviceModels> {
        Arc::clone(&self.models)
    }

    /// The persistent device state (read-only).
    pub fn state(&self) -> &DeviceState {
        &self.state
    }

    /// Consumes the device, returning its persistent state so a later run
    /// can continue on a warm device ([`SsdDevice::with_state`]).
    pub fn into_state(self) -> DeviceState {
        self.state
    }

    /// Cumulative counters of everything that has happened on this device
    /// (see [`DeviceSnapshot`]).
    pub fn snapshot(&self) -> DeviceSnapshot {
        self.state.snapshot()
    }

    /// Folds one served lane request into the device's lane statistics (see
    /// [`DeviceState::record_lane_request`]).
    pub fn record_lane_request(
        &mut self,
        idle: conduit_types::Duration,
        queued: conduit_types::Duration,
        busy: conduit_types::Duration,
    ) {
        self.state.record_lane_request(idle, queued, busy);
    }

    /// Resets the windowed lane statistics (see
    /// [`DeviceState::reset_lane_window`]).
    pub fn reset_lane_window(&mut self) {
        self.state.reset_lane_window();
    }

    /// The flash translation layer (read-only).
    pub fn ftl(&self) -> &Ftl {
        &self.state.ftl
    }

    /// The accumulated energy meter.
    pub fn energy_meter(&self) -> &EnergyMeter {
        &self.state.energy
    }

    /// Maps (initially places) logical pages with plane striping.
    ///
    /// # Errors
    ///
    /// Propagates FTL mapping errors.
    pub fn map_pages(&mut self, pages: &[LogicalPageId], plane_hint: Option<u64>) -> Result<()> {
        self.state.ftl.map_pages(pages, plane_hint)
    }

    /// Maps a group of logical pages co-located in one flash block (the
    /// layout in-flash multi-operand compute requires).
    ///
    /// # Errors
    ///
    /// Propagates FTL mapping errors.
    pub fn map_group(&mut self, pages: &[LogicalPageId], plane: Option<u64>) -> Result<()> {
        self.state.ftl.map_group(pages, plane)
    }

    /// Where the latest copy of `page` currently lives.
    pub fn locate(&self, page: LogicalPageId) -> DataLocation {
        let owner = self.state.ftl.coherence().owner(page);
        if owner != DataLocation::Flash {
            return owner;
        }
        if self.state.dram_resident.contains(&page) {
            DataLocation::Dram
        } else if self.state.ctrl_resident.contains(&page) {
            DataLocation::CtrlSram
        } else {
            DataLocation::Flash
        }
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// Moves the latest copy of `page` to `dest`, handling coherence
    /// flushes, and returns when (and at what cost) it gets there.
    ///
    /// # Errors
    ///
    /// Fails if the page was never mapped or the device runs out of space
    /// while committing dirty data.
    pub fn ensure_at(
        &mut self,
        page: LogicalPageId,
        dest: DataLocation,
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        let current = self.locate(page);
        if current == dest {
            return Ok(OpCompletion::immediate(earliest));
        }
        // Host memory keeps its own copy of previously-fetched pages; as long
        // as no SSD resource has produced a newer version, re-reads are free.
        if dest == DataLocation::Host
            && self.state.host_resident.contains(&page)
            && self.state.ftl.coherence().owner(page) == DataLocation::Flash
        {
            return Ok(OpCompletion::immediate(earliest));
        }
        // If another location holds a dirty copy and we need it elsewhere,
        // the lazy-coherence protocol commits it to flash first.
        let mut completion = OpCompletion::immediate(earliest);
        let owner = self.state.ftl.coherence().owner(page);
        let dirty_elsewhere =
            owner != DataLocation::Flash && owner != dest && dest != DataLocation::Flash;
        if dirty_elsewhere || (dest == DataLocation::Flash && owner != DataLocation::Flash) {
            let sync = self.state.ftl.coherence_mut().acquire(page, dest);
            if let SyncAction::FlushToFlash { from } = sync {
                let flush = self.commit_page(page, from, completion.ready)?;
                completion = completion.join(flush);
            }
            if dest == DataLocation::Flash {
                return Ok(completion);
            }
        }
        // Now the source of truth is flash (or a clean cached copy).
        let move_cost = match (self.locate(page), dest) {
            (DataLocation::Dram, DataLocation::CtrlSram)
            | (DataLocation::CtrlSram, DataLocation::Dram) => {
                self.dram_to_ctrl_transfer(completion.ready)
            }
            (DataLocation::Dram, DataLocation::Host)
            | (DataLocation::CtrlSram, DataLocation::Host) => {
                self.host_transfer(self.models.cfg.flash.page_bytes, true, completion.ready)
            }
            (DataLocation::Flash, _) => {
                let to_internal = self.flash_read_page(page, completion.ready)?;
                if dest == DataLocation::Host {
                    let link = self.host_transfer(
                        self.models.cfg.flash.page_bytes,
                        true,
                        to_internal.ready,
                    );
                    to_internal.join(link)
                } else {
                    to_internal
                }
            }
            (DataLocation::Host, _) => {
                // Host-resident data flowing back into the SSD.
                self.host_transfer(self.models.cfg.flash.page_bytes, false, completion.ready)
            }
            _ => OpCompletion::immediate(completion.ready),
        };
        completion = completion.join(move_cost);
        self.note_residency(page, dest);
        Ok(completion)
    }

    /// Records that a computation executing at `writer` produced a new
    /// version of `page` (a store). Any dirty copy held by a *different*
    /// resource is committed to flash first, per the coherence protocol.
    ///
    /// # Errors
    ///
    /// Returns [`conduit_types::ConduitError::DeviceDegraded`] — before
    /// touching any coherence state — if the device has exhausted its
    /// spare-block budget, and propagates flash-commit errors.
    pub fn record_result_write(
        &mut self,
        page: LogicalPageId,
        writer: DataLocation,
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        self.state.ftl.ensure_writable()?;
        let action = self.state.ftl.coherence_mut().record_write(page, writer);
        let completion = match action {
            SyncAction::None => OpCompletion::immediate(earliest),
            SyncAction::FlushToFlash { from } => self.commit_page(page, from, earliest)?,
        };
        // Any SSD-side write supersedes a copy the host may hold.
        if writer != DataLocation::Host {
            self.state.host_resident.remove(&page);
        }
        self.note_residency(page, writer);
        Ok(completion)
    }

    /// Moves `bytes` of anonymous intermediate data (an instruction result
    /// that is not bound to a logical page) between two locations.
    pub fn transfer_value(
        &mut self,
        from: DataLocation,
        to: DataLocation,
        bytes: u64,
        earliest: SimTime,
    ) -> OpCompletion {
        if from == to {
            return OpCompletion::immediate(earliest);
        }
        match (from, to) {
            (DataLocation::Dram, DataLocation::CtrlSram)
            | (DataLocation::CtrlSram, DataLocation::Dram) => self.bus_move(bytes, earliest),
            (DataLocation::Flash, DataLocation::Dram)
            | (DataLocation::Flash, DataLocation::CtrlSram) => {
                self.flash_read_bytes(bytes, earliest)
            }
            (DataLocation::Dram, DataLocation::Flash)
            | (DataLocation::CtrlSram, DataLocation::Flash) => {
                self.flash_program_bytes(bytes, earliest)
            }
            (DataLocation::Host, _) => self.host_transfer(bytes, false, earliest),
            (_, DataLocation::Host) => self.host_transfer(bytes, true, earliest),
            _ => OpCompletion::immediate(earliest),
        }
    }

    /// Transfers `bytes` over the host link (NVMe command overhead + PCIe).
    pub fn host_transfer(&mut self, bytes: u64, to_host: bool, earliest: SimTime) -> OpCompletion {
        let _ = to_host;
        let service =
            self.models.cfg.link.nvme_cmd_latency + self.models.cfg.link.transfer_time(bytes);
        let (_, end) = self.state.pcie.reserve(earliest, service);
        let energy = self.models.cfg.link.e_per_byte * (bytes as f64);
        self.state.energy.charge(EnergySource::HostLink, energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                host_data_movement: service,
                ..CostBreakdown::zero()
            },
            energy,
        }
    }

    /// Occupies the offloader core for `dur` (feature collection and
    /// instruction transformation overheads, §4.5).
    pub fn offloader_busy(&mut self, dur: Duration, earliest: SimTime) -> OpCompletion {
        let (_, end) = self.state.offloader_core.reserve(earliest, dur);
        let energy = Energy::from_power(self.models.cfg.ctrl.core_power_w, dur);
        self.state.energy.charge(EnergySource::Offloader, energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                compute: dur,
                ..CostBreakdown::zero()
            },
            energy,
        }
    }

    /// Occupies the offloader core for `count` back-to-back exclusive
    /// windows of `dur` each — a whole strip's transformation overheads in
    /// one timeline reservation.
    ///
    /// Bit-identical to `count` chained [`SsdDevice::offloader_busy`] calls
    /// where each call's `earliest` is the previous call's `ready` (which is
    /// exactly how the run loop chains its offload clock): the reservation
    /// window is `[max(earliest, busy_until), start + dur * count)`, and the
    /// per-instruction energy is charged `count` times in order so the
    /// floating-point accumulation in the energy meter is unchanged.
    pub fn offloader_busy_strip(
        &mut self,
        dur: Duration,
        earliest: SimTime,
        count: u64,
    ) -> StripWindow {
        let probed = self.probe_offloader_strip(dur, earliest, count);
        let committed = self.commit_offloader_strip(dur, earliest, count);
        debug_assert_eq!(
            probed, committed,
            "an un-interleaved probe must predict its commit exactly"
        );
        committed
    }

    /// Pure half of [`SsdDevice::offloader_busy_strip`]: the
    /// [`StripWindow`] a strip arriving at `earliest` *would* get, without
    /// touching the offloader-core timeline or the energy meter. Exact as
    /// long as no other reservation lands before the matching
    /// [`SsdDevice::commit_offloader_strip`].
    pub fn probe_offloader_strip(
        &self,
        dur: Duration,
        earliest: SimTime,
        count: u64,
    ) -> StripWindow {
        let (start, _end) = self.state.offloader_core.probe_batch(earliest, dur, count);
        StripWindow {
            first_ready: start + dur,
            step: dur,
            energy_each: Energy::from_power(self.models.cfg.ctrl.core_power_w, dur),
        }
    }

    /// Commit half of [`SsdDevice::offloader_busy_strip`]: applies the
    /// strip's offloader-core reservation and charges the per-instruction
    /// energy `count` times in order (so the floating-point accumulation in
    /// the energy meter matches `count` chained
    /// [`SsdDevice::offloader_busy`] calls exactly).
    pub fn commit_offloader_strip(
        &mut self,
        dur: Duration,
        earliest: SimTime,
        count: u64,
    ) -> StripWindow {
        let (start, _end) = self.state.offloader_core.commit_batch(earliest, dur, count);
        let energy_each = Energy::from_power(self.models.cfg.ctrl.core_power_w, dur);
        for _ in 0..count {
            self.state
                .energy
                .charge(EnergySource::Offloader, energy_each);
        }
        StripWindow {
            first_ready: start + dur,
            step: dur,
            energy_each,
        }
    }

    // ------------------------------------------------------------------
    // Compute execution
    // ------------------------------------------------------------------

    /// Executes one vector instruction on the chosen SSD compute resource.
    /// Operands must already be at the resource's home location (use
    /// [`SsdDevice::ensure_at`] first); `operand_pages` is used only to
    /// derive the physical placement for in-flash execution.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnsupportedOperation`] if the resource cannot
    /// execute `op`.
    pub fn execute(
        &mut self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        operand_pages: &[LogicalPageId],
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        match resource {
            Resource::Ifp => self.execute_ifp(op, elem_bits, lanes, operand_pages, earliest),
            Resource::PudSsd => self.execute_pud(op, elem_bits, lanes, earliest),
            Resource::Isp => Ok(self.execute_isp(op, elem_bits, lanes, earliest)),
        }
    }

    /// Executes an in-flash (IFP) operation.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnsupportedOperation`] for ops outside the IFP
    /// set.
    pub fn execute_ifp(
        &mut self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        operand_pages: &[LogicalPageId],
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        let placement = self.ifp_placement(operand_pages);
        let cost = self.models.ifp.op_cost(op, elem_bits, lanes, placement)?;
        // The operation occupies the die holding the first operand (or the
        // least-busy die when operands are intermediate values).
        let end = match operand_pages.first().and_then(|p| self.state.ftl.peek(*p)) {
            Some(addr) => {
                let die = self.state.ftl.flash_state().geometry().die_index_of(addr) as usize;
                let (_, end) = self.state.dies.reserve_unit(die, earliest, cost.latency);
                end
            }
            None => {
                let (_, end, _) = self.state.dies.reserve(earliest, cost.latency);
                end
            }
        };
        self.state.energy.charge(EnergySource::Ifp, cost.energy);
        Ok(OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                flash_array: cost.latency,
                ..CostBreakdown::zero()
            },
            energy: cost.energy,
        })
    }

    /// Executes a processing-using-DRAM (PuD-SSD) operation.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::UnsupportedOperation`] for ops outside the PuD
    /// set.
    pub fn execute_pud(
        &mut self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        let banks_free = self.state.dram_banks.free_units(earliest).max(1) as u32;
        let cost = self.models.pud.op_cost(op, elem_bits, lanes, banks_free)?;
        let mut ready = earliest;
        for _ in 0..cost.sub_ops {
            let (_, end, _) = self.state.dram_banks.reserve(earliest, cost.latency);
            ready = ready.max(end);
        }
        self.state.energy.charge(EnergySource::Pud, cost.energy);
        Ok(OpCompletion {
            ready,
            breakdown: CostBreakdown {
                compute: cost.latency,
                ..CostBreakdown::zero()
            },
            energy: cost.energy,
        })
    }

    /// Executes an operation on an ISP compute core.
    pub fn execute_isp(
        &mut self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        earliest: SimTime,
    ) -> OpCompletion {
        let cost = self.models.isp.op_cost(op, elem_bits, lanes);
        let (_, end, _) = self.state.compute_cores.reserve(earliest, cost.latency);
        self.state.energy.charge(EnergySource::Isp, cost.energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                compute: cost.latency,
                ..CostBreakdown::zero()
            },
            energy: cost.energy,
        }
    }

    // ------------------------------------------------------------------
    // Cost-function estimates (no side effects on the timelines)
    // ------------------------------------------------------------------

    /// Un-contended compute latency of `op` on `resource`, or `None` if the
    /// resource cannot execute it. This is the `latency_comp` feature.
    ///
    /// For the canonical vector shape this is a precomputed table lookup;
    /// other shapes fall back to the exact model evaluation (bit-identical
    /// either way, see [`EstimateTable`]).
    #[inline]
    pub fn estimate_compute(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Duration> {
        self.models.estimate_compute(resource, op, elem_bits, lanes)
    }

    /// Un-contended compute *energy* of `op` on `resource`, or `None` if the
    /// resource cannot execute it (used by the Ideal policy, which bypasses
    /// the contention timelines entirely).
    #[inline]
    pub fn estimate_compute_energy(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Energy> {
        self.models
            .estimate_compute_energy(resource, op, elem_bits, lanes)
    }

    /// Static (contention-free) estimate of moving `bytes` from `from` to
    /// `to` — the precomputed `latency_dm` table of §4.3.2. Canonical-sized
    /// vectors hit the precomputed table; other sizes are computed exactly.
    #[inline]
    pub fn estimate_move(&self, from: DataLocation, to: DataLocation, bytes: u64) -> Duration {
        self.models.estimate_move(from, to, bytes)
    }

    /// Hoists the per-resource compute and static-move estimates a strip of
    /// homogeneous instructions shares (see
    /// [`EstimateTable::estimate_batch`]). Each entry equals the matching
    /// [`SsdDevice::estimate_compute`] / [`SsdDevice::estimate_move`] answer
    /// bit-for-bit.
    #[inline]
    pub fn estimate_strip(
        &self,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        vector_bytes: u64,
    ) -> StripEstimates {
        self.models
            .estimate_strip(op, elem_bits, lanes, vector_bytes)
    }

    /// The queueing delay a new operation would currently see on `resource`
    /// (the `delay_queue` feature).
    pub fn queue_delay(&self, resource: Resource, at: SimTime) -> Duration {
        match resource {
            Resource::Isp => self.state.compute_cores.queue_delay(at),
            Resource::PudSsd => self.state.dram_banks.queue_delay(at),
            Resource::Ifp => self.state.dies.queue_delay(at),
        }
    }

    /// Utilization of `resource` over `[0, now]` (the signal BW-Offloading
    /// style policies use).
    pub fn utilization(&self, resource: Resource, now: SimTime) -> f64 {
        match resource {
            Resource::Isp => self.state.compute_cores.utilization(now),
            Resource::PudSsd => {
                0.5 * (self.state.dram_banks.utilization(now)
                    + self.state.dram_bus.utilization(now))
            }
            Resource::Ifp => self.state.dies.utilization(now),
        }
    }

    /// Mean flash-channel utilization over `[0, now]`.
    pub fn channel_utilization(&self, now: SimTime) -> f64 {
        if self.state.channels.is_empty() {
            return 0.0;
        }
        self.state
            .channels
            .iter()
            .map(|c| c.utilization(now))
            .sum::<f64>()
            / self.state.channels.len() as f64
    }

    /// Per-resource completed-operation counts `(isp, pud, ifp)`.
    pub fn completed_ops(&self) -> (u64, u64, u64) {
        (
            self.state.compute_cores.completed(),
            self.state.dram_banks.completed(),
            self.state.dies.completed(),
        )
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn ifp_placement(&self, operand_pages: &[LogicalPageId]) -> IfpPlacement {
        // Single pass, no heap allocation: compare every mapped operand
        // address against the first one (instructions have ≤ 3 operands).
        let mut first = None;
        let mut mapped: u32 = 0;
        let mut same_block = true;
        let mut same_plane = true;
        for p in operand_pages {
            let Some(addr) = self.state.ftl.peek(*p) else {
                continue;
            };
            match first {
                None => first = Some(addr),
                Some(f) => {
                    same_block &= addr.same_block(f);
                    same_plane &= addr.same_plane(f);
                }
            }
            mapped += 1;
        }
        if mapped < 2 {
            return IfpPlacement::SameBlock { operands: 2 };
        }
        if same_block {
            IfpPlacement::SameBlock { operands: mapped }
        } else if same_plane {
            IfpPlacement::SamePlane { operands: mapped }
        } else {
            IfpPlacement::Scattered { operands: mapped }
        }
    }

    /// Reads one mapped page from flash into the SSD-internal buffers
    /// (die sensing + channel DMA + DRAM bus write). Transient read errors
    /// injected by the fault plan are recovered by re-sensing the page: each
    /// retry occupies the die for another full page read and charges another
    /// read's energy.
    fn flash_read_page(&mut self, page: LogicalPageId, earliest: SimTime) -> Result<OpCompletion> {
        let (addr, l2p_hit) = self.state.ftl.translate(page)?;
        let geo = self.state.ftl.flash_state().geometry();
        let die = geo.die_index_of(addr) as usize;
        let channel = addr.channel as usize % self.state.channels.len();
        let senses = 1 + self.state.ftl.roll_read_retries(addr) as u64;

        let l2p_penalty = if l2p_hit {
            Duration::ZERO
        } else {
            self.models.cfg.overheads.l2p_lookup_flash
        };
        let sense_start = earliest + l2p_penalty;
        let sense_service = self.models.flash_timing.read_page() * senses;
        let (_, sense_end) = self
            .state
            .dies
            .reserve_unit(die, sense_start, sense_service);
        let (_, dma_end) =
            self.state.channels[channel].reserve(sense_end, self.models.flash_timing.page_dma());
        let bus = self.state.dram_bus.reserve(
            dma_end,
            self.models
                .dram_timing
                .bus_transfer(self.models.cfg.flash.page_bytes),
        );

        let energy = self.models.flash_timing.read_energy() * senses
            + self.models.flash_timing.dma_energy()
            + self
                .models
                .dram_timing
                .transfer_energy(self.models.cfg.flash.page_bytes);
        self.state.energy.charge(EnergySource::FlashRead, energy);
        Ok(OpCompletion {
            ready: bus.1,
            breakdown: CostBreakdown {
                flash_array: sense_service + l2p_penalty,
                internal_data_movement: self.models.flash_timing.page_dma()
                    + self
                        .models
                        .dram_timing
                        .bus_transfer(self.models.cfg.flash.page_bytes),
                ..CostBreakdown::zero()
            },
            energy,
        })
    }

    /// Commits the dirty copy of `page` held at `from` back to flash
    /// (out-of-place program through the FTL, including any GC work).
    fn commit_page(
        &mut self,
        page: LogicalPageId,
        from: DataLocation,
        earliest: SimTime,
    ) -> Result<OpCompletion> {
        // Stage the data to the channel: DRAM/SRAM read over the internal bus.
        let bus = self.bus_move(self.models.cfg.flash.page_bytes, earliest);
        let (new_addr, gc) = self.state.ftl.rewrite(page)?;
        let geo = self.state.ftl.flash_state().geometry();
        let die = geo.die_index_of(new_addr) as usize;
        let channel = new_addr.channel as usize % self.state.channels.len();
        let (_, dma_end) =
            self.state.channels[channel].reserve(bus.ready, self.models.flash_timing.page_dma());
        let (_, prog_end) =
            self.state
                .dies
                .reserve_unit(die, dma_end, self.models.flash_timing.program_page());

        let mut energy =
            self.models.flash_timing.dma_energy() + self.models.flash_timing.program_energy();
        let mut flash_time = self.models.flash_timing.program_page();
        // Garbage collection triggered by this commit: each relocation is a
        // read + program, each erase a block erase.
        if !gc.is_empty() {
            let reloc = gc.relocated_pages;
            let gc_latency = (self.models.flash_timing.read_page()
                + self.models.flash_timing.program_page())
                * reloc
                + self.models.flash_timing.erase_block() * gc.erased_blocks;
            let (_, gc_end) = self.state.dies.reserve_unit(die, prog_end, gc_latency);
            flash_time += gc_latency;
            energy += (self.models.flash_timing.read_energy()
                + self.models.flash_timing.program_energy())
                * reloc;
            let _ = gc_end;
        }
        self.state.energy.charge(EnergySource::FlashCommit, energy);
        self.evict_residency(page, from);
        Ok(OpCompletion {
            ready: prog_end,
            breakdown: CostBreakdown {
                internal_data_movement: self.models.flash_timing.page_dma(),
                flash_array: flash_time,
                ..CostBreakdown::zero()
            },
            energy: energy + bus.energy,
        }
        .join(bus))
    }

    /// Anonymous flash read of `bytes` (used for intermediate values only).
    fn flash_read_bytes(&mut self, bytes: u64, earliest: SimTime) -> OpCompletion {
        let pages = bytes.div_ceil(self.models.cfg.flash.page_bytes).max(1);
        let service =
            (self.models.flash_timing.read_page() + self.models.flash_timing.page_dma()) * pages;
        let (_, end, _) = self.state.dies.reserve(earliest, service);
        let energy = (self.models.flash_timing.read_energy()
            + self.models.flash_timing.dma_energy())
            * pages;
        self.state.energy.charge(EnergySource::FlashRead, energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                flash_array: self.models.flash_timing.read_page() * pages,
                internal_data_movement: self.models.flash_timing.page_dma() * pages,
                ..CostBreakdown::zero()
            },
            energy,
        }
    }

    /// Anonymous flash program of `bytes` (used for intermediate values).
    fn flash_program_bytes(&mut self, bytes: u64, earliest: SimTime) -> OpCompletion {
        let pages = bytes.div_ceil(self.models.cfg.flash.page_bytes).max(1);
        let service =
            (self.models.flash_timing.page_dma() + self.models.flash_timing.program_page()) * pages;
        let (_, end, _) = self.state.dies.reserve(earliest, service);
        let energy = (self.models.flash_timing.dma_energy()
            + self.models.flash_timing.program_energy())
            * pages;
        self.state.energy.charge(EnergySource::FlashProgram, energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                flash_array: self.models.flash_timing.program_page() * pages,
                internal_data_movement: self.models.flash_timing.page_dma() * pages,
                ..CostBreakdown::zero()
            },
            energy,
        }
    }

    fn dram_to_ctrl_transfer(&mut self, earliest: SimTime) -> OpCompletion {
        self.bus_move(self.models.cfg.flash.page_bytes, earliest)
    }

    fn bus_move(&mut self, bytes: u64, earliest: SimTime) -> OpCompletion {
        let service = self.models.dram_timing.bus_transfer(bytes);
        let (_, end) = self.state.dram_bus.reserve(earliest, service);
        let energy = self.models.dram_timing.transfer_energy(bytes);
        self.state.energy.charge(EnergySource::DramBus, energy);
        OpCompletion {
            ready: end,
            breakdown: CostBreakdown {
                internal_data_movement: service,
                ..CostBreakdown::zero()
            },
            energy,
        }
    }

    fn note_residency(&mut self, page: LogicalPageId, loc: DataLocation) {
        match loc {
            DataLocation::Dram => {
                if self.state.dram_resident.insert(page) {
                    self.state.dram_order.push_back(page);
                    while self.state.dram_resident.len() > self.state.dram_capacity_pages {
                        if let Some(victim) = self.state.dram_order.pop_front() {
                            // Never silently drop a dirty DRAM-owned page.
                            if self.state.ftl.coherence().owner(victim) != DataLocation::Dram {
                                self.state.dram_resident.remove(&victim);
                            } else {
                                self.state.dram_order.push_back(victim);
                                break;
                            }
                        }
                    }
                }
            }
            DataLocation::CtrlSram => {
                if self.state.ctrl_resident.insert(page) {
                    self.state.ctrl_order.push_back(page);
                    while self.state.ctrl_resident.len() > self.state.ctrl_capacity_pages {
                        if let Some(victim) = self.state.ctrl_order.pop_front() {
                            if self.state.ftl.coherence().owner(victim) != DataLocation::CtrlSram {
                                self.state.ctrl_resident.remove(&victim);
                            } else {
                                self.state.ctrl_order.push_back(victim);
                                break;
                            }
                        }
                    }
                }
            }
            DataLocation::Host => {
                if self.state.host_resident.insert(page) {
                    self.state.host_order.push_back(page);
                    while self.state.host_resident.len() > HOST_CACHE_PAGES {
                        if let Some(victim) = self.state.host_order.pop_front() {
                            // Dirty host-owned results stay pinned until they
                            // are written back.
                            if self.state.ftl.coherence().owner(victim) != DataLocation::Host {
                                self.state.host_resident.remove(&victim);
                            } else {
                                self.state.host_order.push_back(victim);
                                break;
                            }
                        }
                    }
                }
            }
            DataLocation::Flash => {}
        }
    }

    fn evict_residency(&mut self, page: LogicalPageId, from: DataLocation) {
        match from {
            DataLocation::Dram => {
                self.state.dram_resident.remove(&page);
            }
            DataLocation::CtrlSram => {
                self.state.ctrl_resident.remove(&page);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::ConduitError;

    fn device() -> SsdDevice {
        SsdDevice::new(&SsdConfig::small_for_tests()).unwrap()
    }

    fn pages(range: std::ops::Range<u64>) -> Vec<LogicalPageId> {
        range.map(LogicalPageId::new).collect()
    }

    #[test]
    fn unmapped_page_movement_fails() {
        let mut dev = device();
        assert!(dev
            .ensure_at(LogicalPageId::new(0), DataLocation::Dram, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn flash_to_dram_movement_costs_a_read() {
        let mut dev = device();
        dev.map_pages(&pages(0..1), None).unwrap();
        let c = dev
            .ensure_at(LogicalPageId::new(0), DataLocation::Dram, SimTime::ZERO)
            .unwrap();
        // At least one tR (22.5 us) plus a channel DMA.
        assert!(c.ready.saturating_since(SimTime::ZERO) > Duration::from_us(22.5));
        assert!(c.breakdown.flash_array >= Duration::from_us(22.5));
        assert_eq!(dev.locate(LogicalPageId::new(0)), DataLocation::Dram);
        // Second request is free: the page is already cached.
        let again = dev
            .ensure_at(LogicalPageId::new(0), DataLocation::Dram, c.ready)
            .unwrap();
        assert_eq!(again.ready, c.ready);
        assert!(again.energy.is_zero());
    }

    #[test]
    fn dirty_page_moves_through_flash_commit() {
        let mut dev = device();
        dev.map_pages(&pages(0..1), None).unwrap();
        let page = LogicalPageId::new(0);
        // A PuD computation wrote the page in DRAM.
        dev.record_result_write(page, DataLocation::Dram, SimTime::ZERO)
            .unwrap();
        assert_eq!(dev.locate(page), DataLocation::Dram);
        // IFP now needs it in flash: the dirty copy must be committed.
        let c = dev
            .ensure_at(page, DataLocation::Flash, SimTime::ZERO)
            .unwrap();
        assert!(c.breakdown.flash_array >= Duration::from_us(400.0));
        assert_eq!(dev.locate(page), DataLocation::Flash);
    }

    #[test]
    fn execute_dispatches_to_all_resources() {
        let mut dev = device();
        dev.map_group(&pages(0..2), Some(0)).unwrap();
        let ps = pages(0..2);
        for resource in Resource::ALL {
            let c = dev
                .execute(resource, OpType::Add, 32, 4096, &ps, SimTime::ZERO)
                .unwrap();
            assert!(c.ready > SimTime::ZERO);
            assert!(c.energy > Energy::ZERO);
        }
        let err = dev
            .execute(Resource::Ifp, OpType::Div, 32, 4096, &ps, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ConduitError::UnsupportedOperation { .. }));
    }

    #[test]
    fn colocated_operands_make_ifp_cheaper_than_scattered() {
        let mut dev = device();
        dev.map_group(&pages(0..2), Some(0)).unwrap();
        // Striped pages land on different planes.
        dev.map_pages(&pages(10..12), None).unwrap();
        let colocated = dev
            .execute_ifp(OpType::And, 32, 4096, &pages(0..2), SimTime::ZERO)
            .unwrap();
        let scattered = dev
            .execute_ifp(OpType::And, 32, 4096, &pages(10..12), SimTime::ZERO)
            .unwrap();
        let co = colocated.ready.saturating_since(SimTime::ZERO);
        let sc = scattered.ready.saturating_since(SimTime::ZERO);
        assert!(sc > co * 2);
    }

    #[test]
    fn queue_delays_grow_with_backlog() {
        let mut dev = device();
        assert_eq!(
            dev.queue_delay(Resource::Isp, SimTime::ZERO),
            Duration::ZERO
        );
        for _ in 0..4 {
            dev.execute_isp(OpType::Mul, 32, 4096, SimTime::ZERO);
        }
        assert!(dev.queue_delay(Resource::Isp, SimTime::ZERO) > Duration::ZERO);
        assert!(dev.utilization(Resource::Isp, SimTime::ZERO + Duration::from_us(10.0)) > 0.0);
    }

    #[test]
    fn estimates_reflect_supportability_and_magnitude() {
        let dev = device();
        assert!(dev
            .estimate_compute(Resource::Ifp, OpType::Div, 32, 4096)
            .is_none());
        let isp = dev
            .estimate_compute(Resource::Isp, OpType::Xor, 32, 4096)
            .unwrap();
        let pud = dev
            .estimate_compute(Resource::PudSsd, OpType::Xor, 32, 4096)
            .unwrap();
        // PuD is far faster than a single embedded core for bulk bitwise ops.
        assert!(pud < isp);
        // Static data-movement estimates: flash→DRAM is dominated by tR.
        let dm = dev.estimate_move(DataLocation::Flash, DataLocation::Dram, 16 * 1024);
        assert!(dm > Duration::from_us(22.5 * 4.0));
        assert_eq!(
            dev.estimate_move(DataLocation::Dram, DataLocation::Dram, 4096),
            Duration::ZERO
        );
    }

    #[test]
    fn host_transfer_uses_the_link_and_counts_energy() {
        let mut dev = device();
        let c = dev.host_transfer(1 << 20, true, SimTime::ZERO);
        assert!(c.breakdown.host_data_movement > Duration::from_us(100.0));
        assert!(dev.energy_meter().data_movement() > Energy::ZERO);
        // Back-to-back transfers serialize on the link.
        let c2 = dev.host_transfer(1 << 20, true, SimTime::ZERO);
        assert!(c2.ready > c.ready);
    }

    #[test]
    fn offloader_overhead_occupies_the_offloader_core() {
        let mut dev = device();
        let a = dev.offloader_busy(Duration::from_us(2.0), SimTime::ZERO);
        let b = dev.offloader_busy(Duration::from_us(2.0), SimTime::ZERO);
        assert_eq!(
            b.ready.saturating_since(SimTime::ZERO),
            Duration::from_us(4.0)
        );
        assert!(a.ready < b.ready);
    }

    #[test]
    fn completed_ops_counts_increase() {
        let mut dev = device();
        dev.execute_isp(OpType::Add, 32, 4096, SimTime::ZERO);
        dev.execute_pud(OpType::Add, 32, 4096, SimTime::ZERO)
            .unwrap();
        let (isp, pud, _ifp) = dev.completed_ops();
        assert!(isp >= 1);
        assert!(pud >= 1);
    }
}
