//! Energy accounting split into data movement and computation.
//!
//! Figure 7(b) of the paper reports energy normalized to CPU with each bar
//! split into *data movement* energy and *computation* energy; the meter
//! keeps exactly that split, with a finer per-source breakdown for analysis.

use std::collections::BTreeMap;

use conduit_types::Energy;

/// The coarse category an energy contribution belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyCategory {
    /// Moving bytes: PCIe transfers, flash channel DMA, DRAM bus traffic,
    /// flash reads/programs performed only to relocate data.
    DataMovement,
    /// Actual computation on any execution site.
    Compute,
}

/// Accumulates energy by category and by named source.
///
/// # Examples
///
/// ```
/// use conduit_sim::{EnergyCategory, EnergyMeter};
/// use conduit_types::Energy;
///
/// let mut meter = EnergyMeter::new();
/// meter.add(EnergyCategory::Compute, "ifp", Energy::from_nj(10.0));
/// meter.add(EnergyCategory::DataMovement, "pcie", Energy::from_nj(30.0));
/// assert_eq!(meter.total(), Energy::from_nj(40.0));
/// assert_eq!(meter.data_movement(), Energy::from_nj(30.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyMeter {
    compute: Energy,
    data_movement: Energy,
    by_source: BTreeMap<String, Energy>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `energy` under `category`, attributed to `source`.
    pub fn add(&mut self, category: EnergyCategory, source: &str, energy: Energy) {
        match category {
            EnergyCategory::Compute => self.compute += energy,
            EnergyCategory::DataMovement => self.data_movement += energy,
        }
        *self.by_source.entry(source.to_string()).or_default() += energy;
    }

    /// Total energy recorded.
    pub fn total(&self) -> Energy {
        self.compute + self.data_movement
    }

    /// Energy spent on computation.
    pub fn compute(&self) -> Energy {
        self.compute
    }

    /// Energy spent moving data.
    pub fn data_movement(&self) -> Energy {
        self.data_movement
    }

    /// Fraction of the total energy that is data movement (0 when nothing
    /// has been recorded).
    pub fn data_movement_fraction(&self) -> f64 {
        let total = self.total().as_nj();
        if total == 0.0 {
            0.0
        } else {
            self.data_movement.as_nj() / total
        }
    }

    /// Energy attributed to each named source.
    pub fn by_source(&self) -> &BTreeMap<String, Energy> {
        &self.by_source
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.compute += other.compute;
        self.data_movement += other.data_movement;
        for (k, v) in &other.by_source {
            *self.by_source.entry(k.clone()).or_default() += *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_separately() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Compute, "isp", Energy::from_nj(5.0));
        m.add(EnergyCategory::Compute, "pud", Energy::from_nj(7.0));
        m.add(EnergyCategory::DataMovement, "channel", Energy::from_nj(3.0));
        assert_eq!(m.compute(), Energy::from_nj(12.0));
        assert_eq!(m.data_movement(), Energy::from_nj(3.0));
        assert_eq!(m.total(), Energy::from_nj(15.0));
        assert!((m.data_movement_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sources_are_tracked() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Compute, "isp", Energy::from_nj(5.0));
        m.add(EnergyCategory::Compute, "isp", Energy::from_nj(5.0));
        assert_eq!(m.by_source()["isp"], Energy::from_nj(10.0));
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.add(EnergyCategory::Compute, "isp", Energy::from_nj(1.0));
        let mut b = EnergyMeter::new();
        b.add(EnergyCategory::DataMovement, "pcie", Energy::from_nj(2.0));
        b.add(EnergyCategory::Compute, "isp", Energy::from_nj(3.0));
        a.merge(&b);
        assert_eq!(a.total(), Energy::from_nj(6.0));
        assert_eq!(a.by_source()["isp"], Energy::from_nj(4.0));
    }

    #[test]
    fn empty_meter_has_zero_fraction() {
        assert_eq!(EnergyMeter::new().data_movement_fraction(), 0.0);
    }
}
