//! Energy accounting split into data movement and computation.
//!
//! Figure 7(b) of the paper reports energy normalized to CPU with each bar
//! split into *data movement* energy and *computation* energy; the meter
//! keeps exactly that split, with a finer per-source breakdown for analysis.
//!
//! The meter sits on the simulator's per-instruction hot path (every flash
//! read, DRAM bus transfer, host-link transfer and compute op charges it),
//! so attribution is a typed [`EnergySource`] indexing a fixed-size array —
//! no string formatting, hashing or heap allocation per charge.

use conduit_types::bytes::{put_f64, Reader};
use conduit_types::{Energy, EnergySource, Result};

/// The coarse category an energy contribution belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyCategory {
    /// Moving bytes: PCIe transfers, flash channel DMA, DRAM bus traffic,
    /// flash reads/programs performed only to relocate data.
    DataMovement,
    /// Actual computation on any execution site.
    Compute,
}

impl From<EnergySource> for EnergyCategory {
    fn from(source: EnergySource) -> Self {
        if source.is_compute() {
            EnergyCategory::Compute
        } else {
            EnergyCategory::DataMovement
        }
    }
}

/// Accumulates energy by category and by source.
///
/// # Examples
///
/// ```
/// use conduit_sim::EnergyMeter;
/// use conduit_types::{Energy, EnergySource};
///
/// let mut meter = EnergyMeter::new();
/// meter.charge(EnergySource::Ifp, Energy::from_nj(10.0));
/// meter.charge(EnergySource::HostLink, Energy::from_nj(30.0));
/// assert_eq!(meter.total(), Energy::from_nj(40.0));
/// assert_eq!(meter.data_movement(), Energy::from_nj(30.0));
/// assert_eq!(meter.source(EnergySource::Ifp), Energy::from_nj(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeter {
    compute: Energy,
    data_movement: Energy,
    by_source: [Energy; EnergySource::COUNT],
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `energy`, attributed to `source` (whose kind determines the
    /// compute / data-movement category). Allocation-free.
    #[inline]
    pub fn charge(&mut self, source: EnergySource, energy: Energy) {
        match EnergyCategory::from(source) {
            EnergyCategory::Compute => self.compute += energy,
            EnergyCategory::DataMovement => self.data_movement += energy,
        }
        self.by_source[source.index()] += energy;
    }

    /// Total energy recorded under one category.
    pub fn category(&self, category: EnergyCategory) -> Energy {
        match category {
            EnergyCategory::Compute => self.compute,
            EnergyCategory::DataMovement => self.data_movement,
        }
    }

    /// Total energy recorded.
    pub fn total(&self) -> Energy {
        self.compute + self.data_movement
    }

    /// Energy spent on computation.
    pub fn compute(&self) -> Energy {
        self.compute
    }

    /// Energy spent moving data.
    pub fn data_movement(&self) -> Energy {
        self.data_movement
    }

    /// Fraction of the total energy that is data movement (0 when nothing
    /// has been recorded).
    pub fn data_movement_fraction(&self) -> f64 {
        let total = self.total().as_nj();
        if total == 0.0 {
            0.0
        } else {
            self.data_movement.as_nj() / total
        }
    }

    /// Energy attributed to one source.
    pub fn source(&self, source: EnergySource) -> Energy {
        self.by_source[source.index()]
    }

    /// Iterator over `(source, energy)` for every source that recorded any
    /// energy, in dense-index order.
    pub fn by_source(&self) -> impl Iterator<Item = (EnergySource, Energy)> + '_ {
        EnergySource::ALL
            .iter()
            .map(move |&s| (s, self.by_source[s.index()]))
            .filter(|(_, e)| !e.is_zero())
    }

    /// Appends the accumulated totals (category sums and the per-source
    /// array, as exact IEEE-754 bit patterns) to `out`.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_f64(out, self.compute.as_nj());
        put_f64(out, self.data_movement.as_nj());
        for source in &self.by_source {
            put_f64(out, source.as_nj());
        }
    }

    /// Decodes a meter serialized by [`EnergyMeter::encode_into`]. The
    /// category sums are stored (not re-derived) so floating-point
    /// accumulation order never changes the restored totals.
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let mut meter = EnergyMeter::new();
        meter.compute = Energy::from_nj(r.f64()?);
        meter.data_movement = Energy::from_nj(r.f64()?);
        for source in &mut meter.by_source {
            *source = Energy::from_nj(r.f64()?);
        }
        Ok(meter)
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.compute += other.compute;
        self.data_movement += other.data_movement;
        for (mine, theirs) in self.by_source.iter_mut().zip(other.by_source.iter()) {
            *mine += *theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_separately() {
        let mut m = EnergyMeter::new();
        m.charge(EnergySource::Isp, Energy::from_nj(5.0));
        m.charge(EnergySource::Pud, Energy::from_nj(7.0));
        m.charge(EnergySource::FlashRead, Energy::from_nj(3.0));
        assert_eq!(m.compute(), Energy::from_nj(12.0));
        assert_eq!(m.data_movement(), Energy::from_nj(3.0));
        assert_eq!(m.total(), Energy::from_nj(15.0));
        assert!((m.data_movement_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sources_are_tracked() {
        let mut m = EnergyMeter::new();
        m.charge(EnergySource::Isp, Energy::from_nj(5.0));
        m.charge(EnergySource::Isp, Energy::from_nj(5.0));
        assert_eq!(m.source(EnergySource::Isp), Energy::from_nj(10.0));
        let nonzero: Vec<_> = m.by_source().collect();
        assert_eq!(nonzero, vec![(EnergySource::Isp, Energy::from_nj(10.0))]);
    }

    #[test]
    fn category_follows_source_kind() {
        assert_eq!(
            EnergyCategory::from(EnergySource::Ifp),
            EnergyCategory::Compute
        );
        assert_eq!(
            EnergyCategory::from(EnergySource::DramBus),
            EnergyCategory::DataMovement
        );
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.charge(EnergySource::Isp, Energy::from_nj(1.0));
        let mut b = EnergyMeter::new();
        b.charge(EnergySource::HostLink, Energy::from_nj(2.0));
        b.charge(EnergySource::Isp, Energy::from_nj(3.0));
        a.merge(&b);
        assert_eq!(a.total(), Energy::from_nj(6.0));
        assert_eq!(a.source(EnergySource::Isp), Energy::from_nj(4.0));
    }

    #[test]
    fn empty_meter_has_zero_fraction() {
        assert_eq!(EnergyMeter::new().data_movement_fraction(), 0.0);
    }

    #[test]
    fn charge_is_copy_sized_and_stack_only() {
        // The meter is a plain Copy struct: charging cannot allocate.
        fn assert_copy<T: Copy>() {}
        assert_copy::<EnergyMeter>();
    }
}
