//! Deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use conduit_types::SimTime;

/// A time-ordered event queue.
///
/// Events scheduled for the same time are delivered in the order they were
/// scheduled (FIFO), which keeps simulations deterministic regardless of heap
/// internals.
///
/// # Examples
///
/// ```
/// use conduit_sim::EventQueue;
/// use conduit_types::{Duration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::ZERO + Duration::from_ns(5.0), "later");
/// q.schedule(SimTime::ZERO, "now");
/// assert_eq!(q.pop().unwrap().1, "now");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::Duration;

    fn at(ns: f64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(at(30.0), 3);
        q.schedule(at(10.0), 1);
        q.schedule(at(20.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(at(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_holds_across_interleaved_schedule_and_pop() {
        // Same-time FIFO must be global (sequence-number based), not merely
        // per-batch: events scheduled after a pop still come out after
        // earlier same-time events.
        let mut q = EventQueue::new();
        q.schedule(at(5.0), 0);
        q.schedule(at(5.0), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(at(5.0), 2);
        q.schedule(at(5.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn next_time_and_len() {
        let mut q = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.schedule(at(7.0), "x");
        q.schedule(at(3.0), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(at(3.0)));
    }
}
