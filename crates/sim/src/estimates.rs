//! Precomputed cost-estimate tables.
//!
//! Conduit's cost function asks the device for the *un-contended* compute
//! latency/energy of every candidate resource and the *static* data-movement
//! latency between locations for **every instruction** it places. Both are
//! pure functions of the static [`SsdConfig`], so re-deriving them through
//! the substrate models per instruction is wasted work on the simulator's
//! hottest path.
//!
//! [`EstimateTable`] evaluates the models **once** at device construction for
//! the vector shapes the auto-vectorizer actually emits and stores the
//! results in flat arrays indexed by [`EstimateKey`] / [`DataLocation`]
//! encodings:
//!
//! * the canonical shape (`-force-vector-width=4096`, 32-bit lanes), and
//! * the INT8/LLM shape (4096 × 8-bit lanes) that the quantized
//!   `LlmTraining` / `LlamaInference` workloads vectorize to.
//!
//! Lookups for either shape are O(1) array loads; any other shape falls back
//! to the exact model evaluation, so results are bit-identical to the
//! untabled path in all cases. [`EstimateTable::estimate_batch`] hoists the
//! per-(resource, location) lookups for a whole strip of homogeneous
//! instructions into one [`StripEstimates`] value so the run loop touches the
//! tables once per strip instead of once per instruction.

use conduit_ctrl::IspModel;
use conduit_dram::{DramTiming, PudModel};
use conduit_flash::{FlashTiming, IfpModel, IfpPlacement};
use conduit_types::inst::{DEFAULT_ELEM_BITS, DEFAULT_LANES};
use conduit_types::{DataLocation, Duration, Energy, EstimateKey, OpType, Resource, SsdConfig};

/// The un-contended latency and energy of one (resource, operation) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Expected computation latency (`latency_comp`).
    pub latency: Duration,
    /// Expected computation energy.
    pub energy: Energy,
}

/// Number of distinct data locations (indexes the move tables).
pub const LOC_COUNT: usize = DataLocation::ALL.len();

/// Number of candidate SSD compute resources (indexes [`StripEstimates`]).
pub const RESOURCE_COUNT: usize = Resource::ALL.len();

/// One precomputed shape: per-(resource, op) compute estimates and
/// per-(location, location) move estimates at a fixed vector shape.
#[derive(Debug, Clone, PartialEq)]
struct ShapeTable {
    elem_bits: u32,
    lanes: u32,
    canonical_bytes: u64,
    /// `None` = the resource does not support the operation.
    compute: [Option<CostEstimate>; EstimateKey::TABLE_LEN],
    /// Static move latency of one vector of this shape between locations.
    moves: [[Duration; LOC_COUNT]; LOC_COUNT],
}

impl ShapeTable {
    #[allow(clippy::too_many_arguments)]
    fn build(
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
        elem_bits: u32,
        lanes: u32,
    ) -> Self {
        let canonical_bytes = (lanes as u64) * (elem_bits as u64) / 8;

        let mut compute = [None; EstimateKey::TABLE_LEN];
        for resource in Resource::ALL {
            for op in OpType::ALL {
                let entry =
                    EstimateTable::evaluate(cfg, ifp, pud, isp, resource, op, elem_bits, lanes);
                compute[EstimateKey::new(resource, op).dense()] = entry;
            }
        }

        let mut moves = [[Duration::ZERO; LOC_COUNT]; LOC_COUNT];
        for from in DataLocation::ALL {
            for to in DataLocation::ALL {
                moves[from.encoding() as usize][to.encoding() as usize] =
                    EstimateTable::evaluate_move(
                        cfg,
                        flash_timing,
                        dram_timing,
                        from,
                        to,
                        canonical_bytes,
                    );
            }
        }

        ShapeTable {
            elem_bits,
            lanes,
            canonical_bytes,
            compute,
            moves,
        }
    }
}

/// Hoisted per-strip estimates: everything the cost function needs that
/// depends only on the strip's (op, shape), not on the individual
/// instruction. Indexed by [`Resource::index`] in [`Resource::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripEstimates {
    /// Un-contended compute estimate per candidate resource (`None` = the
    /// resource does not support the strip's operation).
    pub compute: [Option<CostEstimate>; RESOURCE_COUNT],
    /// Static move latency from each [`DataLocation`] (indexed by its
    /// encoding) to each resource's home location, at the strip's vector
    /// byte size.
    pub moves: [[Duration; LOC_COUNT]; RESOURCE_COUNT],
}

impl StripEstimates {
    /// The hoisted compute estimate for `resource`.
    #[inline]
    pub fn compute_for(&self, resource: Resource) -> Option<CostEstimate> {
        self.compute[resource.index()]
    }

    /// The hoisted static move latency from `loc` to `resource`'s home
    /// location.
    #[inline]
    pub fn move_from(&self, resource: Resource, loc: DataLocation) -> Duration {
        self.moves[resource.index()][loc.encoding() as usize]
    }
}

/// Per-(resource, op) compute estimates and per-(location, location) move
/// estimates, precomputed for the vector shapes the vectorizer emits.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateTable {
    /// Shape 0 is the canonical FP32 shape, shape 1 the INT8/LLM shape.
    shapes: [ShapeTable; 2],
}

impl EstimateTable {
    /// Builds the tables by evaluating the substrate models for every
    /// (resource, operation) pair and every (from, to) location pair at the
    /// canonical FP32 shape and the INT8/LLM shape.
    pub fn new(
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
    ) -> Self {
        let canonical = ShapeTable::build(
            cfg,
            ifp,
            pud,
            isp,
            flash_timing,
            dram_timing,
            DEFAULT_ELEM_BITS,
            DEFAULT_LANES,
        );
        let int8 = ShapeTable::build(
            cfg,
            ifp,
            pud,
            isp,
            flash_timing,
            dram_timing,
            8,
            DEFAULT_LANES,
        );
        EstimateTable {
            shapes: [canonical, int8],
        }
    }

    /// The exact model evaluation the table caches — also the fallback for
    /// non-tabled shapes, so table hits and misses agree bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<CostEstimate> {
        match resource {
            Resource::Ifp => ifp
                .op_cost(
                    op,
                    elem_bits,
                    lanes,
                    IfpPlacement::SameBlock { operands: 2 },
                )
                .ok()
                .map(|c| CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                }),
            Resource::PudSsd => pud
                .op_cost(op, elem_bits, lanes, cfg.dram.compute_units())
                .ok()
                .map(|c| CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                }),
            Resource::Isp => {
                let c = isp.op_cost(op, elem_bits, lanes);
                Some(CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                })
            }
        }
    }

    /// The exact static-move evaluation the table caches (the `latency_dm`
    /// table of §4.3.2), shared with the fallback path.
    pub fn evaluate_move(
        cfg: &SsdConfig,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
        from: DataLocation,
        to: DataLocation,
        bytes: u64,
    ) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let pages = bytes.div_ceil(cfg.flash.page_bytes).max(1);
        let per_page_read = flash_timing.read_page() + flash_timing.page_dma();
        let per_page_prog = flash_timing.page_dma() + flash_timing.program_page();
        let bus = dram_timing.bus_transfer(bytes);
        let link = cfg.link.nvme_cmd_latency + cfg.link.transfer_time(bytes);
        match (from, to) {
            (DataLocation::Flash, DataLocation::Dram) => per_page_read * pages + bus,
            (DataLocation::Flash, DataLocation::CtrlSram) => per_page_read * pages,
            (DataLocation::Dram, DataLocation::CtrlSram)
            | (DataLocation::CtrlSram, DataLocation::Dram) => bus,
            (DataLocation::Dram, DataLocation::Flash)
            | (DataLocation::CtrlSram, DataLocation::Flash) => per_page_prog * pages,
            (DataLocation::Flash, DataLocation::Host) => per_page_read * pages + link,
            (_, DataLocation::Host) | (DataLocation::Host, _) => link,
            // `from == to` is handled above; this arm is unreachable.
            _ => Duration::ZERO,
        }
    }

    /// Table lookup for a compute estimate, or `None` if the shape is not
    /// one of the tabled shapes (caller must fall back to the exact
    /// evaluation).
    #[inline]
    pub fn compute(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Option<CostEstimate>> {
        self.shapes
            .iter()
            .find(|s| elem_bits == s.elem_bits && lanes == s.lanes)
            .map(|s| s.compute[EstimateKey::new(resource, op).dense()])
    }

    /// Table lookup for a static move estimate, or `None` if `bytes` is not
    /// one of the tabled vector sizes.
    #[inline]
    pub fn move_latency(
        &self,
        from: DataLocation,
        to: DataLocation,
        bytes: u64,
    ) -> Option<Duration> {
        self.shapes
            .iter()
            .find(|s| bytes == s.canonical_bytes)
            .map(|s| s.moves[from.encoding() as usize][to.encoding() as usize])
    }

    /// The canonical vector shape `(elem_bits, lanes)` the primary table was
    /// built for.
    pub fn canonical_shape(&self) -> (u32, u32) {
        (self.shapes[0].elem_bits, self.shapes[0].lanes)
    }

    /// All tabled shapes, `(elem_bits, lanes)` each.
    pub fn shapes(&self) -> [(u32, u32); 2] {
        [
            (self.shapes[0].elem_bits, self.shapes[0].lanes),
            (self.shapes[1].elem_bits, self.shapes[1].lanes),
        ]
    }

    /// Hoists every per-resource estimate a strip of homogeneous
    /// instructions can share: the un-contended compute estimate per
    /// candidate resource and the static move latency from every data
    /// location to each resource's home location, all at the strip's shape.
    ///
    /// Table hits and exact fallbacks are combined per entry exactly as the
    /// scalar path would ([`Resource::supports`] first, then the tabled or
    /// exact estimate), so a [`StripEstimates`] answer is bit-identical to
    /// per-instruction queries.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_batch(
        &self,
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
        vector_bytes: u64,
    ) -> StripEstimates {
        let mut compute = [None; RESOURCE_COUNT];
        let mut moves = [[Duration::ZERO; LOC_COUNT]; RESOURCE_COUNT];
        for resource in Resource::ALL {
            let i = resource.index();
            compute[i] = if !resource.supports(op) {
                None
            } else {
                match self.compute(resource, op, elem_bits, lanes) {
                    Some(entry) => entry,
                    None => Self::evaluate(cfg, ifp, pud, isp, resource, op, elem_bits, lanes),
                }
            };
            let home = resource.home_location();
            for loc in DataLocation::ALL {
                moves[i][loc.encoding() as usize] = match self.move_latency(loc, home, vector_bytes)
                {
                    Some(d) => d,
                    None => {
                        Self::evaluate_move(cfg, flash_timing, dram_timing, loc, home, vector_bytes)
                    }
                };
            }
        }
        StripEstimates { compute, moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_and_models() -> (EstimateTable, SsdConfig, IfpModel, PudModel, IspModel) {
        let cfg = SsdConfig::small_for_tests();
        let ifp = IfpModel::new(&cfg.flash);
        let pud = PudModel::new(&cfg.dram);
        let isp = IspModel::new(&cfg.ctrl);
        let ft = FlashTiming::new(&cfg.flash);
        let dt = DramTiming::new(&cfg.dram);
        let table = EstimateTable::new(&cfg, &ifp, &pud, &isp, &ft, &dt);
        (table, cfg, ifp, pud, isp)
    }

    #[test]
    fn table_hits_match_direct_evaluation_exactly() {
        let (table, cfg, ifp, pud, isp) = table_and_models();
        for (bits, lanes) in table.shapes() {
            for resource in Resource::ALL {
                for op in OpType::ALL {
                    let hit = table.compute(resource, op, bits, lanes).unwrap();
                    let direct =
                        EstimateTable::evaluate(&cfg, &ifp, &pud, &isp, resource, op, bits, lanes);
                    assert_eq!(hit, direct, "{resource}/{op}@{bits}x{lanes} diverged");
                }
            }
        }
    }

    #[test]
    fn int8_shape_is_tabled() {
        let (table, ..) = table_and_models();
        assert_eq!(table.shapes()[1], (8, DEFAULT_LANES));
        assert!(table
            .compute(Resource::Isp, OpType::Add, 8, DEFAULT_LANES)
            .is_some());
        // The two shapes have distinct byte sizes, so the move tables are
        // unambiguous.
        let int8_bytes = u64::from(DEFAULT_LANES);
        assert!(table
            .move_latency(DataLocation::Flash, DataLocation::Dram, int8_bytes)
            .is_some());
    }

    #[test]
    fn non_canonical_shapes_miss_the_table() {
        let (table, ..) = table_and_models();
        assert!(table
            .compute(Resource::Isp, OpType::Add, 16, 4096)
            .is_none());
        assert!(table.compute(Resource::Isp, OpType::Add, 32, 100).is_none());
        assert!(table
            .move_latency(DataLocation::Flash, DataLocation::Dram, 1)
            .is_none());
    }

    #[test]
    fn unsupported_pairs_are_none_entries() {
        let (table, ..) = table_and_models();
        let (bits, lanes) = table.canonical_shape();
        assert!(table
            .compute(Resource::Ifp, OpType::Div, bits, lanes)
            .unwrap()
            .is_none());
        assert!(table
            .compute(Resource::PudSsd, OpType::Scalar, bits, lanes)
            .unwrap()
            .is_none());
        assert!(table
            .compute(Resource::Isp, OpType::Div, bits, lanes)
            .unwrap()
            .is_some());
    }

    #[test]
    fn move_table_is_zero_on_the_diagonal() {
        let (table, ..) = table_and_models();
        let bytes = 16 * 1024;
        for loc in DataLocation::ALL {
            assert_eq!(table.move_latency(loc, loc, bytes), Some(Duration::ZERO));
        }
        let f2d = table
            .move_latency(DataLocation::Flash, DataLocation::Dram, bytes)
            .unwrap();
        assert!(f2d > Duration::ZERO);
    }

    #[test]
    fn strip_estimates_match_scalar_queries() {
        let (table, cfg, ifp, pud, isp) = table_and_models();
        let ft = FlashTiming::new(&cfg.flash);
        let dt = DramTiming::new(&cfg.dram);
        // Tabled FP32 shape, tabled INT8 shape, and a non-tabled odd shape —
        // the strip answer must match exact evaluation in every case.
        for (bits, lanes) in [(32u32, 4096u32), (8, 4096), (32, 100)] {
            let bytes = (lanes as u64) * (bits as u64) / 8;
            for op in [OpType::Add, OpType::Div, OpType::And, OpType::Scalar] {
                let strip =
                    table.estimate_batch(&cfg, &ifp, &pud, &isp, &ft, &dt, op, bits, lanes, bytes);
                for resource in Resource::ALL {
                    let expect = if resource.supports(op) {
                        EstimateTable::evaluate(&cfg, &ifp, &pud, &isp, resource, op, bits, lanes)
                    } else {
                        None
                    };
                    assert_eq!(strip.compute_for(resource), expect);
                    for loc in DataLocation::ALL {
                        let exact = EstimateTable::evaluate_move(
                            &cfg,
                            &ft,
                            &dt,
                            loc,
                            resource.home_location(),
                            bytes,
                        );
                        assert_eq!(strip.move_from(resource, loc), exact);
                    }
                }
            }
        }
    }
}
