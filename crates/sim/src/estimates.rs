//! Precomputed cost-estimate tables.
//!
//! Conduit's cost function asks the device for the *un-contended* compute
//! latency/energy of every candidate resource and the *static* data-movement
//! latency between locations for **every instruction** it places. Both are
//! pure functions of the static [`SsdConfig`], so re-deriving them through
//! the substrate models per instruction is wasted work on the simulator's
//! hottest path.
//!
//! [`EstimateTable`] evaluates the models **once** at device construction for
//! the canonical vector shape the auto-vectorizer emits
//! (`-force-vector-width=4096`, 32-bit lanes) and stores the results in flat
//! arrays indexed by [`EstimateKey`] / [`DataLocation`] encodings. Lookups
//! for the canonical shape are O(1) array loads; any other shape falls back
//! to the exact model evaluation, so results are bit-identical to the
//! untabled path in all cases.

use conduit_ctrl::IspModel;
use conduit_dram::{DramTiming, PudModel};
use conduit_flash::{FlashTiming, IfpModel, IfpPlacement};
use conduit_types::inst::{DEFAULT_ELEM_BITS, DEFAULT_LANES};
use conduit_types::{DataLocation, Duration, Energy, EstimateKey, OpType, Resource, SsdConfig};

/// The un-contended latency and energy of one (resource, operation) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Expected computation latency (`latency_comp`).
    pub latency: Duration,
    /// Expected computation energy.
    pub energy: Energy,
}

const LOC_COUNT: usize = DataLocation::ALL.len();

/// Per-(resource, op) compute estimates and per-(location, location) move
/// estimates, precomputed for the canonical vector shape.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateTable {
    elem_bits: u32,
    lanes: u32,
    canonical_bytes: u64,
    /// `None` = the resource does not support the operation.
    compute: [Option<CostEstimate>; EstimateKey::TABLE_LEN],
    /// Static move latency of one canonical vector between locations.
    moves: [[Duration; LOC_COUNT]; LOC_COUNT],
}

impl EstimateTable {
    /// Builds the table by evaluating the substrate models for every
    /// (resource, operation) pair and every (from, to) location pair at the
    /// canonical vector shape.
    pub fn new(
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
    ) -> Self {
        let elem_bits = DEFAULT_ELEM_BITS;
        let lanes = DEFAULT_LANES;
        let canonical_bytes = (lanes as u64) * (elem_bits as u64) / 8;

        let mut compute = [None; EstimateKey::TABLE_LEN];
        for resource in Resource::ALL {
            for op in OpType::ALL {
                let entry = Self::evaluate(cfg, ifp, pud, isp, resource, op, elem_bits, lanes);
                compute[EstimateKey::new(resource, op).dense()] = entry;
            }
        }

        let mut moves = [[Duration::ZERO; LOC_COUNT]; LOC_COUNT];
        for from in DataLocation::ALL {
            for to in DataLocation::ALL {
                moves[from.encoding() as usize][to.encoding() as usize] =
                    Self::evaluate_move(cfg, flash_timing, dram_timing, from, to, canonical_bytes);
            }
        }

        EstimateTable {
            elem_bits,
            lanes,
            canonical_bytes,
            compute,
            moves,
        }
    }

    /// The exact model evaluation the table caches — also the fallback for
    /// non-canonical shapes, so table hits and misses agree bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        cfg: &SsdConfig,
        ifp: &IfpModel,
        pud: &PudModel,
        isp: &IspModel,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<CostEstimate> {
        match resource {
            Resource::Ifp => ifp
                .op_cost(
                    op,
                    elem_bits,
                    lanes,
                    IfpPlacement::SameBlock { operands: 2 },
                )
                .ok()
                .map(|c| CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                }),
            Resource::PudSsd => pud
                .op_cost(op, elem_bits, lanes, cfg.dram.compute_units())
                .ok()
                .map(|c| CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                }),
            Resource::Isp => {
                let c = isp.op_cost(op, elem_bits, lanes);
                Some(CostEstimate {
                    latency: c.latency,
                    energy: c.energy,
                })
            }
        }
    }

    /// The exact static-move evaluation the table caches (the `latency_dm`
    /// table of §4.3.2), shared with the fallback path.
    pub fn evaluate_move(
        cfg: &SsdConfig,
        flash_timing: &FlashTiming,
        dram_timing: &DramTiming,
        from: DataLocation,
        to: DataLocation,
        bytes: u64,
    ) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let pages = bytes.div_ceil(cfg.flash.page_bytes).max(1);
        let per_page_read = flash_timing.read_page() + flash_timing.page_dma();
        let per_page_prog = flash_timing.page_dma() + flash_timing.program_page();
        let bus = dram_timing.bus_transfer(bytes);
        let link = cfg.link.nvme_cmd_latency + cfg.link.transfer_time(bytes);
        match (from, to) {
            (DataLocation::Flash, DataLocation::Dram) => per_page_read * pages + bus,
            (DataLocation::Flash, DataLocation::CtrlSram) => per_page_read * pages,
            (DataLocation::Dram, DataLocation::CtrlSram)
            | (DataLocation::CtrlSram, DataLocation::Dram) => bus,
            (DataLocation::Dram, DataLocation::Flash)
            | (DataLocation::CtrlSram, DataLocation::Flash) => per_page_prog * pages,
            (DataLocation::Flash, DataLocation::Host) => per_page_read * pages + link,
            (_, DataLocation::Host) | (DataLocation::Host, _) => link,
            // `from == to` is handled above; this arm is unreachable.
            _ => Duration::ZERO,
        }
    }

    /// Table lookup for a compute estimate, or `None` if the shape is not
    /// the canonical one (caller must fall back to the exact evaluation).
    #[inline]
    pub fn compute(
        &self,
        resource: Resource,
        op: OpType,
        elem_bits: u32,
        lanes: u32,
    ) -> Option<Option<CostEstimate>> {
        if elem_bits == self.elem_bits && lanes == self.lanes {
            Some(self.compute[EstimateKey::new(resource, op).dense()])
        } else {
            None
        }
    }

    /// Table lookup for a static move estimate, or `None` if `bytes` is not
    /// the canonical vector size.
    #[inline]
    pub fn move_latency(
        &self,
        from: DataLocation,
        to: DataLocation,
        bytes: u64,
    ) -> Option<Duration> {
        if bytes == self.canonical_bytes {
            Some(self.moves[from.encoding() as usize][to.encoding() as usize])
        } else {
            None
        }
    }

    /// The canonical vector shape `(elem_bits, lanes)` the table was built
    /// for.
    pub fn canonical_shape(&self) -> (u32, u32) {
        (self.elem_bits, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_and_models() -> (EstimateTable, SsdConfig, IfpModel, PudModel, IspModel) {
        let cfg = SsdConfig::small_for_tests();
        let ifp = IfpModel::new(&cfg.flash);
        let pud = PudModel::new(&cfg.dram);
        let isp = IspModel::new(&cfg.ctrl);
        let ft = FlashTiming::new(&cfg.flash);
        let dt = DramTiming::new(&cfg.dram);
        let table = EstimateTable::new(&cfg, &ifp, &pud, &isp, &ft, &dt);
        (table, cfg, ifp, pud, isp)
    }

    #[test]
    fn table_hits_match_direct_evaluation_exactly() {
        let (table, cfg, ifp, pud, isp) = table_and_models();
        let (bits, lanes) = table.canonical_shape();
        for resource in Resource::ALL {
            for op in OpType::ALL {
                let hit = table.compute(resource, op, bits, lanes).unwrap();
                let direct =
                    EstimateTable::evaluate(&cfg, &ifp, &pud, &isp, resource, op, bits, lanes);
                assert_eq!(hit, direct, "{resource}/{op} table entry diverged");
            }
        }
    }

    #[test]
    fn non_canonical_shapes_miss_the_table() {
        let (table, ..) = table_and_models();
        assert!(table.compute(Resource::Isp, OpType::Add, 8, 4096).is_none());
        assert!(table.compute(Resource::Isp, OpType::Add, 32, 100).is_none());
        assert!(table
            .move_latency(DataLocation::Flash, DataLocation::Dram, 1)
            .is_none());
    }

    #[test]
    fn unsupported_pairs_are_none_entries() {
        let (table, ..) = table_and_models();
        let (bits, lanes) = table.canonical_shape();
        assert!(table
            .compute(Resource::Ifp, OpType::Div, bits, lanes)
            .unwrap()
            .is_none());
        assert!(table
            .compute(Resource::PudSsd, OpType::Scalar, bits, lanes)
            .unwrap()
            .is_none());
        assert!(table
            .compute(Resource::Isp, OpType::Div, bits, lanes)
            .unwrap()
            .is_some());
    }

    #[test]
    fn move_table_is_zero_on_the_diagonal() {
        let (table, ..) = table_and_models();
        let bytes = 16 * 1024;
        for loc in DataLocation::ALL {
            assert_eq!(table.move_latency(loc, loc, bytes), Some(Duration::ZERO));
        }
        let f2d = table
            .move_latency(DataLocation::Flash, DataLocation::Dram, bytes)
            .unwrap();
        assert!(f2d > Duration::ZERO);
    }
}
