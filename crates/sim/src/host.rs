//! Analytical host CPU and GPU models.
//!
//! The paper runs host baselines on a real Xeon Gold 5118 and an A100 GPU and
//! combines them with simulated SSD-to-host transfers. Here both processors
//! are modelled analytically with a roofline: per vector instruction the
//! latency is the larger of the compute-bound time (SIMD lanes × per-op
//! cycles) and the memory-bound time (operand bytes over the main-memory /
//! HBM bandwidth). The host↔SSD transfer itself is charged separately by the
//! runtime engine through the device's PCIe link model.

use conduit_types::{Duration, Energy, HostCpuConfig, HostGpuConfig, OpType};

fn op_cycle_weight(op: OpType) -> f64 {
    match op {
        OpType::Mul | OpType::ReduceAdd | OpType::ReduceMax => 2.0,
        OpType::Div => 10.0,
        OpType::Lookup | OpType::Shuffle => 2.0,
        OpType::Scalar => 4.0,
        _ => 1.0,
    }
}

fn operand_bytes(op: OpType, elem_bits: u32, lanes: u32) -> u64 {
    let vec_bytes = (lanes as u64) * (elem_bits as u64) / 8;
    // Sources + one destination stream.
    (op.arity() as u64 + 1) * vec_bytes
}

/// Roofline model of the host CPU.
///
/// # Examples
///
/// ```
/// use conduit_sim::HostCpuModel;
/// use conduit_types::{HostCpuConfig, OpType};
///
/// let cpu = HostCpuModel::new(&HostCpuConfig::default());
/// let add = cpu.compute_time(OpType::Add, 32, 4096);
/// let div = cpu.compute_time(OpType::Div, 32, 4096);
/// assert!(div >= add);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HostCpuModel {
    cfg: HostCpuConfig,
}

impl HostCpuModel {
    /// Builds the model from the CPU configuration.
    pub fn new(cfg: &HostCpuConfig) -> Self {
        HostCpuModel { cfg: cfg.clone() }
    }

    /// Latency of one vector instruction once its operands are resident in
    /// host memory.
    pub fn compute_time(&self, op: OpType, elem_bits: u32, lanes: u32) -> Duration {
        let c = &self.cfg;
        let lanes_per_uop = (c.simd_bytes * 8 / elem_bits).max(1) as f64;
        let cycles = if op == OpType::Scalar {
            // Control-heavy scalar regions run on one core without SIMD.
            lanes as f64 * op_cycle_weight(op)
        } else {
            (lanes as f64 / lanes_per_uop).ceil() * op_cycle_weight(op)
                / (c.uops_per_cycle * c.cores as f64)
        };
        let compute = Duration::from_secs(cycles / c.freq_hz);
        let memory =
            Duration::for_transfer(operand_bytes(op, elem_bits, lanes), c.mem_bytes_per_sec);
        compute.max(memory)
    }

    /// Energy the CPU package consumes while busy for `busy` time.
    pub fn energy(&self, busy: Duration) -> Energy {
        Energy::from_power(self.cfg.power_w, busy)
    }
}

/// Roofline model of the host GPU.
///
/// Consecutive vector instructions are assumed to be fused into kernels of
/// [`HostGpuModel::OPS_PER_KERNEL`] instructions, so the kernel-launch
/// overhead is amortized rather than paid per instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct HostGpuModel {
    cfg: HostGpuConfig,
}

impl HostGpuModel {
    /// Number of vector instructions assumed to be fused per kernel launch.
    pub const OPS_PER_KERNEL: u64 = 256;

    /// Builds the model from the GPU configuration.
    pub fn new(cfg: &HostGpuConfig) -> Self {
        HostGpuModel { cfg: cfg.clone() }
    }

    /// Latency of one vector instruction once its operands are resident in
    /// GPU memory.
    pub fn compute_time(&self, op: OpType, elem_bits: u32, lanes: u32) -> Duration {
        let c = &self.cfg;
        let total_lanes = (c.sms as f64) * (c.lanes_per_sm as f64) * (32.0 / elem_bits as f64);
        let waves = if op == OpType::Scalar {
            // Control-heavy code leaves most of the GPU idle.
            lanes as f64 / c.lanes_per_sm as f64
        } else {
            (lanes as f64 / total_lanes).ceil()
        };
        let cycles = waves * op_cycle_weight(op) * 4.0;
        let compute = Duration::from_secs(cycles / c.freq_hz);
        let memory =
            Duration::for_transfer(operand_bytes(op, elem_bits, lanes), c.mem_bytes_per_sec);
        let launch = Duration::from_ps(c.kernel_launch.as_ps() / Self::OPS_PER_KERNEL);
        compute.max(memory) + launch
    }

    /// Energy the GPU board consumes while busy for `busy` time.
    pub fn energy(&self, busy: Duration) -> Energy {
        Energy::from_power(self.cfg.power_w, busy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_costs_order_by_op_weight() {
        let cpu = HostCpuModel::new(&HostCpuConfig::default());
        let add = cpu.compute_time(OpType::Add, 32, 4096);
        let div = cpu.compute_time(OpType::Div, 32, 4096);
        let scalar = cpu.compute_time(OpType::Scalar, 32, 4096);
        // Simple vector ops are memory-bound, so divide can only tie or lose.
        assert!(div >= add);
        assert!(scalar > add);
    }

    #[test]
    fn cpu_is_memory_bound_for_simple_ops() {
        let cpu = HostCpuModel::new(&HostCpuConfig::default());
        // 3 × 16 KiB at 19.2 GB/s ≈ 2.56 us, far above the SIMD compute time.
        let t = cpu.compute_time(OpType::Xor, 32, 4096);
        assert!((t.as_us() - 2.56).abs() < 0.1);
    }

    #[test]
    fn gpu_is_faster_than_cpu_for_data_parallel_ops() {
        let cpu = HostCpuModel::new(&HostCpuConfig::default());
        let gpu = HostGpuModel::new(&HostGpuConfig::default());
        for op in [OpType::Add, OpType::Mul, OpType::Xor] {
            assert!(gpu.compute_time(op, 32, 4096) < cpu.compute_time(op, 32, 4096));
        }
    }

    #[test]
    fn gpu_is_poor_at_scalar_regions() {
        let gpu = HostGpuModel::new(&HostGpuConfig::default());
        let scalar = gpu.compute_time(OpType::Scalar, 32, 4096);
        let vector = gpu.compute_time(OpType::Add, 32, 4096);
        assert!(scalar > vector * 4);
    }

    #[test]
    fn energies_scale_with_busy_time_and_power() {
        let cpu = HostCpuModel::new(&HostCpuConfig::default());
        let gpu = HostGpuModel::new(&HostGpuConfig::default());
        let t = Duration::from_us(10.0);
        assert!(gpu.energy(t) > cpu.energy(t));
        assert_eq!(cpu.energy(Duration::ZERO), Energy::ZERO);
    }

    #[test]
    fn narrow_elements_do_not_increase_cost() {
        let gpu = HostGpuModel::new(&HostGpuConfig::default());
        let wide = gpu.compute_time(OpType::Add, 32, 4096);
        let narrow = gpu.compute_time(OpType::Add, 8, 4096);
        assert!(narrow <= wide);
    }
}
