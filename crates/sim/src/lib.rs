//! # conduit-sim
//!
//! Event-driven SSD simulation substrate for the Conduit NDP framework.
//!
//! The paper evaluates Conduit on an in-house event-driven SSD simulator that
//! inherits its core SSD model from MQSim and adds NDP compute models. This
//! crate is the Rust equivalent:
//!
//! * [`EventQueue`] — a deterministic discrete-event queue,
//! * [`SharedResource`] / [`ResourcePool`] — busy-time tracking for every
//!   contended unit (flash channels and dies, DRAM banks and bus, controller
//!   cores, the PCIe link), which is how queueing delays and contention are
//!   modelled,
//! * [`SsdDevice`] — the integrated device: FTL + flash + DRAM + controller
//!   models wired to the contention timelines, exposing the primitive
//!   operations the runtime offloading engine schedules (loading operands,
//!   committing results, executing IFP/PuD/ISP computations, host transfers),
//! * [`HostCpuModel`] / [`HostGpuModel`] — analytical roofline models of the
//!   host processors used by the outside-storage-processing baselines,
//! * [`EnergyMeter`], [`LatencyStats`], [`CostBreakdown`] — the accounting
//!   used to regenerate the paper's figures (energy split into data movement
//!   vs compute, tail latencies, execution-time breakdowns).
//!
//! ## Example
//!
//! ```
//! use conduit_sim::SsdDevice;
//! use conduit_types::{DataLocation, LogicalPageId, OpType, SimTime, SsdConfig};
//!
//! let mut dev = SsdDevice::new(&SsdConfig::small_for_tests())?;
//! dev.map_pages(&[LogicalPageId::new(0)], None)?;
//! let load = dev.ensure_at(LogicalPageId::new(0), DataLocation::Dram, SimTime::ZERO)?;
//! let exec = dev.execute_pud(OpType::Add, 32, 4096, load.ready)?;
//! assert!(exec.ready > load.ready);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod device;
mod energy;
mod engine;
mod estimates;
mod host;
mod resources;
mod state;
mod stats;

pub use device::{DeviceModels, OpCompletion, SsdDevice, StripWindow};
pub use energy::{EnergyCategory, EnergyMeter};
pub use engine::EventQueue;
pub use estimates::{CostEstimate, EstimateTable, StripEstimates, LOC_COUNT, RESOURCE_COUNT};
pub use host::{HostCpuModel, HostGpuModel};
pub use resources::{ResourcePool, SharedResource};
pub use state::{
    DeviceDelta, DeviceSnapshot, DeviceState, DEVICE_STATE_FORMAT_VERSION,
    DEVICE_STATE_FORMAT_VERSION_V1, DEVICE_STATE_FORMAT_VERSION_V2, DEVICE_STATE_MAGIC,
    DEVICE_STATE_MAGIC_V1, DEVICE_STATE_MAGIC_V2,
};
pub use stats::{CostBreakdown, LaneStats, LatencyStats};
