//! Contended-resource timelines.
//!
//! Every shared unit in the SSD (a flash channel, a flash die, a DRAM bank,
//! the DRAM bus, a controller core, the PCIe link) is modelled as a
//! [`SharedResource`]: a single server whose next free time advances as work
//! is reserved on it. Groups of interchangeable units (dies, banks, cores)
//! form a [`ResourcePool`] that always serves new work on the
//! earliest-available unit.
//!
//! This is the mechanism behind two of Conduit's cost-function features:
//! the *resource queueing delay* (how long until the unit is free) and the
//! implicit contention captured in data-movement times.

use conduit_types::bytes::{put_u64, Reader};
use conduit_types::{ConduitError, Duration, Result, SimTime};

/// A single contended unit with a busy-until timeline.
///
/// # Examples
///
/// ```
/// use conduit_sim::SharedResource;
/// use conduit_types::{Duration, SimTime};
///
/// let mut ch = SharedResource::new("flash-channel-0");
/// let (s1, e1) = ch.reserve(SimTime::ZERO, Duration::from_us(3.0));
/// let (s2, _e2) = ch.reserve(SimTime::ZERO, Duration::from_us(3.0));
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, e1); // second request queues behind the first
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedResource {
    name: String,
    busy_until: SimTime,
    total_busy: Duration,
    completed: u64,
}

impl SharedResource {
    /// Creates an idle resource.
    pub fn new(name: impl Into<String>) -> Self {
        SharedResource {
            name: name.into(),
            busy_until: SimTime::ZERO,
            total_busy: Duration::ZERO,
            completed: 0,
        }
    }

    /// The resource's name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserves the resource for `service` time, starting no earlier than
    /// `earliest`. Returns the actual `(start, end)` interval.
    pub fn reserve(&mut self, earliest: SimTime, service: Duration) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.total_busy += service;
        self.completed += 1;
        (start, end)
    }

    /// Pure form of [`SharedResource::reserve`]: the `(start, end)` interval
    /// a request arriving at `earliest` *would* get, without mutating the
    /// timeline. `probe` followed by [`SharedResource::commit`] with the same
    /// arguments is exactly one `reserve`.
    pub fn probe(&self, earliest: SimTime, service: Duration) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        (start, start + service)
    }

    /// Applies the reservation previewed by [`SharedResource::probe`].
    /// Returns the same window as the probe as long as no other reservation
    /// landed in between.
    pub fn commit(&mut self, earliest: SimTime, service: Duration) -> (SimTime, SimTime) {
        self.reserve(earliest, service)
    }

    /// Pure form of [`SharedResource::commit_batch`]: the `(start, end)`
    /// window a batch of `count` back-to-back slots of `service` each
    /// *would* occupy, without mutating the timeline. Because the whole
    /// timeline is a single `busy_until` watermark, the probe is exact: a
    /// `commit_batch` with the same arguments (and no interleaved
    /// reservation) lands on exactly this window.
    pub fn probe_batch(
        &self,
        earliest: SimTime,
        service: Duration,
        count: u64,
    ) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        (start, start + service * count)
    }

    /// Reserves `count` back-to-back slots of `service` each, the first
    /// starting no earlier than `earliest`, as **one** timeline update.
    /// Returns the `(start, end)` of the whole window; slot `i` occupies
    /// `[start + service·i, start + service·(i+1))`.
    ///
    /// Equivalent to `count` chained [`SharedResource::reserve`] calls where
    /// each call's `earliest` is at or before the previous end (each slot
    /// then starts exactly at `busy_until`): `busy_until`, `total_busy` and
    /// `completed` land on the same values because all the arithmetic is
    /// integer picoseconds. This is the *commit* half of the two-phase
    /// protocol: the batched engine probes windows speculatively (possibly
    /// on worker threads) and commits them in program order, so the
    /// committed timeline is bit-identical to the sequential one.
    pub fn commit_batch(
        &mut self,
        earliest: SimTime,
        service: Duration,
        count: u64,
    ) -> (SimTime, SimTime) {
        let (start, end) = self.probe_batch(earliest, service, count);
        self.busy_until = end;
        self.total_busy += service * count;
        self.completed += count;
        (start, end)
    }

    /// How long a request arriving at `at` would wait before the resource is
    /// free (the queueing delay feature of the cost function).
    pub fn queue_delay(&self, at: SimTime) -> Duration {
        self.busy_until.saturating_since(at)
    }

    /// The time at which the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated so far.
    pub fn total_busy(&self) -> Duration {
        self.total_busy
    }

    /// Number of reservations served.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Appends the timeline's state (busy-until, total busy time, completed
    /// count) to `out`; the name is configuration-derived and not stored.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.busy_until.as_ps());
        put_u64(out, self.total_busy.as_ps());
        put_u64(out, self.completed);
    }

    /// Restores the timeline state serialized by
    /// [`SharedResource::encode_into`], keeping this resource's name.
    pub(crate) fn restore_from(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.busy_until = SimTime::from_ps(r.counter()?);
        self.total_busy = Duration::from_ps(r.counter()?);
        self.completed = r.counter()?;
        Ok(())
    }

    /// Whether the timeline carries no state worth serializing (never
    /// reserved and back at time zero).
    pub(crate) fn is_untouched(&self) -> bool {
        self.busy_until == SimTime::ZERO && self.total_busy.is_zero() && self.completed == 0
    }

    /// Resets the timeline to the idle state, keeping the name.
    fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.total_busy = Duration::ZERO;
        self.completed = 0;
    }

    /// Sparse variant of [`SharedResource::encode_into`]: an untouched
    /// timeline costs a single flag byte instead of 24 zero bytes.
    pub(crate) fn encode_sparse_into(&self, out: &mut Vec<u8>) {
        if self.is_untouched() {
            out.push(0);
        } else {
            out.push(1);
            self.encode_into(out);
        }
    }

    /// Restores the state serialized by
    /// [`SharedResource::encode_sparse_into`].
    pub(crate) fn restore_sparse_from(&mut self, r: &mut Reader<'_>) -> Result<()> {
        match r.u8()? {
            0 => {
                self.reset();
                Ok(())
            }
            1 => self.restore_from(r),
            flag => Err(ConduitError::corrupt_checkpoint(format!(
                "resource timeline flag must be 0 or 1, found {flag}"
            ))),
        }
    }

    /// Fraction of the interval `[ZERO, now]` this resource spent busy.
    /// Returns 0 when `now` is time zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(SimTime::ZERO);
        if elapsed.is_zero() {
            0.0
        } else {
            (self.total_busy.as_ns() / elapsed.as_ns()).min(1.0)
        }
    }
}

/// A pool of interchangeable [`SharedResource`] units (e.g. the flash dies,
/// the DRAM banks, or the ISP compute cores).
///
/// # Examples
///
/// ```
/// use conduit_sim::ResourcePool;
/// use conduit_types::{Duration, SimTime};
///
/// let mut dies = ResourcePool::new("die", 2);
/// // Two requests run in parallel on different units, the third queues.
/// let (_, e1, _) = dies.reserve(SimTime::ZERO, Duration::from_us(10.0));
/// let (_, e2, _) = dies.reserve(SimTime::ZERO, Duration::from_us(10.0));
/// let (s3, _, _) = dies.reserve(SimTime::ZERO, Duration::from_us(10.0));
/// assert_eq!(e1, e2);
/// assert_eq!(s3, e1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourcePool {
    units: Vec<SharedResource>,
}

impl ResourcePool {
    /// Creates a pool of `count` idle units.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(name: &str, count: usize) -> Self {
        assert!(count > 0, "resource pool must have at least one unit");
        ResourcePool {
            units: (0..count)
                .map(|i| SharedResource::new(format!("{name}-{i}")))
                .collect(),
        }
    }

    /// Number of units in the pool.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the pool has no units (never true; pools are non-empty).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Reserves the earliest-available unit for `service` time starting no
    /// earlier than `earliest`. Returns `(start, end, unit_index)`.
    pub fn reserve(&mut self, earliest: SimTime, service: Duration) -> (SimTime, SimTime, usize) {
        let idx = self.earliest_unit(earliest);
        let (start, end) = self.units[idx].reserve(earliest, service);
        (start, end, idx)
    }

    /// Pure form of [`ResourcePool::reserve`]: which unit *would* serve a
    /// request arriving at `earliest` and the `(start, end, unit_index)` it
    /// would get, without mutating any timeline. Unit selection uses the
    /// same earliest-available / lowest-index tie-break as `reserve`, so a
    /// subsequent [`ResourcePool::reserve`] (with no interleaved
    /// reservation) picks the identical unit and window.
    pub fn probe(&self, earliest: SimTime, service: Duration) -> (SimTime, SimTime, usize) {
        let idx = self.earliest_unit(earliest);
        let (start, end) = self.units[idx].probe(earliest, service);
        (start, end, idx)
    }

    /// Reserves a *specific* unit (e.g. the die where an operand physically
    /// lives). Returns `(start, end)`.
    pub fn reserve_unit(
        &mut self,
        unit: usize,
        earliest: SimTime,
        service: Duration,
    ) -> (SimTime, SimTime) {
        let idx = unit % self.units.len();
        self.units[idx].reserve(earliest, service)
    }

    /// Pure form of [`ResourcePool::reserve_unit`].
    pub fn probe_unit(
        &self,
        unit: usize,
        earliest: SimTime,
        service: Duration,
    ) -> (SimTime, SimTime) {
        let idx = unit % self.units.len();
        self.units[idx].probe(earliest, service)
    }

    /// Queueing delay a request arriving at `at` would see on the
    /// earliest-available unit.
    pub fn queue_delay(&self, at: SimTime) -> Duration {
        self.units
            .iter()
            .map(|u| u.queue_delay(at))
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// Queueing delay on a specific unit.
    pub fn queue_delay_on(&self, unit: usize, at: SimTime) -> Duration {
        self.units[unit % self.units.len()].queue_delay(at)
    }

    /// Number of units that are free at `at`.
    pub fn free_units(&self, at: SimTime) -> usize {
        self.units.iter().filter(|u| u.free_at() <= at).count()
    }

    /// Mean utilization of the pool over `[ZERO, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if self.units.is_empty() {
            return 0.0;
        }
        self.units.iter().map(|u| u.utilization(now)).sum::<f64>() / self.units.len() as f64
    }

    /// Total busy time across all units.
    pub fn total_busy(&self) -> Duration {
        self.units.iter().map(|u| u.total_busy()).sum()
    }

    /// Total reservations served across all units.
    pub fn completed(&self) -> u64 {
        self.units.iter().map(|u| u.completed()).sum()
    }

    /// Appends every unit's timeline state to `out` behind a unit count.
    ///
    /// This dense layout is what v1/v2 checkpoints stored; current encoders
    /// use [`ResourcePool::encode_sparse_into`], so production code only
    /// ever decodes it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.units.len() as u64);
        for unit in &self.units {
            unit.encode_into(out);
        }
    }

    /// Restores the pool serialized by [`ResourcePool::encode_into`],
    /// keeping the unit names.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] if the stored unit count
    /// does not match this (configuration-derived) pool's size.
    pub(crate) fn restore_from(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let count = r.u64()? as usize;
        if count != self.units.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "pool checkpoint has {count} units but the configuration describes {}",
                self.units.len()
            )));
        }
        for unit in &mut self.units {
            unit.restore_from(r)?;
        }
        Ok(())
    }

    /// Sparse variant of [`ResourcePool::encode_into`]: only touched units
    /// are stored (unit count, touched count, then `(index, timeline)` pairs
    /// with strictly increasing indices), so an idle pool costs 16 bytes
    /// regardless of its size.
    pub(crate) fn encode_sparse_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.units.len() as u64);
        let touched = self.units.iter().filter(|u| !u.is_untouched()).count();
        put_u64(out, touched as u64);
        for (i, unit) in self.units.iter().enumerate() {
            if !unit.is_untouched() {
                put_u64(out, i as u64);
                unit.encode_into(out);
            }
        }
    }

    /// Restores the pool serialized by [`ResourcePool::encode_sparse_into`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] if the stored unit count
    /// does not match the configuration, if more units are marked touched
    /// than exist, or if the touched indices are not strictly increasing and
    /// in range.
    pub(crate) fn restore_sparse_from(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let count = r.u64()? as usize;
        if count != self.units.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "pool checkpoint has {count} units but the configuration describes {}",
                self.units.len()
            )));
        }
        let touched = r.u64()? as usize;
        if touched > count {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "pool checkpoint marks {touched} of {count} units as touched"
            )));
        }
        for unit in &mut self.units {
            unit.reset();
        }
        let mut prev: Option<u64> = None;
        for _ in 0..touched {
            let idx = r.u64()?;
            if prev.is_some_and(|p| idx <= p) || idx >= count as u64 {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "touched unit index {idx} is out of order or out of range"
                )));
            }
            prev = Some(idx);
            self.units[idx as usize].restore_from(r)?;
        }
        Ok(())
    }

    fn earliest_unit(&self, at: SimTime) -> usize {
        self.units
            .iter()
            .enumerate()
            .min_by_key(|(_, u)| u.free_at().max(at))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> Duration {
        Duration::from_us(v)
    }

    #[test]
    fn shared_resource_serializes_work() {
        let mut r = SharedResource::new("ch");
        let (s1, e1) = r.reserve(SimTime::ZERO, us(5.0));
        let (s2, e2) = r.reserve(SimTime::ZERO, us(5.0));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, e1);
        assert_eq!(e2.saturating_since(SimTime::ZERO), us(10.0));
        assert_eq!(r.total_busy(), us(10.0));
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn probe_matches_reserve_and_does_not_mutate() {
        let mut r = SharedResource::new("ch");
        r.reserve(SimTime::ZERO, us(5.0));
        let before = r.clone();
        let probed = r.probe(SimTime::ZERO + us(1.0), us(3.0));
        assert_eq!(r, before, "probe must not touch the timeline");
        let committed = r.commit(SimTime::ZERO + us(1.0), us(3.0));
        assert_eq!(probed, committed);
        assert_eq!(probed.0, SimTime::ZERO + us(5.0));
    }

    #[test]
    fn probe_batch_then_commit_batch_equals_reserve_batch() {
        // Two identical resources: one uses the one-shot commit_batch, the
        // other the two-phase probe + commit. They must agree bit-for-bit.
        let mut direct = SharedResource::new("ch");
        let mut phased = SharedResource::new("ch");
        direct.reserve(SimTime::ZERO, us(2.0));
        phased.reserve(SimTime::ZERO, us(2.0));

        let want = direct.commit_batch(SimTime::ZERO + us(1.0), us(3.0), 4);

        let before = phased.clone();
        let probed = phased.probe_batch(SimTime::ZERO + us(1.0), us(3.0), 4);
        assert_eq!(phased, before, "probe_batch must not touch the timeline");
        let got = phased.commit_batch(SimTime::ZERO + us(1.0), us(3.0), 4);

        assert_eq!(probed, want, "probe window must predict the commit exactly");
        assert_eq!(got, want);
        assert_eq!(direct, phased);
        assert_eq!(phased.completed(), 5);
        assert_eq!(phased.total_busy(), us(2.0) + us(12.0));
    }

    #[test]
    fn pool_probe_matches_reserve() {
        let mut p = ResourcePool::new("die", 3);
        p.reserve_unit(0, SimTime::ZERO, us(10.0));
        p.reserve_unit(2, SimTime::ZERO, us(6.0));
        let before = p.clone();
        let probed = p.probe(SimTime::ZERO, us(1.0));
        assert_eq!(p, before, "pool probe must not touch any unit");
        let reserved = p.reserve(SimTime::ZERO, us(1.0));
        assert_eq!(probed, reserved);
        assert_eq!(probed.2, 1, "idle unit 1 must win");
        let probed_unit = p.probe_unit(2, SimTime::ZERO, us(4.0));
        let reserved_unit = p.reserve_unit(2, SimTime::ZERO, us(4.0));
        assert_eq!(probed_unit, reserved_unit);
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut r = SharedResource::new("ch");
        assert_eq!(r.queue_delay(SimTime::ZERO), Duration::ZERO);
        r.reserve(SimTime::ZERO, us(8.0));
        assert_eq!(r.queue_delay(SimTime::ZERO), us(8.0));
        assert_eq!(r.queue_delay(SimTime::ZERO + us(3.0)), us(5.0));
        assert_eq!(r.queue_delay(SimTime::ZERO + us(20.0)), Duration::ZERO);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut r = SharedResource::new("ch");
        r.reserve(SimTime::ZERO, us(2.0));
        // Next request arrives much later; the gap is idle.
        r.reserve(SimTime::ZERO + us(100.0), us(2.0));
        assert_eq!(r.total_busy(), us(4.0));
        let util = r.utilization(SimTime::ZERO + us(102.0));
        assert!((util - 4.0 / 102.0).abs() < 1e-9);
    }

    #[test]
    fn pool_spreads_work_across_units() {
        let mut p = ResourcePool::new("die", 4);
        for _ in 0..4 {
            p.reserve(SimTime::ZERO, us(10.0));
        }
        assert_eq!(p.free_units(SimTime::ZERO), 0);
        assert_eq!(p.queue_delay(SimTime::ZERO), us(10.0));
        assert_eq!(p.completed(), 4);
        // A fifth request queues on whichever unit frees first.
        let (s, _, _) = p.reserve(SimTime::ZERO, us(1.0));
        assert_eq!(s, SimTime::ZERO + us(10.0));
    }

    #[test]
    fn pool_tie_breaks_on_lowest_unit_index() {
        let mut p = ResourcePool::new("die", 3);
        // All units idle: ties must resolve to the lowest index, in order,
        // so simulations are deterministic regardless of pool size.
        let (_, _, i0) = p.reserve(SimTime::ZERO, us(5.0));
        let (_, _, i1) = p.reserve(SimTime::ZERO, us(5.0));
        let (_, _, i2) = p.reserve(SimTime::ZERO, us(5.0));
        assert_eq!((i0, i1, i2), (0, 1, 2));
        // All equally busy again: back to unit 0, queued behind its work.
        let (s, _, i3) = p.reserve(SimTime::ZERO, us(1.0));
        assert_eq!(i3, 0);
        assert_eq!(s, SimTime::ZERO + us(5.0));
    }

    #[test]
    fn pool_prefers_earliest_free_unit_over_index() {
        let mut p = ResourcePool::new("die", 3);
        // Unit 0 busy for 10 us, unit 1 for 2 us, unit 2 for 6 us.
        p.reserve_unit(0, SimTime::ZERO, us(10.0));
        p.reserve_unit(1, SimTime::ZERO, us(2.0));
        p.reserve_unit(2, SimTime::ZERO, us(6.0));
        let (start, _, idx) = p.reserve(SimTime::ZERO, us(1.0));
        assert_eq!(idx, 1, "earliest-free unit must win over lower indices");
        assert_eq!(start, SimTime::ZERO + us(2.0));
    }

    #[test]
    fn pool_specific_unit_reservation() {
        let mut p = ResourcePool::new("bank", 2);
        p.reserve_unit(0, SimTime::ZERO, us(5.0));
        assert_eq!(p.queue_delay_on(0, SimTime::ZERO), us(5.0));
        assert_eq!(p.queue_delay_on(1, SimTime::ZERO), Duration::ZERO);
        // Unit index wraps.
        p.reserve_unit(3, SimTime::ZERO, us(2.0));
        assert_eq!(p.queue_delay_on(1, SimTime::ZERO), us(2.0));
    }

    #[test]
    fn pool_utilization_averages_units() {
        let mut p = ResourcePool::new("core", 2);
        p.reserve_unit(0, SimTime::ZERO, us(10.0));
        let util = p.utilization(SimTime::ZERO + us(10.0));
        assert!((util - 0.5).abs() < 1e-9);
        assert_eq!(p.total_busy(), us(10.0));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_panics() {
        let _ = ResourcePool::new("x", 0);
    }

    #[test]
    fn sparse_resource_encoding_roundtrips_and_stays_small() {
        // Idle: one flag byte instead of 24 zeros.
        let idle = SharedResource::new("ch");
        let mut buf = Vec::new();
        idle.encode_sparse_into(&mut buf);
        assert_eq!(buf, vec![0]);
        let mut back = SharedResource::new("ch");
        back.reserve(SimTime::ZERO, us(3.0)); // stale state must be cleared
        back.restore_sparse_from(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, idle);

        // Busy: flag byte plus the dense triple.
        let mut busy = SharedResource::new("ch");
        busy.reserve(SimTime::ZERO, us(7.0));
        let mut buf = Vec::new();
        busy.encode_sparse_into(&mut buf);
        assert_eq!(buf.len(), 1 + 24);
        let mut back = SharedResource::new("ch");
        back.restore_sparse_from(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, busy);

        // Garbage flag is rejected.
        let mut r = Reader::new(&[7u8]);
        assert!(SharedResource::new("ch")
            .restore_sparse_from(&mut r)
            .is_err());
    }

    #[test]
    fn sparse_pool_encoding_skips_idle_units() {
        let mut p = ResourcePool::new("die", 16);
        p.reserve_unit(3, SimTime::ZERO, us(5.0));
        p.reserve_unit(11, SimTime::ZERO, us(2.0));
        let mut sparse = Vec::new();
        p.encode_sparse_into(&mut sparse);
        // 16 + 16 header, two touched units at 8 + 24 each.
        assert_eq!(sparse.len(), 16 + 2 * 32);
        let mut dense = Vec::new();
        p.encode_into(&mut dense);
        assert!(sparse.len() < dense.len());

        let mut back = ResourcePool::new("die", 16);
        back.reserve_unit(0, SimTime::ZERO, us(9.0)); // must be reset on restore
        back.restore_sparse_from(&mut Reader::new(&sparse)).unwrap();
        assert_eq!(back, p);

        // A fully idle pool costs only the 16-byte header.
        let idle = ResourcePool::new("die", 64);
        let mut buf = Vec::new();
        idle.encode_sparse_into(&mut buf);
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn sparse_pool_restore_rejects_malformed_indices() {
        let probe =
            |bytes: &[u8]| ResourcePool::new("die", 4).restore_sparse_from(&mut Reader::new(bytes));
        let mut wrong_count = Vec::new();
        put_u64(&mut wrong_count, 5);
        put_u64(&mut wrong_count, 0);
        assert!(probe(&wrong_count).is_err());

        let mut too_many = Vec::new();
        put_u64(&mut too_many, 4);
        put_u64(&mut too_many, 5);
        assert!(probe(&too_many).is_err());

        let entry = |out: &mut Vec<u8>, idx: u64| {
            put_u64(out, idx);
            put_u64(out, 1);
            put_u64(out, 1);
            put_u64(out, 1);
        };
        let mut out_of_range = Vec::new();
        put_u64(&mut out_of_range, 4);
        put_u64(&mut out_of_range, 1);
        entry(&mut out_of_range, 4);
        assert!(probe(&out_of_range).is_err());

        let mut unordered = Vec::new();
        put_u64(&mut unordered, 4);
        put_u64(&mut unordered, 2);
        entry(&mut unordered, 2);
        entry(&mut unordered, 1);
        assert!(probe(&unordered).is_err());
    }
}
