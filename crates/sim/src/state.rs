//! Persistent device state, split out of [`crate::SsdDevice`].
//!
//! The paper's device is a long-lived SSD: FTL mappings, the coherence
//! directory, garbage-collection debt and wear accumulate across the whole
//! request stream, not per run. [`DeviceState`] is that persistent half of
//! the device — everything that *mutates* as instructions execute — while
//! [`crate::SsdDevice`] adds the immutable models (timing, energy and
//! estimate tables derived purely from the [`SsdConfig`]).
//!
//! Because the models are pure functions of the configuration, a
//! `DeviceState` can be moved between [`crate::SsdDevice`] instances
//! ([`crate::SsdDevice::with_state`] / [`crate::SsdDevice::into_state`])
//! without changing simulation results: a *warm* device is just a fresh set
//! of models wrapped around an old state. [`DeviceState::snapshot`] exposes
//! the cumulative counters (GC, coherence traffic, wear, energy) and
//! [`DeviceSnapshot::delta_since`] turns two snapshots into the per-run
//! [`DeviceDelta`] that run summaries carry.

use std::collections::{HashSet, VecDeque};

use conduit_ftl::Ftl;
use conduit_types::bytes::{put_u16, put_u64, Reader};
use conduit_types::{
    ConduitError, DeviceHealth, Duration, Energy, FaultConfig, LogicalPageId, Result, SsdConfig,
};

use crate::energy::EnergyMeter;
use crate::resources::{ResourcePool, SharedResource};
use crate::stats::LaneStats;

/// Magic bytes identifying a serialized [`DeviceState`] checkpoint in the
/// current format: delta-against-pristine flash (never-written blocks are
/// skipped), **sparse resource timelines** (idle channels/dies/banks cost a
/// flag byte instead of a zero triple), the fault-injection state (plan
/// cursor, retired blocks, health) and both the cumulative and the windowed
/// request-lane statistics ([`LaneStats`]).
pub const DEVICE_STATE_MAGIC: [u8; 4] = *b"CDS3";

/// Current device-state checkpoint format version.
pub const DEVICE_STATE_FORMAT_VERSION: u16 = 3;

/// Magic bytes of the legacy version-2 format (delta flash image and lane
/// statistics, but dense resource timelines and no fault state). Still
/// readable by [`DeviceState::from_bytes`]; no longer written.
pub const DEVICE_STATE_MAGIC_V2: [u8; 4] = *b"CDS2";

/// Format version of the legacy [`DEVICE_STATE_MAGIC_V2`] encoding.
pub const DEVICE_STATE_FORMAT_VERSION_V2: u16 = 2;

/// Magic bytes of the legacy version-1 format (dense flash image, no lane
/// statistics). Still readable by [`DeviceState::from_bytes`]; no longer
/// written.
pub const DEVICE_STATE_MAGIC_V1: [u8; 4] = *b"CDS1";

/// Format version of the legacy [`DEVICE_STATE_MAGIC_V1`] encoding.
pub const DEVICE_STATE_FORMAT_VERSION_V1: u16 = 1;

/// Number of pages the host keeps resident before it must re-stream data
/// from the SSD (see the field documentation on [`DeviceState`]).
pub(crate) const HOST_CACHE_PAGES: usize = 8;

/// The mutable, persistent half of the simulated SSD: FTL (L2P map,
/// coherence directory, garbage collector, wear counters), flash/DRAM
/// residency, the contended-resource timelines and the energy meter.
///
/// A fresh state models a pristine device; threading one state through a
/// stream of runs models a warm, aging device.
#[derive(Debug, Clone)]
pub struct DeviceState {
    pub(crate) ftl: Ftl,
    // Contention timelines.
    pub(crate) channels: Vec<SharedResource>,
    pub(crate) dies: ResourcePool,
    pub(crate) dram_banks: ResourcePool,
    pub(crate) dram_bus: SharedResource,
    pub(crate) compute_cores: ResourcePool,
    pub(crate) offloader_core: SharedResource,
    pub(crate) pcie: SharedResource,
    // Residency of clean cached copies.
    pub(crate) dram_resident: HashSet<LogicalPageId>,
    pub(crate) dram_order: VecDeque<LogicalPageId>,
    pub(crate) dram_capacity_pages: usize,
    pub(crate) ctrl_resident: HashSet<LogicalPageId>,
    pub(crate) ctrl_order: VecDeque<LogicalPageId>,
    pub(crate) ctrl_capacity_pages: usize,
    /// Pages whose current flash contents have already been shipped to host
    /// memory (OSP baselines). The paper sizes every workload so that its
    /// footprint far exceeds what the host can cache ("the memory footprint
    /// of each workload exceeds the SSD capacity by 2×"), so only a small
    /// window of recently transferred pages stays host-resident; everything
    /// else must be re-streamed over the host link.
    pub(crate) host_resident: HashSet<LogicalPageId>,
    pub(crate) host_order: VecDeque<LogicalPageId>,
    pub(crate) energy: EnergyMeter,
    /// Request-lane statistics: how the device's FIFO lane spent its stream
    /// clock (busy serving requests vs idle between open-loop arrivals).
    pub(crate) lane: LaneStats,
    /// Windowed lane statistics: same counters as `lane`, but resettable
    /// ([`DeviceState::reset_lane_window`]) so a long-lived tenant's recent
    /// load swings are visible without wiping the device.
    pub(crate) lane_window: LaneStats,
}

impl DeviceState {
    /// A pristine device state for the given configuration: empty FTL, idle
    /// timelines, nothing resident, no energy charged.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the FTL (degenerate geometry) or
    /// core allocation.
    pub fn new(cfg: &SsdConfig) -> Result<Self> {
        Self::new_with_faults(cfg, FaultConfig::default())
    }

    /// Like [`DeviceState::new`], but with a fault-injection plan attached:
    /// the FTL draws every fault decision from a seeded, replayable
    /// [`conduit_types::FaultPlan`]. The default (inert) config makes this
    /// identical to [`DeviceState::new`].
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the FTL (degenerate geometry) or
    /// core allocation.
    pub fn new_with_faults(cfg: &SsdConfig, faults: FaultConfig) -> Result<Self> {
        let ftl = Ftl::with_faults(cfg, faults)?;
        let total_dies = (cfg.flash.channels * cfg.flash.dies_per_channel) as usize;
        let compute_core_count = conduit_ctrl::CoreAllocation::standard(&cfg.ctrl)?
            .count(conduit_ctrl::CoreRole::Compute)
            .max(1);
        let dram_capacity_pages =
            (cfg.dram.capacity_bytes / 2 / cfg.flash.page_bytes).max(16) as usize;
        let ctrl_capacity_pages = (cfg.ctrl.sram_bytes / cfg.flash.page_bytes).max(4) as usize;
        Ok(DeviceState {
            ftl,
            channels: (0..cfg.flash.channels)
                .map(|i| SharedResource::new(format!("flash-channel-{i}")))
                .collect(),
            dies: ResourcePool::new("die", total_dies),
            dram_banks: ResourcePool::new("dram-subarray", cfg.dram.compute_units() as usize),
            dram_bus: SharedResource::new("dram-bus"),
            compute_cores: ResourcePool::new("isp-core", compute_core_count),
            offloader_core: SharedResource::new("offloader-core"),
            pcie: SharedResource::new("pcie"),
            dram_resident: HashSet::new(),
            dram_order: VecDeque::new(),
            dram_capacity_pages,
            ctrl_resident: HashSet::new(),
            ctrl_order: VecDeque::new(),
            ctrl_capacity_pages,
            host_resident: HashSet::new(),
            host_order: VecDeque::new(),
            energy: EnergyMeter::new(),
            lane: LaneStats::default(),
            lane_window: LaneStats::default(),
        })
    }

    /// The flash translation layer (read-only).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// The device's cumulative request-lane statistics.
    pub fn lane_stats(&self) -> LaneStats {
        self.lane
    }

    /// The windowed lane statistics accumulated since the last
    /// [`DeviceState::reset_lane_window`].
    pub fn lane_window_stats(&self) -> LaneStats {
        self.lane_window
    }

    /// Resets the windowed lane statistics (the cumulative [`LaneStats`] are
    /// untouched). Sessions call this at the start of every batch so
    /// per-batch load is observable on long-lived devices.
    pub fn reset_lane_window(&mut self) {
        self.lane_window = LaneStats::default();
    }

    /// Folds one served lane request into the lane statistics: `idle` is the
    /// gap the device sat unused before the request arrived, `queued` the
    /// arrival-relative wait behind earlier requests, `busy` the request's
    /// own service time on the stream clock. Both the cumulative and the
    /// windowed counters advance.
    pub fn record_lane_request(&mut self, idle: Duration, queued: Duration, busy: Duration) {
        self.lane.record(idle, queued, busy);
        self.lane_window.record(idle, queued, busy);
    }

    /// The accumulated energy meter.
    pub fn energy_meter(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Total reservations served across every contended timeline (channels,
    /// dies, DRAM banks and bus, compute cores, the offloader core, PCIe).
    /// This counts *simulated device operations* and is fully deterministic —
    /// the same program stream always performs the same number — which makes
    /// it the machine-independent work metric the perf gate tracks.
    pub fn device_ops(&self) -> u64 {
        self.channels
            .iter()
            .map(SharedResource::completed)
            .sum::<u64>()
            + self.dies.completed()
            + self.dram_banks.completed()
            + self.dram_bus.completed()
            + self.compute_cores.completed()
            + self.offloader_core.completed()
            + self.pcie.completed()
    }

    /// Cumulative counters of everything that has happened to this device
    /// since it was pristine.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let stats = self.ftl.stats();
        let (writes, flushes) = self.ftl.coherence().traffic();
        let wear = self.ftl.wear_report();
        let faults = self.ftl.fault_stats();
        DeviceSnapshot {
            pages_mapped: stats.pages_mapped,
            rewrites: stats.rewrites,
            gc_invocations: self.ftl.gc().invocations(),
            gc_pages_migrated: stats.gc_relocations,
            gc_blocks_erased: stats.gc_erases,
            l2p_hits: stats.l2p_hits,
            l2p_misses: stats.l2p_misses,
            coherence_writes: writes,
            coherence_syncs: flushes,
            dirty_pages: self.ftl.coherence().dirty_pages() as u64,
            wear_leveling_swaps: self.ftl.wear().swaps_scheduled(),
            wear_pages_migrated: stats.wear_relocations,
            wear_min_erases: wear.min_erases,
            wear_max_erases: wear.max_erases,
            wear_mean_erases: wear.mean_erases,
            wear_spread: wear.spread,
            device_ops: self.device_ops(),
            total_energy: self.energy.total(),
            lane_requests: self.lane.requests,
            lane_busy_time: self.lane.busy,
            lane_idle_time: self.lane.idle,
            lane_queued_time: self.lane.queued,
            window_requests: self.lane_window.requests,
            window_busy_time: self.lane_window.busy,
            window_idle_time: self.lane_window.idle,
            window_queued_time: self.lane_window.queued,
            health: self.ftl.health(),
            retired_blocks: self.ftl.retired_blocks(),
            program_failures: faults.program_failures,
            erase_failures: faults.erase_failures,
            read_retries: faults.read_retries,
            die_failures: faults.die_failures,
            remapped_pages: faults.remapped_pages,
        }
    }

    /// Serializes the whole device state — FTL image, contention timelines,
    /// cached-copy residency, the energy meter and the lane statistics —
    /// into a compact, versioned, **deterministic** byte stream (identical
    /// states always produce identical bytes, so checkpoints can be diffed
    /// and pinned by golden files). The flash image is encoded
    /// **delta-against-pristine**: blocks that have never been written or
    /// erased are skipped entirely, so a cold device's checkpoint stays
    /// small no matter how large the array is. Restore with
    /// [`DeviceState::from_bytes`] under the same [`SsdConfig`]; everything
    /// derived from the configuration (geometry, capacities, resource
    /// names, estimate tables) is rebuilt rather than stored.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&DEVICE_STATE_MAGIC);
        put_u16(&mut out, DEVICE_STATE_FORMAT_VERSION);
        self.ftl.encode_delta_into(&mut out);
        put_u64(&mut out, self.channels.len() as u64);
        for channel in &self.channels {
            channel.encode_sparse_into(&mut out);
        }
        self.dies.encode_sparse_into(&mut out);
        self.dram_banks.encode_sparse_into(&mut out);
        self.compute_cores.encode_sparse_into(&mut out);
        self.dram_bus.encode_sparse_into(&mut out);
        self.offloader_core.encode_sparse_into(&mut out);
        self.pcie.encode_sparse_into(&mut out);
        // Residency is a set plus an eviction queue, serialized separately:
        // the queue may legitimately hold stale entries (eviction removes
        // from the set first) and is therefore not a reliable source for
        // rebuilding the set. Sets are written sorted so the encoding is
        // deterministic; queues keep their exact order.
        for (resident, order) in [
            (&self.dram_resident, &self.dram_order),
            (&self.ctrl_resident, &self.ctrl_order),
            (&self.host_resident, &self.host_order),
        ] {
            let mut sorted: Vec<LogicalPageId> = resident.iter().copied().collect();
            sorted.sort_unstable();
            put_u64(&mut out, sorted.len() as u64);
            for page in sorted {
                put_u64(&mut out, page.index());
            }
            put_u64(&mut out, order.len() as u64);
            for page in order {
                put_u64(&mut out, page.index());
            }
        }
        self.energy.encode_into(&mut out);
        for lane in [&self.lane, &self.lane_window] {
            put_u64(&mut out, lane.requests);
            put_u64(&mut out, lane.busy.as_ps());
            put_u64(&mut out, lane.idle.as_ps());
            put_u64(&mut out, lane.queued.as_ps());
        }
        out
    }

    /// Decodes a checkpoint serialized by [`DeviceState::to_bytes`] for the
    /// given configuration. A restored state is indistinguishable from the
    /// state that was exported: replaying the same request stream on it
    /// produces bit-identical results.
    ///
    /// The current `"CDS3"` encoding (sparse resource timelines, fault
    /// state, windowed lane statistics) and both legacy encodings are
    /// accepted: `"CDS2"` (delta flash, dense resources, no fault state) and
    /// `"CDS1"` (dense flash, no lane statistics). Legacy checkpoints
    /// restore with an inert fault plan, a healthy device and a zero window.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for a bad magic or
    /// version, truncated or trailing bytes, or a checkpoint whose shape
    /// does not match `cfg` (block counts, pool sizes, channel counts).
    pub fn from_bytes(cfg: &SsdConfig, bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 6 {
            return Err(ConduitError::corrupt_checkpoint("bad device-state magic"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        let known_magic = [
            DEVICE_STATE_MAGIC,
            DEVICE_STATE_MAGIC_V2,
            DEVICE_STATE_MAGIC_V1,
        ]
        .iter()
        .any(|m| bytes[..4] == *m);
        match (&bytes[..4], version) {
            (magic, DEVICE_STATE_FORMAT_VERSION) if *magic == DEVICE_STATE_MAGIC => {}
            (magic, DEVICE_STATE_FORMAT_VERSION_V2) if *magic == DEVICE_STATE_MAGIC_V2 => {}
            (magic, DEVICE_STATE_FORMAT_VERSION_V1) if *magic == DEVICE_STATE_MAGIC_V1 => {}
            (_, version) if known_magic => {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "unsupported device-state format version {version} \
                     (expected {DEVICE_STATE_FORMAT_VERSION}, \
                     {DEVICE_STATE_FORMAT_VERSION_V2} or \
                     {DEVICE_STATE_FORMAT_VERSION_V1})"
                )));
            }
            _ => {
                return Err(ConduitError::corrupt_checkpoint("bad device-state magic"));
            }
        }
        let mut r = Reader::new(&bytes[6..]);
        let mut state = DeviceState::new(cfg)?;
        state.ftl = match version {
            DEVICE_STATE_FORMAT_VERSION => Ftl::decode_delta_from(cfg, &mut r)?,
            DEVICE_STATE_FORMAT_VERSION_V2 => Ftl::decode_delta_legacy_from(cfg, &mut r)?,
            _ => Ftl::decode_legacy_from(cfg, &mut r)?,
        };
        let sparse = version >= DEVICE_STATE_FORMAT_VERSION;
        let channels = r.u64()? as usize;
        if channels != state.channels.len() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "checkpoint has {channels} flash channels but the configuration describes {}",
                state.channels.len()
            )));
        }
        for channel in &mut state.channels {
            if sparse {
                channel.restore_sparse_from(&mut r)?;
            } else {
                channel.restore_from(&mut r)?;
            }
        }
        if sparse {
            state.dies.restore_sparse_from(&mut r)?;
            state.dram_banks.restore_sparse_from(&mut r)?;
            state.compute_cores.restore_sparse_from(&mut r)?;
            state.dram_bus.restore_sparse_from(&mut r)?;
            state.offloader_core.restore_sparse_from(&mut r)?;
            state.pcie.restore_sparse_from(&mut r)?;
        } else {
            state.dies.restore_from(&mut r)?;
            state.dram_banks.restore_from(&mut r)?;
            state.compute_cores.restore_from(&mut r)?;
            state.dram_bus.restore_from(&mut r)?;
            state.offloader_core.restore_from(&mut r)?;
            state.pcie.restore_from(&mut r)?;
        }
        for (resident, order) in [
            (&mut state.dram_resident, &mut state.dram_order),
            (&mut state.ctrl_resident, &mut state.ctrl_order),
            (&mut state.host_resident, &mut state.host_order),
        ] {
            let set_len = r.u64()? as usize;
            for _ in 0..set_len {
                let page = LogicalPageId::new(r.u64()?);
                if !resident.insert(page) {
                    return Err(ConduitError::corrupt_checkpoint(format!(
                        "page {page} appears twice in a residency set"
                    )));
                }
            }
            let order_len = r.u64()? as usize;
            for _ in 0..order_len {
                order.push_back(LogicalPageId::new(r.u64()?));
            }
        }
        state.energy = EnergyMeter::decode_from(&mut r)?;
        if version >= DEVICE_STATE_FORMAT_VERSION_V2 {
            state.lane = LaneStats {
                requests: r.counter()?,
                busy: Duration::from_ps(r.counter()?),
                idle: Duration::from_ps(r.counter()?),
                queued: Duration::from_ps(r.counter()?),
            };
        }
        if version >= DEVICE_STATE_FORMAT_VERSION {
            state.lane_window = LaneStats {
                requests: r.counter()?,
                busy: Duration::from_ps(r.counter()?),
                idle: Duration::from_ps(r.counter()?),
                queued: Duration::from_ps(r.counter()?),
            };
        }
        if !r.finished() {
            return Err(ConduitError::corrupt_checkpoint(
                "trailing bytes after device state",
            ));
        }
        Ok(state)
    }
}

/// Cumulative device counters at one point in a device's life.
///
/// Obtained via [`DeviceState::snapshot`] (or
/// [`crate::SsdDevice::snapshot`]); two snapshots bracketing a run yield the
/// run's [`DeviceDelta`] via [`DeviceSnapshot::delta_since`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceSnapshot {
    /// Logical pages mapped for the first time.
    pub pages_mapped: u64,
    /// Out-of-place logical page rewrites (flash commits of dirty results).
    pub rewrites: u64,
    /// Garbage-collection victim selections.
    pub gc_invocations: u64,
    /// Valid pages relocated by garbage collection.
    pub gc_pages_migrated: u64,
    /// Blocks erased by garbage collection.
    pub gc_blocks_erased: u64,
    /// L2P mapping-cache hits.
    pub l2p_hits: u64,
    /// L2P mapping-cache misses.
    pub l2p_misses: u64,
    /// Writes recorded in the coherence directory.
    pub coherence_writes: u64,
    /// Dirty copies synchronized (flushed) to flash by the coherence
    /// protocol.
    pub coherence_syncs: u64,
    /// Pages currently dirty (a point-in-time gauge, not a counter).
    pub dirty_pages: u64,
    /// Cold/hot block swaps the wear leveler has scheduled.
    pub wear_leveling_swaps: u64,
    /// Valid pages migrated out of cold blocks by those swaps.
    pub wear_pages_migrated: u64,
    /// Lowest per-block erase count.
    pub wear_min_erases: u64,
    /// Highest per-block erase count.
    pub wear_max_erases: u64,
    /// Mean per-block erase count.
    pub wear_mean_erases: f64,
    /// `max - min` erase count across blocks (the imbalance the wear leveler
    /// bounds).
    pub wear_spread: u64,
    /// Total reservations served across every contended timeline (see
    /// [`DeviceState::device_ops`]).
    pub device_ops: u64,
    /// Total energy charged to the device so far.
    pub total_energy: Energy,
    /// Requests the device's FIFO lane has served.
    pub lane_requests: u64,
    /// Stream-clock time the device spent serving lane requests.
    pub lane_busy_time: Duration,
    /// Stream-clock time the device sat idle between open-loop arrivals.
    pub lane_idle_time: Duration,
    /// Total arrival-relative queueing accumulated by lane requests.
    pub lane_queued_time: Duration,
    /// Lane requests served since the window was last reset (sessions reset
    /// the window at the start of every batch).
    pub window_requests: u64,
    /// Stream-clock busy time inside the current window.
    pub window_busy_time: Duration,
    /// Stream-clock idle time inside the current window.
    pub window_idle_time: Duration,
    /// Arrival-relative queueing inside the current window.
    pub window_queued_time: Duration,
    /// The device's health state (gauge): `Degraded` once more blocks were
    /// retired than the fault plan's spare budget.
    pub health: DeviceHealth,
    /// Flash blocks retired (marked bad and evacuated) so far.
    pub retired_blocks: u64,
    /// Flash program operations that failed and were retried elsewhere.
    pub program_failures: u64,
    /// Block erases that failed, retiring the block instead.
    pub erase_failures: u64,
    /// Transient read errors recovered by the read-retry ladder.
    pub read_retries: u64,
    /// Whole-die failures injected by the fault plan.
    pub die_failures: u64,
    /// Valid pages remapped off retired blocks and dies.
    pub remapped_pages: u64,
}

impl DeviceSnapshot {
    /// Fraction of the lane's lifetime (busy + idle) the device spent
    /// serving requests; zero for a device that never served a lane
    /// request. See [`LaneStats::occupancy`].
    pub fn lane_occupancy(&self) -> f64 {
        LaneStats {
            requests: self.lane_requests,
            busy: self.lane_busy_time,
            idle: self.lane_idle_time,
            queued: self.lane_queued_time,
        }
        .occupancy()
    }

    /// Occupancy of the current lane window (see
    /// [`DeviceSnapshot::lane_occupancy`], but over the windowed counters).
    pub fn window_occupancy(&self) -> f64 {
        LaneStats {
            requests: self.window_requests,
            busy: self.window_busy_time,
            idle: self.window_idle_time,
            queued: self.window_queued_time,
        }
        .occupancy()
    }

    /// The work performed between `before` and this snapshot (counters are
    /// monotonic, so plain differences; the point-in-time gauges
    /// `dirty_pages` and `wear_spread` carry this snapshot's value).
    pub fn delta_since(&self, before: &DeviceSnapshot) -> DeviceDelta {
        DeviceDelta {
            pages_mapped: self.pages_mapped.saturating_sub(before.pages_mapped),
            rewrites: self.rewrites.saturating_sub(before.rewrites),
            gc_invocations: self.gc_invocations.saturating_sub(before.gc_invocations),
            pages_migrated: self
                .gc_pages_migrated
                .saturating_sub(before.gc_pages_migrated)
                + self
                    .wear_pages_migrated
                    .saturating_sub(before.wear_pages_migrated),
            blocks_erased: self
                .gc_blocks_erased
                .saturating_sub(before.gc_blocks_erased),
            coherence_writes: self
                .coherence_writes
                .saturating_sub(before.coherence_writes),
            coherence_syncs: self.coherence_syncs.saturating_sub(before.coherence_syncs),
            dirty_pages: self.dirty_pages,
            wear_spread: self.wear_spread,
            device_ops: self.device_ops.saturating_sub(before.device_ops),
            lane_requests: self.lane_requests.saturating_sub(before.lane_requests),
            lane_busy_time: self.lane_busy_time.saturating_sub(before.lane_busy_time),
            lane_idle_time: self.lane_idle_time.saturating_sub(before.lane_idle_time),
            lane_queued_time: self
                .lane_queued_time
                .saturating_sub(before.lane_queued_time),
            health: self.health,
            retired_blocks: self.retired_blocks.saturating_sub(before.retired_blocks),
            program_failures: self
                .program_failures
                .saturating_sub(before.program_failures),
            erase_failures: self.erase_failures.saturating_sub(before.erase_failures),
            read_retries: self.read_retries.saturating_sub(before.read_retries),
            die_failures: self.die_failures.saturating_sub(before.die_failures),
            remapped_pages: self.remapped_pages.saturating_sub(before.remapped_pages),
        }
    }
}

/// The device-side work one run performed: the difference between the
/// device snapshots taken before and after the run.
///
/// On a fresh device this is the run's absolute footprint; on a warm device
/// it shows how much *additional* aging (GC, migration, coherence syncs,
/// wear) this run caused on top of the state earlier requests left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceDelta {
    /// Logical pages mapped for the first time by this run.
    pub pages_mapped: u64,
    /// Out-of-place page rewrites this run performed.
    pub rewrites: u64,
    /// Garbage-collection invocations this run triggered.
    pub gc_invocations: u64,
    /// Valid pages migrated during this run, by garbage collection and by
    /// wear-leveling swaps.
    pub pages_migrated: u64,
    /// Blocks garbage collection erased during this run.
    pub blocks_erased: u64,
    /// Coherence-directory writes this run recorded.
    pub coherence_writes: u64,
    /// Dirty copies the coherence protocol flushed to flash during this run.
    pub coherence_syncs: u64,
    /// Pages left dirty when the run finished (gauge: the value *after* the
    /// run, not a difference).
    pub dirty_pages: u64,
    /// Erase-count spread across blocks when the run finished (gauge).
    pub wear_spread: u64,
    /// Simulated device operations (timeline reservations) this run issued.
    pub device_ops: u64,
    /// Lane requests this run accounted for (1 for a warm run, 0 for a
    /// fresh run — fresh devices have no lane).
    pub lane_requests: u64,
    /// Stream-clock time the device spent serving this run.
    pub lane_busy_time: Duration,
    /// Idle gap the device sat unused before this run's open-loop arrival.
    pub lane_idle_time: Duration,
    /// Arrival-relative queueing this run experienced in its lane.
    pub lane_queued_time: Duration,
    /// The device's health state *after* the run (gauge).
    pub health: DeviceHealth,
    /// Flash blocks this run's faults retired.
    pub retired_blocks: u64,
    /// Program failures injected during this run.
    pub program_failures: u64,
    /// Erase failures injected during this run.
    pub erase_failures: u64,
    /// Transient read errors this run's reads recovered from.
    pub read_retries: u64,
    /// Whole-die failures injected during this run.
    pub die_failures: u64,
    /// Valid pages remapped off retired blocks during this run.
    pub remapped_pages: u64,
}

impl DeviceDelta {
    /// Folds another delta (a later repeat of the same request) into this
    /// one: counters add, the `dirty_pages`/`wear_spread` gauges take the
    /// later value.
    pub fn accumulate(&mut self, later: DeviceDelta) {
        self.pages_mapped += later.pages_mapped;
        self.rewrites += later.rewrites;
        self.gc_invocations += later.gc_invocations;
        self.pages_migrated += later.pages_migrated;
        self.blocks_erased += later.blocks_erased;
        self.coherence_writes += later.coherence_writes;
        self.coherence_syncs += later.coherence_syncs;
        self.dirty_pages = later.dirty_pages;
        self.wear_spread = later.wear_spread;
        self.device_ops += later.device_ops;
        self.lane_requests += later.lane_requests;
        self.lane_busy_time += later.lane_busy_time;
        self.lane_idle_time += later.lane_idle_time;
        self.lane_queued_time += later.lane_queued_time;
        self.health = later.health;
        self.retired_blocks += later.retired_blocks;
        self.program_failures += later.program_failures;
        self.erase_failures += later.erase_failures;
        self.read_retries += later.read_retries;
        self.die_failures += later.die_failures;
        self.remapped_pages += later.remapped_pages;
    }

    /// Whether the run performed any tracked device work at all.
    pub fn is_empty(&self) -> bool {
        *self == DeviceDelta::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_snapshot_is_all_zero() {
        let state = DeviceState::new(&SsdConfig::small_for_tests()).unwrap();
        let snap = state.snapshot();
        assert_eq!(snap, DeviceSnapshot::default());
        assert_eq!(
            snap.delta_since(&DeviceSnapshot::default()),
            DeviceDelta::default()
        );
        assert!(snap.delta_since(&DeviceSnapshot::default()).is_empty());
    }

    #[test]
    fn snapshot_tracks_ftl_activity() {
        let mut state = DeviceState::new(&SsdConfig::small_for_tests()).unwrap();
        let pages: Vec<LogicalPageId> = (0..4).map(LogicalPageId::new).collect();
        state.ftl.map_pages(&pages, None).unwrap();
        let before = state.snapshot();
        assert_eq!(before.pages_mapped, 4);
        state.ftl.rewrite(pages[0]).unwrap();
        let after = state.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.rewrites, 1);
        assert_eq!(delta.pages_mapped, 1); // the rewrite re-installs a mapping
        assert!(!delta.is_empty());
    }

    #[test]
    fn checkpoint_roundtrips_and_is_deterministic() {
        let cfg = SsdConfig::small_for_tests();
        let mut state = DeviceState::new(&cfg).unwrap();
        let pages: Vec<LogicalPageId> = (0..6).map(LogicalPageId::new).collect();
        state.ftl.map_pages(&pages, None).unwrap();
        state.ftl.rewrite(pages[1]).unwrap();
        state
            .ftl
            .coherence_mut()
            .record_write(pages[2], conduit_types::DataLocation::Dram);
        state.dram_resident.insert(pages[0]);
        state.dram_order.push_back(pages[0]);
        state.dram_bus.reserve(
            conduit_types::SimTime::ZERO,
            conduit_types::Duration::from_us(3.0),
        );
        state
            .energy
            .charge(conduit_types::EnergySource::DramBus, Energy::from_nj(2.5));

        let bytes = state.to_bytes();
        let back = DeviceState::from_bytes(&cfg, &bytes).unwrap();
        assert_eq!(back.snapshot(), state.snapshot());
        assert_eq!(back.dram_resident, state.dram_resident);
        assert_eq!(back.dram_order, state.dram_order);
        assert_eq!(back.to_bytes(), bytes, "encoding must be deterministic");

        // Corruption and config mismatches are rejected.
        assert!(DeviceState::from_bytes(&cfg, &bytes[..bytes.len() - 2]).is_err());
        let mut flipped = bytes.clone();
        flipped[0] = b'X';
        assert!(DeviceState::from_bytes(&cfg, &flipped).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(DeviceState::from_bytes(&cfg, &trailing).is_err());
        let mut other = cfg.clone();
        other.flash.channels *= 2;
        assert!(DeviceState::from_bytes(&other, &state.to_bytes()).is_err());
    }

    #[test]
    fn lane_window_resets_without_touching_cumulative_stats() {
        let mut state = DeviceState::new(&SsdConfig::small_for_tests()).unwrap();
        let us = |v: f64| Duration::from_us(v);
        state.record_lane_request(us(1.0), us(2.0), us(3.0));
        state.record_lane_request(us(0.0), us(0.0), us(5.0));
        assert_eq!(state.lane_window_stats(), state.lane_stats());
        state.reset_lane_window();
        assert_eq!(state.lane_window_stats(), LaneStats::default());
        assert_eq!(state.lane_stats().requests, 2);
        state.record_lane_request(us(7.0), us(0.0), us(1.0));
        let snap = state.snapshot();
        assert_eq!(snap.lane_requests, 3);
        assert_eq!(snap.window_requests, 1);
        assert_eq!(snap.window_idle_time, us(7.0));
        assert!(snap.window_occupancy() < snap.lane_occupancy());
    }

    #[test]
    fn faulty_state_checkpoint_roundtrips_bit_identically() {
        let cfg = SsdConfig::small_for_tests();
        let mut faults = conduit_types::FaultConfig::with_seed(17);
        faults.program_fail_rate = 0.05;
        faults.read_transient_rate = 0.1;
        faults.spare_blocks = 1_000;
        let mut state = DeviceState::new_with_faults(&cfg, faults).unwrap();
        let pages: Vec<LogicalPageId> = (0..8).map(LogicalPageId::new).collect();
        state.ftl.map_pages(&pages, None).unwrap();
        for _ in 0..120 {
            state.ftl.rewrite(pages[2]).unwrap();
        }
        assert!(state.ftl.fault_stats().program_failures > 0);
        let bytes = state.to_bytes();
        let back = DeviceState::from_bytes(&cfg, &bytes).unwrap();
        assert_eq!(back.snapshot(), state.snapshot());
        assert_eq!(back.to_bytes(), bytes);
        let snap = back.snapshot();
        assert!(snap.program_failures > 0);
        assert_eq!(snap.retired_blocks, state.ftl.retired_blocks());
    }

    #[test]
    fn cold_checkpoints_skip_idle_resource_timelines() {
        // A device that has done nothing serializes with every timeline as a
        // one-byte flag; touching a single resource grows the checkpoint by
        // only that unit's triple.
        let cfg = SsdConfig::small_for_tests();
        let cold = DeviceState::new(&cfg).unwrap();
        let cold_len = cold.to_bytes().len();
        let mut touched = DeviceState::new(&cfg).unwrap();
        touched.dram_bus.reserve(
            conduit_types::SimTime::ZERO,
            conduit_types::Duration::from_us(1.0),
        );
        let touched_len = touched.to_bytes().len();
        assert_eq!(touched_len, cold_len + 24);
        let back = DeviceState::from_bytes(&cfg, &touched.to_bytes()).unwrap();
        assert_eq!(back.snapshot(), touched.snapshot());
    }

    #[test]
    fn delta_accumulate_adds_counters_and_keeps_last_gauges() {
        let mut a = DeviceDelta {
            rewrites: 2,
            wear_spread: 5,
            dirty_pages: 3,
            device_ops: 10,
            ..DeviceDelta::default()
        };
        let b = DeviceDelta {
            rewrites: 1,
            wear_spread: 7,
            dirty_pages: 1,
            device_ops: 4,
            ..DeviceDelta::default()
        };
        a.accumulate(b);
        assert_eq!(a.rewrites, 3);
        assert_eq!(a.device_ops, 14);
        assert_eq!(a.wear_spread, 7);
        assert_eq!(a.dirty_pages, 1);
    }
}
