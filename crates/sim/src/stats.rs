//! Latency statistics and execution-time breakdowns.

use conduit_types::Duration;

/// Collects per-instruction (or per-request) latencies and answers
/// mean/percentile queries — the basis of the tail-latency comparison in
/// Figure 8 of the paper.
///
/// # Examples
///
/// ```
/// use conduit_sim::LatencyStats;
/// use conduit_types::Duration;
///
/// let mut stats = LatencyStats::new();
/// for i in 1..=100 {
///     stats.record(Duration::from_us(i as f64));
/// }
/// assert_eq!(stats.percentile(0.99), Duration::from_us(99.0));
/// assert_eq!(stats.max(), Duration::from_us(100.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyStats {
    samples: Vec<Duration>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Creates an empty collector preallocated for `n` samples (one per
    /// instruction in the run loop, so recording never reallocates).
    pub fn with_capacity(n: usize) -> Self {
        LatencyStats {
            samples: Vec::with_capacity(n),
            sorted: false,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().copied().sum();
        total / self.samples.len() as u64
    }

    /// Maximum latency (zero if empty).
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// The `p`-quantile latency (e.g. `0.99` for the 99th percentile,
    /// `0.9999` for the 99.99th). Returns zero if empty.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> Duration {
        debug_assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64) * p).ceil() as usize;
        let idx = rank.clamp(1, self.samples.len()) - 1;
        self.samples[idx]
    }

    /// All samples recorded so far (unsorted order is not guaranteed once a
    /// percentile has been queried).
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// Where an instruction's end-to-end time went — the stacked-bar breakdown of
/// Figure 4 (compute, host↔SSD data movement, SSD-internal data movement,
/// flash array reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Time spent computing on the chosen execution site.
    pub compute: Duration,
    /// Time spent moving data between host memory and the SSD.
    pub host_data_movement: Duration,
    /// Time spent moving data between SSD-internal locations (flash channel
    /// DMA, DRAM bus, controller SRAM staging).
    pub internal_data_movement: Duration,
    /// Time spent sensing (reading) or programming the flash array itself.
    pub flash_array: Duration,
}

impl CostBreakdown {
    /// An all-zero breakdown.
    pub fn zero() -> Self {
        CostBreakdown::default()
    }

    /// Total attributed time.
    pub fn total(&self) -> Duration {
        self.compute + self.host_data_movement + self.internal_data_movement + self.flash_array
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: CostBreakdown) {
        self.compute += other.compute;
        self.host_data_movement += other.host_data_movement;
        self.internal_data_movement += other.internal_data_movement;
        self.flash_array += other.flash_array;
    }

    /// Fractions of the total per category, in the order
    /// `(compute, host DM, internal DM, flash array)`. All zeros if empty.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_ns();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.compute.as_ns() / total,
            self.host_data_movement.as_ns() / total,
            self.internal_data_movement.as_ns() / total,
            self.flash_array.as_ns() / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_us(1.0));
        s.record(Duration::from_us(3.0));
        assert_eq!(s.mean(), Duration::from_us(2.0));
        assert_eq!(s.max(), Duration::from_us(3.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn percentiles_pick_correct_ranks() {
        let mut s = LatencyStats::new();
        for i in 1..=1000 {
            s.record(Duration::from_ns(i as f64));
        }
        assert_eq!(s.percentile(0.5), Duration::from_ns(500.0));
        assert_eq!(s.percentile(0.99), Duration::from_ns(990.0));
        assert_eq!(s.percentile(0.9999), Duration::from_ns(1000.0));
        assert_eq!(s.percentile(1.0), Duration::from_ns(1000.0));
        assert_eq!(s.percentile(0.0), Duration::from_ns(1.0));
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_ns(10.0));
        assert_eq!(s.percentile(1.0), Duration::from_ns(10.0));
        s.record(Duration::from_ns(5.0));
        assert_eq!(s.percentile(0.5), Duration::from_ns(5.0));
    }

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = CostBreakdown::zero();
        b.accumulate(CostBreakdown {
            compute: Duration::from_us(1.0),
            host_data_movement: Duration::from_us(2.0),
            internal_data_movement: Duration::from_us(3.0),
            flash_array: Duration::from_us(4.0),
        });
        b.accumulate(CostBreakdown {
            compute: Duration::from_us(1.0),
            ..CostBreakdown::zero()
        });
        assert_eq!(b.total(), Duration::from_us(11.0));
        let (c, h, i, f) = b.fractions();
        assert!((c - 2.0 / 11.0).abs() < 1e-9);
        assert!((h - 2.0 / 11.0).abs() < 1e-9);
        assert!((i - 3.0 / 11.0).abs() < 1e-9);
        assert!((f - 4.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(CostBreakdown::zero().fractions(), (0.0, 0.0, 0.0, 0.0));
    }
}
